"""Tests for the client-execution engines (`repro.fl.executor`).

The acceptance bar: `SerialExecutor` and a >= 2-worker `ParallelExecutor`
must produce *identical* `RunHistory` traces and final accuracies — the
round loop's semantics may not depend on how the fan-out executes.
"""

import itertools
import os
import pickle

import numpy as np
import pytest

from repro.baselines import FedAvgStrategy, FedDGGAStrategy, FPLStrategy
from repro.core import PardonStrategy
from repro.data import synthetic_pacs, partition_clients
from repro.fl import (
    Client,
    ClientUpdate,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    resolve_executor,
)
from repro.fl.executor import AUTO_CROSSOVER_TASKS
from repro.fl.timing import PhaseTimer
from repro.nn import build_mlp_model
from repro.utils.rng import SeedTree

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
FAST = LocalTrainingConfig(batch_size=8)


def make_clients(n_clients=8, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, 0.2, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def run_once(strategy, executor, rounds=3, clients_per_round=4):
    server = FederatedServer(
        strategy=strategy,
        clients=make_clients(),
        model=build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        ),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=clients_per_round, seed=0
        ),
        executor=executor,
    )
    return server.run()


def assert_identical_runs(serial, parallel):
    assert len(serial.history.records) == len(parallel.history.records)
    for a, b in zip(serial.history.records, parallel.history.records):
        assert a.round_index == b.round_index
        assert a.participants == b.participants
        assert a.mean_local_loss == b.mean_local_loss
        assert a.eval_accuracy == b.eval_accuracy
    assert serial.final_accuracy == parallel.final_accuracy
    for key in serial.final_state:
        np.testing.assert_array_equal(
            serial.final_state[key], parallel.final_state[key]
        )


class TestClientUpdate:
    def test_from_client_captures_identity(self):
        client = make_clients()[0]
        update = ClientUpdate.from_client(client, {"w": np.ones(2)}, 0.5)
        assert update.client_id == client.client_id
        assert update.num_samples == client.num_samples
        assert update.loss == 0.5
        assert update.payload == {}

    def test_is_picklable_with_payload(self):
        client = make_clients()[0]
        update = ClientUpdate.from_client(
            client, {"w": np.ones(2)}, 0.5, payload={"prototypes": {0: np.zeros(3)}}
        )
        clone = pickle.loads(pickle.dumps(update))
        assert clone.client_id == update.client_id
        np.testing.assert_array_equal(
            clone.payload["prototypes"][0], np.zeros(3)
        )


class TestMakeExecutor:
    def test_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        parallel = make_executor("parallel", workers=2)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.num_workers == 2
        parallel.close()

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_executor("quantum")

    def test_serial_with_workers_raises(self):
        """A worker count with the serial engine is a forgotten 'parallel'."""
        with pytest.raises(ValueError):
            make_executor("serial", workers=8)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(num_workers=0)


class TestAutoExecutor:
    """The executor="auto" crossover heuristic (ROADMAP open item): pick
    parallel only when the per-round fan-out amortizes the pool overhead."""

    def test_concrete_kinds_pass_through(self):
        assert resolve_executor("serial") == "serial"
        assert resolve_executor("parallel") == "parallel"

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            resolve_executor("quantum")

    def test_small_fan_out_resolves_serial(self):
        """Bench scale — few participants, one tiny local epoch — is where
        the profile showed pool overhead eating the speedup."""
        assert (
            resolve_executor("auto", participants=4, local_epochs=1, cpu_count=8)
            == "serial"
        )

    def test_large_fan_out_resolves_parallel(self):
        assert (
            resolve_executor(
                "auto", participants=AUTO_CROSSOVER_TASKS, cpu_count=8
            )
            == "parallel"
        )

    def test_local_epochs_multiply_the_workload(self):
        """Population size x local-epoch cost: 4 participants are below the
        crossover alone, but not when each trains 8 epochs."""
        assert (
            resolve_executor("auto", participants=4, local_epochs=8, cpu_count=8)
            == "parallel"
        )

    def test_single_core_always_serial(self):
        assert (
            resolve_executor("auto", participants=1000, cpu_count=1) == "serial"
        )

    def test_no_information_defaults_to_serial(self):
        assert resolve_executor("auto", cpu_count=8) == "serial"

    def test_make_executor_auto_without_hints_is_serial(self):
        assert isinstance(make_executor("auto"), SerialExecutor)

    def test_make_executor_auto_with_workers_forces_parallel(self):
        executor = make_executor("auto", workers=2)
        assert isinstance(executor, ParallelExecutor)
        assert executor.num_workers == 2
        executor.close()

    def test_setting_resolves_auto_from_its_own_fan_out(self):
        from repro.eval import ExperimentSetting

        small = ExperimentSetting(
            num_clients=20, clients_per_round=0.25, executor="auto"
        )
        assert small.round_participants() == 5
        assert isinstance(small.make_executor(), SerialExecutor)


class TestDeterminism:
    """Serial and parallel execution must be indistinguishable in the trace."""

    def test_fedavg_serial_equals_parallel(self):
        serial = run_once(FedAvgStrategy(FAST), SerialExecutor())
        with ParallelExecutor(num_workers=2) as executor:
            parallel = run_once(FedAvgStrategy(FAST), executor)
        assert_identical_runs(serial, parallel)

    def test_pardon_serial_equals_parallel(self):
        serial = run_once(PardonStrategy(local_config=FAST), SerialExecutor())
        with ParallelExecutor(num_workers=2) as executor:
            parallel = run_once(PardonStrategy(local_config=FAST), executor)
        assert_identical_runs(serial, parallel)

    def test_fpl_payload_survives_process_hop(self):
        """FPL's prototypes travel via ClientUpdate.payload, so the global
        prototypes must come out identical either way."""
        serial_strategy = FPLStrategy(local_config=FAST)
        serial = run_once(serial_strategy, SerialExecutor())
        parallel_strategy = FPLStrategy(local_config=FAST)
        with ParallelExecutor(num_workers=2) as executor:
            parallel = run_once(parallel_strategy, executor)
        assert_identical_runs(serial, parallel)
        assert set(serial_strategy.global_prototypes) == set(
            parallel_strategy.global_prototypes
        )
        for label, proto in serial_strategy.global_prototypes.items():
            np.testing.assert_array_equal(
                proto, parallel_strategy.global_prototypes[label]
            )


class ScratchCyclingStrategy(FedAvgStrategy):
    """Adds a scratch key on even rounds and deletes it on odd rounds —
    exercises both directions of scratch persistence."""

    name = "scratch_cycling"

    def local_update(self, client, model, round_index, rng):
        if round_index % 2 == 0:
            client.scratch["marker"] = round_index
        else:
            client.scratch.pop("marker", None)
        return super().local_update(client, model, round_index, rng)


class EchoStrategy(FedAvgStrategy):
    """Echoes a server-written scratch note back through the worker, so the
    task's server->worker scratch sync is observable."""

    name = "echo"

    def local_update(self, client, model, round_index, rng):
        client.scratch["echo"] = client.scratch.get("server_note")
        return super().local_update(client, model, round_index, rng)


class PidStampStrategy(FedAvgStrategy):
    """Stamps the worker's pid into scratch each round, one key per round so
    every stamp travels in that round's delta."""

    name = "pid_stamp"

    def local_update(self, client, model, round_index, rng):
        client.scratch[f"pid_{round_index}"] = os.getpid()
        return super().local_update(client, model, round_index, rng)


def _round_setup(clients, rounds=1):
    """Participants (all clients) + per-round seeds, mirroring the server."""
    tree = SeedTree(0).child("server", "test")
    return [
        [
            tree.seed("client", client.client_id, "round", round_index)
            for client in clients
        ]
        for round_index in range(rounds)
    ]


class TestWireProtocol:
    """Pool residency and the delta-based wire protocol."""

    def _model(self):
        return build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        )

    def test_datasets_ship_once_per_pool_lifetime(self):
        clients = make_clients()
        model = self._model()
        state = model.state_dict()
        seeds = _round_setup(clients, rounds=2)
        with ParallelExecutor(num_workers=2) as executor:
            executor.run_round(FedAvgStrategy(FAST), model, state, clients, 0, seeds[0])
            registered = executor.wire_stats().registration_bytes
            assert registered > 0
            executor.run_round(FedAvgStrategy(FAST), model, state, clients, 1, seeds[1])
            assert executor.wire_stats().registration_bytes == registered

    def test_task_payload_excludes_dataset_and_state(self):
        clients = make_clients()
        model = self._model()
        state = model.state_dict()
        seeds = _round_setup(clients)[0]
        with ParallelExecutor(num_workers=2) as executor:
            executor.run_round(FedAvgStrategy(FAST), model, state, clients, 0, seeds)
            wire = executor.wire_stats()
        # Tasks are (client_id, round, seed, None): constant-size, far below
        # even a single client's pickled dataset.
        per_task = wire.task_bytes / len(clients)
        assert per_task < 256
        assert wire.task_bytes < len(pickle.dumps(clients[0]))

    def test_broadcast_is_per_worker_not_per_task(self):
        clients = make_clients()
        model = self._model()
        state = model.state_dict()
        seeds = _round_setup(clients)[0]
        state_bytes = len(pickle.dumps(state))
        with ParallelExecutor(num_workers=2) as executor:
            executor.run_round(FedAvgStrategy(FAST), model, state, clients, 0, seeds)
            wire = executor.wire_stats()
        # 8 participants on 2 workers: well under one state blob per task.
        assert wire.broadcast_bytes < state_bytes * 3

    def test_sticky_affinity_is_by_client_id_modulo_workers(self):
        clients = make_clients()
        with ParallelExecutor(num_workers=2) as executor:
            server = FederatedServer(
                strategy=PidStampStrategy(FAST),
                clients=clients,
                model=self._model(),
                eval_sets={},
                config=FederatedConfig(num_rounds=2, clients_per_round=8, seed=0),
                executor=executor,
            )
            server.run()
        pids = {
            client.client_id: (client.scratch["pid_0"], client.scratch["pid_1"])
            for client in clients
        }
        # Same worker across rounds...
        for first, second in pids.values():
            assert first == second
        # ...and the same worker for every client with the same home slot.
        for a, b in itertools.combinations(clients, 2):
            if a.client_id % 2 == b.client_id % 2:
                assert pids[a.client_id] == pids[b.client_id]
            else:
                assert pids[a.client_id] != pids[b.client_id]

    def test_scratch_cache_travels_once_not_every_round(self):
        """PARDON's transfer cache crosses the wire in the round that builds
        it; later uploads carry only the model state."""
        clients = make_clients()
        strategy = PardonStrategy(local_config=FAST)
        model = self._model()
        state = model.state_dict()
        seeds = _round_setup(clients, rounds=3)
        with ParallelExecutor(num_workers=2) as executor:
            strategy.prepare(clients, model, np.random.default_rng(1))
            model.load_state_dict(state)
            executor.run_round(strategy, model, state, clients, 0, seeds[0])
            first_round_up = executor.wire_stats().upload_bytes
            executor.run_round(strategy, model, state, clients, 1, seeds[1])
            second_round_up = executor.wire_stats().upload_bytes - first_round_up
            executor.run_round(strategy, model, state, clients, 2, seeds[2])
            third_round_up = (
                executor.wire_stats().upload_bytes - first_round_up - second_round_up
            )
        # Round 0's uploads carry the freshly-built cache on top of the
        # state dicts; the drop from round 0 to round 1 must account for
        # (most of) the cache, which then never travels again.
        cache_bytes = sum(
            len(pickle.dumps(dict(client.scratch))) for client in clients
        )
        assert cache_bytes > 0
        assert first_round_up - second_round_up > cache_bytes * 0.5
        # And uploads stay flat once warm (no cache churn round over round).
        assert abs(third_round_up - second_round_up) < second_round_up * 0.1

    def test_new_client_objects_are_reregistered(self):
        """Fresh Client objects with recycled ids (a new run on a warm pool)
        must not see the previous run's resident data."""
        executor = ParallelExecutor(num_workers=2)
        try:
            first = run_once(PardonStrategy(local_config=FAST), executor)
            second = run_once(PardonStrategy(local_config=FAST), executor)
            assert_identical_runs(first, second)
        finally:
            executor.close()

    def test_server_side_scratch_edits_reach_workers(self):
        """Out-of-band server-side scratch writes between rounds must be
        visible to the resident copy (shipped as a task sync delta)."""
        clients = make_clients()
        model = self._model()
        state = model.state_dict()
        seeds = _round_setup(clients, rounds=2)
        with ParallelExecutor(num_workers=2) as executor:
            executor.run_round(EchoStrategy(FAST), model, state, clients, 0, seeds[0])
            for client in clients:
                client.scratch["server_note"] = f"note-{client.client_id}"
            executor.run_round(EchoStrategy(FAST), model, state, clients, 1, seeds[1])
        for client in clients:
            assert client.scratch["echo"] == f"note-{client.client_id}"

    def test_wire_bytes_land_in_timing_report(self):
        with ParallelExecutor(num_workers=2) as executor:
            result = run_once(FedAvgStrategy(FAST), executor, rounds=2)
        assert result.timing.bytes_up > 0
        assert result.timing.bytes_down > 0
        assert result.timing.bytes_total == (
            result.timing.bytes_up + result.timing.bytes_down
        )

    def test_serial_engine_reports_zero_wire_bytes(self):
        result = run_once(FedAvgStrategy(FAST), SerialExecutor(), rounds=2)
        assert result.timing.bytes_up == 0
        assert result.timing.bytes_down == 0

    def test_report_covers_only_this_run_on_a_warm_pool(self):
        """Executor counters are cumulative across runs; each report must
        still count only its own run's traffic."""
        with ParallelExecutor(num_workers=2) as executor:
            first = run_once(FedAvgStrategy(FAST), executor, rounds=1)
            second = run_once(FedAvgStrategy(FAST), executor, rounds=1)
        # The second run re-registers its fresh clients, so its totals are
        # close to the first run's — not the cumulative sum.
        assert second.timing.bytes_down < first.timing.bytes_down * 1.5


class TestScratchDeltaContract:
    """Satellite regression: ClientUpdate carries a snapshot delta, never an
    alias of the live scratch dict — on every engine."""

    def _one_round(self, executor):
        clients = make_clients()
        model = build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        )
        seeds = _round_setup(clients)[0]
        updates = executor.run_round(
            ScratchCyclingStrategy(FAST), model, model.state_dict(), clients, 0, seeds
        )
        return clients, updates

    def test_serial_delta_is_a_snapshot_not_an_alias(self):
        clients, updates = self._one_round(SerialExecutor())
        update = updates[0]
        assert update.scratch_delta.updates == {"marker": 0}
        clients[0].scratch["marker"] = "mutated-after-upload"
        assert update.scratch_delta.updates == {"marker": 0}

    def test_parallel_delta_matches_serial(self):
        serial_clients, serial_updates = self._one_round(SerialExecutor())
        with ParallelExecutor(num_workers=2) as executor:
            parallel_clients, parallel_updates = self._one_round(executor)
        for s, p in zip(serial_updates, parallel_updates):
            assert s.scratch_delta.updates == p.scratch_delta.updates
            assert s.scratch_delta.removed == p.scratch_delta.removed
        for s, p in zip(serial_clients, parallel_clients):
            assert dict(s.scratch) == dict(p.scratch)

    def test_server_side_writes_stay_out_of_the_upload_delta(self):
        """Engine invariance includes server-side scratch edits between
        rounds: they sync *down* before the update, so the upload delta
        contains only the update's own writes on either engine."""

        def one_round(executor):
            clients = make_clients()
            model = build_mlp_model(
                SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
            )
            rounds = _round_setup(clients, rounds=2)
            executor.run_round(
                EchoStrategy(FAST), model, model.state_dict(), clients, 0, rounds[0]
            )
            for client in clients:
                client.scratch["server_note"] = f"note-{client.client_id}"
            return executor.run_round(
                EchoStrategy(FAST), model, model.state_dict(), clients, 1, rounds[1]
            )

        serial_updates = one_round(SerialExecutor())
        with ParallelExecutor(num_workers=2) as executor:
            parallel_updates = one_round(executor)
        for s, p in zip(serial_updates, parallel_updates):
            assert set(s.scratch_delta.updates) == {"echo"}
            assert s.scratch_delta.updates == p.scratch_delta.updates

    def test_deletion_travels_in_the_delta(self):
        clients = make_clients()
        model = build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        )
        rounds = _round_setup(clients, rounds=2)
        executor = SerialExecutor()
        executor.run_round(
            ScratchCyclingStrategy(FAST), model, model.state_dict(), clients, 0, rounds[0]
        )
        updates = executor.run_round(
            ScratchCyclingStrategy(FAST), model, model.state_dict(), clients, 1, rounds[1]
        )
        assert updates[0].scratch_delta.removed == ("marker",)


class TestParallelMechanics:
    def test_scratch_deletions_propagate(self):
        """Worker-side scratch removals must reach the server-side client,
        same as additions (replace semantics, not merge)."""
        clients = make_clients()
        with ParallelExecutor(num_workers=2) as executor:
            server = FederatedServer(
                strategy=ScratchCyclingStrategy(FAST),
                clients=clients,
                model=build_mlp_model(
                    SUITE.image_shape,
                    SUITE.num_classes,
                    rng=np.random.default_rng(0),
                ),
                eval_sets={},
                config=FederatedConfig(num_rounds=2, clients_per_round=8, seed=0),
                executor=executor,
            )
            result = server.run()
        # Round 1 (odd) ran last and deleted the marker everywhere.
        participated = set(result.history.records[-1].participants)
        for client in clients:
            if client.client_id in participated:
                assert "marker" not in client.scratch

    def test_scratch_merged_back_to_server_clients(self):
        """PARDON's style-transfer cache is built inside a worker but must
        land on the server-side client for reuse next round."""
        clients = make_clients()
        strategy = PardonStrategy(local_config=FAST)
        with ParallelExecutor(num_workers=2) as executor:
            server = FederatedServer(
                strategy=strategy,
                clients=clients,
                model=build_mlp_model(
                    SUITE.image_shape,
                    SUITE.num_classes,
                    rng=np.random.default_rng(0),
                ),
                eval_sets={},
                config=FederatedConfig(num_rounds=1, clients_per_round=8, seed=0),
                executor=executor,
            )
            result = server.run()
        participated = set(result.history.records[0].participants)
        for client in clients:
            if client.client_id in participated and client.num_samples:
                assert "pardon_transferred" in client.scratch

    def test_server_only_state_not_shipped_to_workers(self):
        strategy = FedDGGAStrategy(local_config=FAST)
        clients = make_clients(4)
        model = build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        )
        strategy.prepare(clients, model, np.random.default_rng(1))
        clone = pickle.loads(pickle.dumps(strategy))
        assert clone._model_ref is None
        assert clone._clients_by_id is None
        # ...and the wire blob stays small: no datasets, no model.
        assert len(pickle.dumps(strategy)) < len(pickle.dumps(model))

    def test_pool_reuse_across_runs(self):
        executor = ParallelExecutor(num_workers=2)
        try:
            first = run_once(FedAvgStrategy(FAST), executor, rounds=1)
            second = run_once(FedAvgStrategy(FAST), executor, rounds=1)
            assert_identical_runs(first, second)
        finally:
            executor.close()

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(num_workers=2)
        executor.close()
        executor.close()

    def test_architecture_signature_tracks_structure(self):
        same_a = build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        )
        same_b = build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(7)
        )
        wider = build_mlp_model(
            SUITE.image_shape,
            SUITE.num_classes,
            rng=np.random.default_rng(0),
            hidden_dim=128,
        )
        sig = ParallelExecutor._architecture_of
        assert sig(same_a) == sig(same_b)  # weights don't matter
        assert sig(same_a) != sig(wider)
        # Mode flips must not force a pool rebuild.
        assert sig(same_a.eval()) == sig(same_b)


class TestTimingAccounting:
    def test_recorded_updates_count_as_invocations(self):
        timer = PhaseTimer()
        timer.record_local_train(0.25)
        timer.record_local_train(0.75)
        timer.record_local_wall(0.5)
        report = timer.report()
        assert report.local_train_invocations == 2
        assert report.local_train_seconds_total == 1.0
        assert report.local_train_wall_seconds_total == 0.5
        assert report.local_train_speedup == 2.0

    def test_context_manager_counts_toward_wall(self):
        timer = PhaseTimer()
        with timer.local_train():
            pass
        report = timer.report()
        assert report.local_train_wall_seconds_total == report.local_train_seconds_total

    def test_speedup_defaults_to_one(self):
        assert PhaseTimer().report().local_train_speedup == 1.0

    def test_speedup_with_zero_invocations_and_zero_wall(self):
        """Edge cases: an empty report and a compute-only report must not
        divide by zero."""
        empty = PhaseTimer().report()
        assert empty.local_train_invocations == 0
        assert empty.local_train_seconds_mean == 0.0
        assert empty.local_train_speedup == 1.0
        compute_only = PhaseTimer()
        compute_only.record_local_train(1.0)  # no wall recorded
        assert compute_only.report().local_train_speedup == 1.0

    def test_context_manager_and_record_paths_agree(self, monkeypatch):
        """The convenience context manager and the record_* pair must
        account the same serial workload identically."""
        ticks = iter(float(i) for i in range(1000))
        monkeypatch.setattr(
            "repro.fl.timing.time.perf_counter", lambda: next(ticks)
        )
        with_context = PhaseTimer()
        for _ in range(3):
            with with_context.local_train():
                pass  # each enter/exit consumes two ticks -> 1.0s elapsed
        with_records = PhaseTimer()
        for _ in range(3):
            with_records.record_local_train(1.0)
            with_records.record_local_wall(1.0)
        assert with_context.report() == with_records.report()

    def test_record_bytes_accumulates_into_report(self):
        timer = PhaseTimer()
        timer.record_bytes(100, 200)
        timer.record_bytes(1, 2)
        report = timer.report()
        assert report.bytes_up == 101
        assert report.bytes_down == 202
        assert report.bytes_total == 303

    def test_parallel_run_reports_worker_seconds(self):
        with ParallelExecutor(num_workers=2) as executor:
            result = run_once(FedAvgStrategy(FAST), executor, rounds=2)
        timing = result.timing
        assert timing.local_train_invocations == 8
        assert timing.local_train_seconds_total > 0.0
        assert timing.local_train_wall_seconds_total > 0.0


class TestFinalEvaluationReuse:
    def test_final_accuracy_is_last_round_record(self):
        result = run_once(FedAvgStrategy(FAST), SerialExecutor(), rounds=2)
        assert result.final_accuracy == result.history.records[-1].eval_accuracy
