"""Tests for the client-execution engines (`repro.fl.executor`).

The acceptance bar: `SerialExecutor` and a >= 2-worker `ParallelExecutor`
must produce *identical* `RunHistory` traces and final accuracies — the
round loop's semantics may not depend on how the fan-out executes.
"""

import pickle

import numpy as np
import pytest

from repro.baselines import FedAvgStrategy, FedDGGAStrategy, FPLStrategy
from repro.core import PardonStrategy
from repro.data import synthetic_pacs, partition_clients
from repro.fl import (
    Client,
    ClientUpdate,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.fl.timing import PhaseTimer
from repro.nn import build_mlp_model

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
FAST = LocalTrainingConfig(batch_size=8)


def make_clients(n_clients=8, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, 0.2, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def run_once(strategy, executor, rounds=3, clients_per_round=4):
    server = FederatedServer(
        strategy=strategy,
        clients=make_clients(),
        model=build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        ),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=clients_per_round, seed=0
        ),
        executor=executor,
    )
    return server.run()


def assert_identical_runs(serial, parallel):
    assert len(serial.history.records) == len(parallel.history.records)
    for a, b in zip(serial.history.records, parallel.history.records):
        assert a.round_index == b.round_index
        assert a.participants == b.participants
        assert a.mean_local_loss == b.mean_local_loss
        assert a.eval_accuracy == b.eval_accuracy
    assert serial.final_accuracy == parallel.final_accuracy
    for key in serial.final_state:
        np.testing.assert_array_equal(
            serial.final_state[key], parallel.final_state[key]
        )


class TestClientUpdate:
    def test_from_client_captures_identity(self):
        client = make_clients()[0]
        update = ClientUpdate.from_client(client, {"w": np.ones(2)}, 0.5)
        assert update.client_id == client.client_id
        assert update.num_samples == client.num_samples
        assert update.loss == 0.5
        assert update.payload == {}

    def test_is_picklable_with_payload(self):
        client = make_clients()[0]
        update = ClientUpdate.from_client(
            client, {"w": np.ones(2)}, 0.5, payload={"prototypes": {0: np.zeros(3)}}
        )
        clone = pickle.loads(pickle.dumps(update))
        assert clone.client_id == update.client_id
        np.testing.assert_array_equal(
            clone.payload["prototypes"][0], np.zeros(3)
        )


class TestMakeExecutor:
    def test_kinds(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        parallel = make_executor("parallel", workers=2)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.num_workers == 2
        parallel.close()

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_executor("quantum")

    def test_serial_with_workers_raises(self):
        """A worker count with the serial engine is a forgotten 'parallel'."""
        with pytest.raises(ValueError):
            make_executor("serial", workers=8)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(num_workers=0)


class TestDeterminism:
    """Serial and parallel execution must be indistinguishable in the trace."""

    def test_fedavg_serial_equals_parallel(self):
        serial = run_once(FedAvgStrategy(FAST), SerialExecutor())
        with ParallelExecutor(num_workers=2) as executor:
            parallel = run_once(FedAvgStrategy(FAST), executor)
        assert_identical_runs(serial, parallel)

    def test_pardon_serial_equals_parallel(self):
        serial = run_once(PardonStrategy(local_config=FAST), SerialExecutor())
        with ParallelExecutor(num_workers=2) as executor:
            parallel = run_once(PardonStrategy(local_config=FAST), executor)
        assert_identical_runs(serial, parallel)

    def test_fpl_payload_survives_process_hop(self):
        """FPL's prototypes travel via ClientUpdate.payload, so the global
        prototypes must come out identical either way."""
        serial_strategy = FPLStrategy(local_config=FAST)
        serial = run_once(serial_strategy, SerialExecutor())
        parallel_strategy = FPLStrategy(local_config=FAST)
        with ParallelExecutor(num_workers=2) as executor:
            parallel = run_once(parallel_strategy, executor)
        assert_identical_runs(serial, parallel)
        assert set(serial_strategy.global_prototypes) == set(
            parallel_strategy.global_prototypes
        )
        for label, proto in serial_strategy.global_prototypes.items():
            np.testing.assert_array_equal(
                proto, parallel_strategy.global_prototypes[label]
            )


class ScratchCyclingStrategy(FedAvgStrategy):
    """Adds a scratch key on even rounds and deletes it on odd rounds —
    exercises both directions of scratch persistence."""

    name = "scratch_cycling"

    def local_update(self, client, model, round_index, rng):
        if round_index % 2 == 0:
            client.scratch["marker"] = round_index
        else:
            client.scratch.pop("marker", None)
        return super().local_update(client, model, round_index, rng)


class TestParallelMechanics:
    def test_scratch_deletions_propagate(self):
        """Worker-side scratch removals must reach the server-side client,
        same as additions (replace semantics, not merge)."""
        clients = make_clients()
        with ParallelExecutor(num_workers=2) as executor:
            server = FederatedServer(
                strategy=ScratchCyclingStrategy(FAST),
                clients=clients,
                model=build_mlp_model(
                    SUITE.image_shape,
                    SUITE.num_classes,
                    rng=np.random.default_rng(0),
                ),
                eval_sets={},
                config=FederatedConfig(num_rounds=2, clients_per_round=8, seed=0),
                executor=executor,
            )
            result = server.run()
        # Round 1 (odd) ran last and deleted the marker everywhere.
        participated = set(result.history.records[-1].participants)
        for client in clients:
            if client.client_id in participated:
                assert "marker" not in client.scratch

    def test_scratch_merged_back_to_server_clients(self):
        """PARDON's style-transfer cache is built inside a worker but must
        land on the server-side client for reuse next round."""
        clients = make_clients()
        strategy = PardonStrategy(local_config=FAST)
        with ParallelExecutor(num_workers=2) as executor:
            server = FederatedServer(
                strategy=strategy,
                clients=clients,
                model=build_mlp_model(
                    SUITE.image_shape,
                    SUITE.num_classes,
                    rng=np.random.default_rng(0),
                ),
                eval_sets={},
                config=FederatedConfig(num_rounds=1, clients_per_round=8, seed=0),
                executor=executor,
            )
            result = server.run()
        participated = set(result.history.records[0].participants)
        for client in clients:
            if client.client_id in participated and client.num_samples:
                assert "pardon_transferred" in client.scratch

    def test_server_only_state_not_shipped_to_workers(self):
        strategy = FedDGGAStrategy(local_config=FAST)
        clients = make_clients(4)
        model = build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        )
        strategy.prepare(clients, model, np.random.default_rng(1))
        clone = pickle.loads(pickle.dumps(strategy))
        assert clone._model_ref is None
        assert clone._clients_by_id is None
        # ...and the wire blob stays small: no datasets, no model.
        assert len(pickle.dumps(strategy)) < len(pickle.dumps(model))

    def test_pool_reuse_across_runs(self):
        executor = ParallelExecutor(num_workers=2)
        try:
            first = run_once(FedAvgStrategy(FAST), executor, rounds=1)
            second = run_once(FedAvgStrategy(FAST), executor, rounds=1)
            assert_identical_runs(first, second)
        finally:
            executor.close()

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(num_workers=2)
        executor.close()
        executor.close()

    def test_architecture_signature_tracks_structure(self):
        same_a = build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        )
        same_b = build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(7)
        )
        wider = build_mlp_model(
            SUITE.image_shape,
            SUITE.num_classes,
            rng=np.random.default_rng(0),
            hidden_dim=128,
        )
        sig = ParallelExecutor._architecture_of
        assert sig(same_a) == sig(same_b)  # weights don't matter
        assert sig(same_a) != sig(wider)
        # Mode flips must not force a pool rebuild.
        assert sig(same_a.eval()) == sig(same_b)


class TestTimingAccounting:
    def test_recorded_updates_count_as_invocations(self):
        timer = PhaseTimer()
        timer.record_local_train(0.25)
        timer.record_local_train(0.75)
        timer.record_local_wall(0.5)
        report = timer.report()
        assert report.local_train_invocations == 2
        assert report.local_train_seconds_total == 1.0
        assert report.local_train_wall_seconds_total == 0.5
        assert report.local_train_speedup == 2.0

    def test_context_manager_counts_toward_wall(self):
        timer = PhaseTimer()
        with timer.local_train():
            pass
        report = timer.report()
        assert report.local_train_wall_seconds_total == report.local_train_seconds_total

    def test_speedup_defaults_to_one(self):
        assert PhaseTimer().report().local_train_speedup == 1.0

    def test_parallel_run_reports_worker_seconds(self):
        with ParallelExecutor(num_workers=2) as executor:
            result = run_once(FedAvgStrategy(FAST), executor, rounds=2)
        timing = result.timing
        assert timing.local_train_invocations == 8
        assert timing.local_train_seconds_total > 0.0
        assert timing.local_train_wall_seconds_total > 0.0


class TestFinalEvaluationReuse:
    def test_final_accuracy_is_last_round_record(self):
        result = run_once(FedAvgStrategy(FAST), SerialExecutor(), rounds=2)
        assert result.final_accuracy == result.history.records[-1].eval_accuracy
