"""Tests for the extension modules: multi-seed statistics, the transform
library, and differentially-private style sharing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import synthetic_pacs, partition_clients
from repro.data.transforms import (
    channel_jitter,
    compose,
    cutout,
    gaussian_noise,
    horizontal_flip,
    random_shift,
    standard_augmentation,
)
from repro.eval.statistics import (
    SeedSweepResult,
    mean_std,
    paired_win_rate,
    sweep_seeds,
)
from repro.fl import Client, LocalTrainingConfig
from repro.nn import build_mlp_model
from repro.privacy.dp import DPStyleStrategy, GaussianMechanism, gaussian_sigma

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)


class TestStatistics:
    def test_sweep_collects_all_seeds(self):
        result = sweep_seeds(lambda seed: float(seed) * 0.1, [0, 1, 2])
        assert result.count == 3
        np.testing.assert_allclose(result.mean, 0.1)

    def test_confidence_interval_narrows_with_agreement(self):
        tight = SeedSweepResult([0.5, 0.5, 0.5])
        loose = SeedSweepResult([0.1, 0.5, 0.9])
        t_lo, t_hi = tight.confidence_interval()
        l_lo, l_hi = loose.confidence_interval()
        assert (t_hi - t_lo) < (l_hi - l_lo)

    def test_single_seed_ci_degenerates(self):
        result = SeedSweepResult([0.7])
        assert result.confidence_interval() == (0.7, 0.7)

    def test_paired_win_rate(self):
        assert paired_win_rate([2, 2, 2], [1, 1, 1]) == 1.0
        assert paired_win_rate([1, 2], [2, 1]) == 0.5
        assert paired_win_rate([1.0], [1.0]) == 0.5  # tie counts half

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_seeds(lambda s: 0.0, [])
        with pytest.raises(ValueError):
            paired_win_rate([1], [1, 2])
        with pytest.raises(ValueError):
            mean_std([])


class TestTransforms:
    def batch(self, rng, n=4):
        return rng.normal(size=(n, 3, 8, 8))

    def test_shift_preserves_content_multiset(self, rng):
        images = self.batch(rng)
        shifted = random_shift(2)(images, rng)
        np.testing.assert_allclose(
            np.sort(images.reshape(4, -1), axis=1),
            np.sort(shifted.reshape(4, -1), axis=1),
        )

    def test_flip_is_involution(self, rng):
        images = self.batch(rng)
        flip = horizontal_flip(probability=1.0)
        np.testing.assert_array_equal(flip(flip(images, rng), rng), images)

    def test_noise_zero_std_is_identity(self, rng):
        images = self.batch(rng)
        np.testing.assert_array_equal(gaussian_noise(0.0)(images, rng), images)

    def test_channel_jitter_bounded(self, rng):
        images = np.ones((2, 3, 4, 4))
        jittered = channel_jitter(0.1, 0.1)(images, rng)
        assert np.all(jittered > 0.5) and np.all(jittered < 1.5)

    def test_cutout_zeroes_patch(self, rng):
        images = np.ones((2, 3, 8, 8))
        cut = cutout(3)(images, rng)
        assert (cut == 0).sum() == 2 * 3 * 9
        with pytest.raises(ValueError):
            cutout(8)(images, rng)

    def test_compose_order(self, rng):
        images = np.ones((1, 3, 8, 8))
        pipeline = compose([gaussian_noise(0.0), cutout(2)])
        out = pipeline(images, rng)
        assert (out == 0).any()

    def test_standard_augmentation_changes_images(self, rng):
        images = self.batch(rng)
        augmented = standard_augmentation()(images, rng)
        assert augmented.shape == images.shape
        assert not np.allclose(augmented, images)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_property_label_free_shapes(self, seed):
        """Every transform preserves the batch shape."""
        rng = np.random.default_rng(seed)
        images = rng.normal(size=(3, 3, 8, 8))
        for transform in (random_shift(1), horizontal_flip(1.0),
                          gaussian_noise(0.05), channel_jitter(),
                          cutout(2), standard_augmentation()):
            assert transform(images, rng).shape == images.shape

    def test_rejects_non_batch(self, rng):
        with pytest.raises(ValueError):
            random_shift(1)(np.zeros((3, 8, 8)), rng)


class TestDifferentialPrivacy:
    def test_sigma_formula(self):
        sigma = gaussian_sigma(epsilon=1.0, delta=1e-5, sensitivity=2.0)
        expected = 2.0 * np.sqrt(2 * np.log(1.25e5))
        np.testing.assert_allclose(sigma, expected)

    def test_sigma_decreases_with_epsilon(self):
        loose = gaussian_sigma(2.0, 1e-5, 1.0)
        strict = gaussian_sigma(0.5, 1e-5, 1.0)
        assert strict > loose

    def test_privatize_clips_and_noises(self, rng):
        mech = GaussianMechanism(epsilon=1.0, delta=1e-5, clip_norm=1.0)
        big = np.full(8, 100.0)
        out = mech.privatize(big, rng)
        # Clipped to norm 1, then noised with sigma ~ 9.6: far from 100.
        assert np.linalg.norm(out) < 100.0
        assert not np.allclose(out, big)

    def test_noise_scale_grows_with_privacy(self, rng):
        strict = GaussianMechanism(epsilon=0.1, delta=1e-5, clip_norm=1.0)
        loose = GaussianMechanism(epsilon=5.0, delta=1e-5, clip_norm=1.0)
        assert strict.sigma > loose.sigma

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=0.0, delta=1e-5, clip_norm=1.0)
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=1.0, delta=0.0, clip_norm=1.0)
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=1.0, delta=1e-5, clip_norm=0.0)

    def test_dp_strategy_produces_valid_interpolation_style(self, rng):
        partition = partition_clients(
            SUITE, [0, 1], 4, 0.2, np.random.default_rng(0)
        )
        clients = [Client(i, d) for i, d in enumerate(partition.client_datasets)]
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        strategy = DPStyleStrategy(
            mechanism=GaussianMechanism(epsilon=2.0, delta=1e-5, clip_norm=5.0),
            local_config=LocalTrainingConfig(batch_size=8),
        )
        strategy.prepare(clients, model, rng)
        style = strategy.interpolation_style
        assert style is not None
        assert np.all(np.isfinite(style.to_array()))
        assert np.all(style.sigma >= 0)  # post-processing floor applied

    def test_dp_styles_differ_from_raw(self, rng):
        from repro.core import PardonStrategy

        partition = partition_clients(
            SUITE, [0, 1], 4, 0.2, np.random.default_rng(0)
        )
        clients = [Client(i, d) for i, d in enumerate(partition.client_datasets)]
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        raw = PardonStrategy(local_config=LocalTrainingConfig(batch_size=8))
        raw.prepare(clients, model, np.random.default_rng(1))
        dp = DPStyleStrategy(
            mechanism=GaussianMechanism(epsilon=1.0, delta=1e-5, clip_norm=5.0),
            local_config=LocalTrainingConfig(batch_size=8),
        )
        dp.prepare(clients, model, np.random.default_rng(1))
        for client_id in raw.client_styles:
            assert not np.allclose(
                raw.client_styles[client_id].to_array(),
                dp.client_styles[client_id].to_array(),
            )
