"""Cross-engine coverage for the sibling FedDG strategies (fedalign,
fedccrl) built on the composable objective registry.

The acceptance bar mirrors the transport tests: serial, parallel+pipe, and
parallel+shm runs must produce bit-identical traces under both lossless
codecs; the loop / ensemble / strict compute backends must agree; and the
per-class payload statistics must survive the wire untouched — including
under the *lossy* codecs, because ``ClientUpdate.payload`` travels raw
(only the weight state is codec-transformed).
"""

import numpy as np
import pytest

from repro.baselines import FedAlignStrategy, FedCCRLStrategy
from repro.data import partition_clients, synthetic_pacs
from repro.fl import (
    Client,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    ParallelExecutor,
    SerialExecutor,
    shm_supported,
)

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
FAST = LocalTrainingConfig(batch_size=8)

STRATEGIES = {
    "fedalign": lambda: FedAlignStrategy(local_config=FAST),
    "fedccrl": lambda: FedCCRLStrategy(local_config=FAST),
}

needs_shm = pytest.mark.skipif(
    not shm_supported(), reason="platform has no POSIX shared memory"
)


def make_clients(n_clients=8, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, 0.2, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def _model():
    from repro.nn import build_mlp_model

    return build_mlp_model(
        SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
    )


def run_once(name, executor, rounds=2, codec="identity"):
    """Run one sibling strategy; returns (strategy, result) so callers can
    inspect the fused server-side targets."""
    strategy = STRATEGIES[name]()
    server = FederatedServer(
        strategy=strategy,
        clients=make_clients(),
        model=_model(),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=4, seed=0, codec=codec
        ),
        executor=executor,
    )
    return strategy, server.run()


def _trace(result):
    return (
        [
            (r.round_index, r.mean_local_loss, tuple(r.participants),
             tuple(sorted(r.eval_accuracy.items())))
            for r in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


def _assert_targets_equal(a, b, context):
    assert set(a) == set(b), f"{context}: fused target classes diverge"
    for label in a:
        np.testing.assert_array_equal(
            a[label], b[label], err_msg=f"{context}: target[{label}] diverges"
        )


class TestTraceInvariance:
    """serial == parallel+pipe == parallel+shm, bitwise, for both new
    strategies under both lossless codecs — and the server-side fused
    targets are bitwise engine-invariant too."""

    @pytest.mark.parametrize("codec", ["identity", "delta"])
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_cross_engine_cross_transport_traces(self, name, codec):
        reference, serial = run_once(
            name, SerialExecutor(codec=codec), codec=codec
        )
        # The payload pathway was actually exercised, not vacuously empty.
        assert reference.global_targets
        transports = ["pipe"] + (["shm"] if shm_supported() else [])
        for transport in transports:
            with ParallelExecutor(
                num_workers=2, codec=codec, transport=transport
            ) as executor:
                strategy, parallel = run_once(
                    name, executor, codec=codec
                )
            assert _trace(parallel) == _trace(serial), (
                f"{name}: {transport}/{codec} trace diverged from serial"
            )
            for key in serial.final_state:
                np.testing.assert_array_equal(
                    serial.final_state[key], parallel.final_state[key]
                )
            _assert_targets_equal(
                reference.global_targets, strategy.global_targets,
                f"{name}/{transport}/{codec}",
            )


class TestComputeBackends:
    """ensemble_update support: the vectorized backend reproduces the loop
    backend bitwise, fused targets included."""

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_backends_match_loop(self, name):
        reference, loop = run_once(name, SerialExecutor(compute="loop"))
        assert reference.global_targets
        for compute in ("ensemble", "strict"):
            strategy, run = run_once(name, SerialExecutor(compute=compute))
            assert _trace(run) == _trace(loop), (
                f"{name}: serial/{compute} trace diverged from serial/loop"
            )
            for key in loop.final_state:
                np.testing.assert_array_equal(
                    loop.final_state[key], run.final_state[key]
                )
            _assert_targets_equal(
                reference.global_targets, strategy.global_targets,
                f"{name}/{compute}",
            )


class TestLossyCodecPayloadSurvival:
    """Payloads are not part of the codec-transformed weight channel: a
    lossy wire codec must leave the fused targets bitwise identical to the
    serial run's, and they must be finite and non-empty."""

    @pytest.mark.parametrize("codec", ["fp16", "qint8"])
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_targets_survive_lossy_wire(self, name, codec):
        reference, serial = run_once(
            name, SerialExecutor(codec=codec), codec=codec
        )
        assert reference.global_targets
        for target in reference.global_targets.values():
            assert np.all(np.isfinite(target))
        with ParallelExecutor(num_workers=2, codec=codec) as executor:
            strategy, parallel = run_once(name, executor, codec=codec)
        assert _trace(parallel) == _trace(serial), (
            f"{name}/{codec}: trace diverged from serial"
        )
        _assert_targets_equal(
            reference.global_targets, strategy.global_targets,
            f"{name}/{codec}",
        )


class TestStreamingCompatibility:
    """The siblings keep the base aggregate, so they stream — and the
    payload fusion still runs on the streaming path."""

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_supports_streaming(self, name):
        assert STRATEGIES[name]().supports_streaming()


class TestCLIKnobs:
    def test_strategy_alias_selects_the_method(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lodo", "--suite", "pacs", "--strategy", "fedalign"]
        )
        assert args.method == "fedalign"

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_siblings_are_registered_methods(self, name):
        from repro.cli import METHODS

        strategy = METHODS[name]()
        assert strategy.name == name

    def test_objective_override_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lodo", "--suite", "pacs", "--method", "fedalign",
             "--objective", "align=0.8"]
        )
        assert args.objective == "align=0.8"

    @pytest.mark.parametrize(
        "spec", ["align", "=1", "align=abc", "align=-0.5", "align=inf"]
    )
    def test_bad_objective_spec_is_a_usage_error(self, spec):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["lodo", "--suite", "pacs", "--method", "fedalign",
                 "--objective", spec]
            )

    def test_unknown_term_rejected_at_strategy_build(self):
        strategy = STRATEGIES["fedalign"]()
        with pytest.raises(ValueError, match="unknown objective term"):
            strategy.objective.with_overrides({"proto_nce": 0.5})
