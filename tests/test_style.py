"""Tests for the style-transfer substrate: encoders, statistics, AdaIN.

Property tests pin down the invariants PARDON's mechanism relies on:
AdaIN really sets the target statistics, it is idempotent, and the
invertible encoder round-trips exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.style import (
    FrozenConvEncoder,
    InvertibleEncoder,
    StyleVector,
    adain,
    apply_style_to_images,
    depth_to_space,
    per_sample_style_stats,
    pooled_style,
    space_to_depth,
)


class TestSpaceToDepth:
    def test_round_trip(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        np.testing.assert_array_equal(depth_to_space(space_to_depth(x, 2), 2), x)

    def test_shapes(self, rng):
        out = space_to_depth(rng.normal(size=(2, 3, 8, 8)), 2)
        assert out.shape == (2, 12, 4, 4)

    def test_rejects_indivisible(self, rng):
        with pytest.raises(ValueError):
            space_to_depth(rng.normal(size=(1, 3, 7, 8)), 2)
        with pytest.raises(ValueError):
            depth_to_space(rng.normal(size=(1, 3, 4, 4)), 2)


class TestInvertibleEncoder:
    def test_encode_decode_exact(self, rng):
        encoder = InvertibleEncoder(levels=2, seed=7)
        images = rng.normal(size=(4, 3, 16, 16))
        features = encoder.encode(images)
        assert features.shape == (4, 48, 4, 4)
        np.testing.assert_allclose(encoder.decode(features), images, atol=1e-10)

    def test_energy_preserved(self, rng):
        """Orthogonal mixes preserve the L2 norm — no information is lost."""
        encoder = InvertibleEncoder(levels=2, seed=7)
        images = rng.normal(size=(3, 3, 16, 16))
        features = encoder.encode(images)
        np.testing.assert_allclose(
            np.linalg.norm(features), np.linalg.norm(images), rtol=1e-10
        )

    def test_same_seed_same_encoder(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        a = InvertibleEncoder(levels=1, seed=3).encode(images)
        b = InvertibleEncoder(levels=1, seed=3).encode(images)
        np.testing.assert_array_equal(a, b)

    def test_validates_input(self, rng):
        encoder = InvertibleEncoder(levels=1)
        with pytest.raises(ValueError):
            encoder.encode(rng.normal(size=(2, 4, 8, 8)))
        with pytest.raises(ValueError):
            encoder.decode(rng.normal(size=(2, 5, 4, 4)))
        with pytest.raises(ValueError):
            InvertibleEncoder(levels=0)


class TestStyleVector:
    def test_array_round_trip(self, rng):
        sv = StyleVector(mu=rng.normal(size=5), sigma=np.abs(rng.normal(size=5)))
        back = StyleVector.from_array(sv.to_array())
        np.testing.assert_array_equal(back.mu, sv.mu)
        np.testing.assert_array_equal(back.sigma, sv.sigma)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            StyleVector(mu=np.zeros(3), sigma=np.zeros(4))
        with pytest.raises(ValueError):
            StyleVector(mu=np.zeros(3), sigma=-np.ones(3))
        with pytest.raises(ValueError):
            StyleVector.from_array(np.zeros(5))


class TestStyleStats:
    def test_per_sample_shapes(self, rng):
        mu, sigma = per_sample_style_stats(rng.normal(size=(6, 4, 8, 8)))
        assert mu.shape == (6, 4) and sigma.shape == (6, 4)

    def test_pooled_matches_manual(self, rng):
        feats = rng.normal(loc=2.0, size=(5, 3, 4, 4))
        style = pooled_style(feats)
        np.testing.assert_allclose(style.mu, feats.mean(axis=(0, 2, 3)))
        np.testing.assert_allclose(style.sigma, feats.std(axis=(0, 2, 3)))

    def test_pooled_rejects_empty(self):
        with pytest.raises(ValueError):
            pooled_style(np.zeros((0, 3, 4, 4)))


class TestAdaIN:
    def test_sets_target_statistics(self, rng):
        feats = rng.normal(loc=3.0, scale=2.0, size=(4, 5, 8, 8))
        target = StyleVector(mu=np.arange(5.0), sigma=np.full(5, 0.5))
        out = adain(feats, target)
        np.testing.assert_allclose(out.mean(axis=(2, 3)),
                                   np.tile(np.arange(5.0), (4, 1)), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=(2, 3)), 0.5, atol=1e-3)

    def test_idempotent(self, rng):
        feats = rng.normal(size=(3, 4, 8, 8))
        target = StyleVector(mu=rng.normal(size=4), sigma=np.abs(rng.normal(size=4)) + 0.1)
        once = adain(feats, target)
        twice = adain(once, target)
        np.testing.assert_allclose(once, twice, atol=1e-4)

    def test_preserves_normalized_content(self, rng):
        """AdaIN only touches first/second moments: the per-sample
        normalized pattern is unchanged."""
        feats = rng.normal(size=(2, 3, 8, 8))
        target = StyleVector(mu=np.ones(3), sigma=np.full(3, 2.0))
        out = adain(feats, target)
        def normalize(f):
            m = f.mean(axis=(2, 3), keepdims=True)
            s = f.std(axis=(2, 3), keepdims=True)
            return (f - m) / (s + 1e-9)
        np.testing.assert_allclose(normalize(out), normalize(feats), atol=1e-3)

    def test_zero_variance_channel_guarded(self):
        feats = np.ones((1, 2, 4, 4))  # constant channels
        target = StyleVector(mu=np.array([5.0, -5.0]), sigma=np.array([1.0, 1.0]))
        out = adain(feats, target)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.mean(axis=(2, 3)), [[5.0, -5.0]], atol=1e-6)

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            adain(rng.normal(size=(1, 3, 4, 4)),
                  StyleVector(mu=np.zeros(5), sigma=np.ones(5)))

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_property_target_stats_reached(self, seed):
        rng = np.random.default_rng(seed)
        feats = rng.normal(loc=rng.normal(), scale=abs(rng.normal()) + 0.5,
                           size=(3, 4, 6, 6))
        target = StyleVector(
            mu=rng.normal(size=4), sigma=np.abs(rng.normal(size=4)) + 0.05
        )
        out = adain(feats, target)
        np.testing.assert_allclose(
            out.mean(axis=(2, 3)), np.tile(target.mu, (3, 1)), atol=1e-6
        )


class TestImageSpaceTransfer:
    def test_transferred_images_carry_target_style(self, rng):
        encoder = InvertibleEncoder(levels=1, seed=7)
        images = rng.normal(loc=1.0, size=(4, 3, 8, 8))
        target = StyleVector(mu=np.zeros(12), sigma=np.ones(12))
        transferred = apply_style_to_images(images, target, encoder)
        feats = encoder.encode(transferred)
        np.testing.assert_allclose(feats.mean(axis=(2, 3)), 0.0, atol=1e-6)

    def test_transfer_to_own_style_is_near_identity(self, rng):
        encoder = InvertibleEncoder(levels=1, seed=7)
        images = rng.normal(size=(8, 3, 8, 8))
        feats = encoder.encode(images)
        # Per-sample transfer back to each sample's own pooled style should
        # approximately reproduce the image set's statistics.
        own = pooled_style(feats)
        transferred = apply_style_to_images(images, own, encoder)
        orig_mu = encoder.encode(images).mean(axis=(0, 2, 3))
        new_mu = encoder.encode(transferred).mean(axis=(0, 2, 3))
        np.testing.assert_allclose(new_mu, orig_mu, atol=0.5)


class TestFrozenConvEncoder:
    def test_shapes(self, rng):
        encoder = FrozenConvEncoder(widths=(8, 16), seed=11)
        images = rng.normal(size=(3, 3, 16, 16))
        feats = encoder.encode(images)
        assert feats.shape == (3, 16, 4, 4)
        pooled = encoder.pooled(images)
        assert pooled.shape == (3, 32)  # per-channel mean + std

    def test_deterministic(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        a = FrozenConvEncoder(seed=4).pooled(images)
        b = FrozenConvEncoder(seed=4).pooled(images)
        np.testing.assert_array_equal(a, b)

    def test_distinguishes_styles(self, rng):
        """Different channel statistics land in different feature regions —
        what makes the FID metric meaningful."""
        base = rng.normal(size=(16, 3, 8, 8))
        shifted = base * 2.0 + 1.0
        encoder = FrozenConvEncoder(seed=11)
        gap = np.linalg.norm(
            encoder.pooled(base).mean(axis=0) - encoder.pooled(shifted).mean(axis=0)
        )
        assert gap > 0.5
