"""Integration and failure-injection tests across the whole stack.

These exercise the paths the unit tests cannot: full federated runs of
PARDON and its ablation variants, degenerate client data (single sample,
single class, constant images), and the end-to-end claim that style
transfer helps on a strongly style-shifted unseen domain.
"""

import numpy as np
import pytest

from repro import (
    ExperimentSetting,
    FedAvgStrategy,
    PardonConfig,
    PardonStrategy,
    run_fixed_split_protocol,
    run_split_experiment,
    synthetic_iwildcam,
    synthetic_pacs,
)
from repro.core import compute_client_style, extract_interpolation_style
from repro.data import LabeledDataset, partition_clients
from repro.fl import Client, FederatedConfig, FederatedServer, LocalTrainingConfig
from repro.nn import build_mlp_model
from repro.style import InvertibleEncoder, StyleVector, adain

SUITE = synthetic_pacs(seed=0, samples_per_class=10, image_size=8)
ENCODER = InvertibleEncoder(levels=1, seed=7)


class TestPardonEndToEnd:
    @pytest.mark.parametrize(
        "config_factory",
        [PardonConfig.v1, PardonConfig.v2, PardonConfig.v3,
         PardonConfig.v4, PardonConfig.v5],
        ids=["v1", "v2", "v3", "v4", "v5"],
    )
    def test_all_ablation_variants_complete(self, config_factory):
        setting = ExperimentSetting(
            num_clients=4, clients_per_round=2, heterogeneity=0.2,
            num_rounds=2, eval_every=2, seed=0, model_widths=(4, 8),
            embed_dim=16,
        )
        outcome = run_split_experiment(
            SUITE,
            {"train": [0, 1], "val": [2], "test": [3]},
            PardonStrategy(config_factory(),
                           LocalTrainingConfig(batch_size=8)),
            setting,
        )
        assert 0.0 <= outcome.test_accuracy <= 1.0
        for value in outcome.result.final_state.values():
            assert np.all(np.isfinite(value))

    def test_pardon_beats_fedavg_on_many_domain_suite(self):
        """The paper's headline, at test scale: on an IWildCam-like suite
        with domain-separated clients, PARDON's unseen-camera accuracy
        exceeds FedAvg's."""
        wild = synthetic_iwildcam(
            seed=3, num_train_domains=10, num_val_domains=2,
            num_test_domains=4, num_classes=10, mean_samples_per_domain=40,
            image_size=16,
        )
        setting = ExperimentSetting(
            num_clients=10, clients_per_round=0.3, heterogeneity=0.0,
            num_rounds=10, eval_every=10, seed=3,
        )
        fedavg = run_fixed_split_protocol(wild, FedAvgStrategy(), setting)
        pardon = run_fixed_split_protocol(wild, PardonStrategy(), setting)
        assert pardon.test_accuracy > fedavg.test_accuracy

    def test_pardon_full_run_deterministic(self):
        def run_once():
            setting = ExperimentSetting(
                num_clients=4, clients_per_round=2, heterogeneity=0.2,
                num_rounds=2, eval_every=2, seed=1, model_widths=(4, 8),
                embed_dim=16,
            )
            return run_split_experiment(
                SUITE,
                {"train": [0, 1], "val": [2], "test": [3]},
                PardonStrategy(local_config=LocalTrainingConfig(batch_size=8)),
                setting,
            )

        a, b = run_once(), run_once()
        assert a.val_accuracy == b.val_accuracy
        assert a.test_accuracy == b.test_accuracy


class TestDegenerateClients:
    def test_single_sample_client_styles(self):
        """A client with one image must still produce a finite style and
        survive a PARDON round."""
        images = SUITE.datasets[0].images[:1]
        style = compute_client_style(images, ENCODER)
        assert np.all(np.isfinite(style.to_array()))

    def test_single_class_client_trains(self, rng):
        """A client whose data is all one class has no triplet negatives;
        the loss degrades gracefully to the positive pull."""
        mask = SUITE.datasets[0].labels == 0
        dataset = SUITE.datasets[0].subset(np.nonzero(mask)[0])
        clients = [
            Client(0, dataset),
            Client(1, SUITE.datasets[1]),
        ]
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        strategy = PardonStrategy(local_config=LocalTrainingConfig(batch_size=8))
        server = FederatedServer(
            strategy=strategy,
            clients=clients,
            model=model,
            eval_sets={},
            config=FederatedConfig(num_rounds=2, clients_per_round=2, seed=0),
        )
        result = server.run()
        for value in result.final_state.values():
            assert np.all(np.isfinite(value))

    def test_constant_image_client(self):
        """Zero-variance images (dead sensor) must not produce NaN styles
        or NaN style transfer."""
        constant = np.full((4, 3, 8, 8), 0.7)
        style = compute_client_style(constant, ENCODER)
        assert np.all(np.isfinite(style.to_array()))
        features = ENCODER.encode(constant)
        target = StyleVector(
            mu=np.zeros(ENCODER.out_channels),
            sigma=np.ones(ENCODER.out_channels),
        )
        assert np.all(np.isfinite(adain(features, target)))

    def test_interpolation_from_identical_styles(self):
        """All clients identical (degenerate FINCH input): the global style
        equals the shared style."""
        style = compute_client_style(SUITE.datasets[0].images[:8], ENCODER)
        merged = extract_interpolation_style([style] * 5)
        np.testing.assert_allclose(merged.to_array(), style.to_array())

    def test_mixed_empty_and_nonempty_clients(self, rng):
        partition = partition_clients(
            SUITE, [0, 1], 4, 0.0, np.random.default_rng(0)
        )
        clients = [Client(i, d) for i, d in enumerate(partition.client_datasets)]
        empty_dataset = LabeledDataset(
            images=np.zeros((0,) + SUITE.image_shape),
            labels=np.zeros(0, dtype=np.int64),
            domain_ids=np.zeros(0, dtype=np.int64),
        )
        clients.append(Client(99, empty_dataset))
        strategy = PardonStrategy(local_config=LocalTrainingConfig(batch_size=8))
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        strategy.prepare(clients, model, rng)
        assert 99 not in strategy.client_styles
        assert strategy.interpolation_style is not None


class TestStyleTransferHelps:
    def test_transferred_training_data_closes_style_gap(self):
        """Mechanistic end-to-end check: transferring two domains' data to
        the interpolation style shrinks the distance between their channel
        statistics (what makes the learned features style-invariant)."""
        from repro.style import apply_style_to_images

        imgs_a = SUITE.datasets[0].images
        imgs_b = SUITE.datasets[3].images  # sketch: extreme style
        styles = [
            compute_client_style(imgs_a, ENCODER),
            compute_client_style(imgs_b, ENCODER),
        ]
        target = extract_interpolation_style(styles)
        moved_a = apply_style_to_images(imgs_a, target, ENCODER)
        moved_b = apply_style_to_images(imgs_b, target, ENCODER)

        def channel_stats(x):
            return np.concatenate(
                [x.mean(axis=(0, 2, 3)), x.std(axis=(0, 2, 3))]
            )

        gap_before = np.linalg.norm(channel_stats(imgs_a) - channel_stats(imgs_b))
        gap_after = np.linalg.norm(channel_stats(moved_a) - channel_stats(moved_b))
        assert gap_after < gap_before * 0.5
