"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.utils.rng import SeedTree


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def seed_tree() -> SeedTree:
    """A deterministic seed tree per test."""
    return SeedTree(12345)
