"""Tests for the layered wire codec stack (`repro.fl.codec`).

Three contracts, in order of importance:

1. Lossless codecs round-trip **bit-exactly** (``decode(encode(s, ref),
   ref) == s``), so run traces cannot depend on the wire format.
2. Lossy codecs round-trip within their stated tolerance, ignore the
   reference state, and produce **engine-invariant** traces (serial ==
   parallel) because the in-process engine replays the same round-trips.
3. With ``codec="delta"`` the measured per-round traffic genuinely drops —
   by the lossless entropy bound at training step sizes, and past the 2x
   acceptance bar in the fine-tuning regime delta encoding exists for.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FedAvgStrategy
from repro.data import partition_clients, synthetic_pacs
from repro.fl import (
    Client,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    ParallelExecutor,
    SerialExecutor,
    make_codec,
)
from repro.fl.codec import (
    Codec,
    DeflateCodec,
    DeltaCodec,
    Fp16Codec,
    IdentityCodec,
    Payload,
    Qint8Codec,
    analytic_scalar_bytes,
    codec_specs,
)
from repro.fl.communication import method_communication
from repro.nn import build_mlp_model
from repro.nn.serialize import encode_payload
from repro.utils.rng import SeedTree

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
FAST = LocalTrainingConfig(batch_size=8)


def make_state(rng, offset=0.0):
    return {
        "conv.weight": rng.normal(size=(4, 3, 2, 2)) + offset,
        "conv.bias": rng.normal(size=(4,)) + offset,
        "head.weight": rng.normal(size=(5, 4)).astype(np.float32),
        "bn.count": np.arange(6, dtype=np.int64),
    }


def assert_states_bit_identical(a, b):
    assert sorted(a) == sorted(b)
    for key in a:
        assert a[key].dtype == b[key].dtype
        assert a[key].shape == b[key].shape
        np.testing.assert_array_equal(a[key], b[key])


class TestRegistry:
    def test_stock_codecs_are_registered(self):
        assert set(codec_specs()) == {"identity", "delta", "fp16", "qint8"}

    @pytest.mark.parametrize("spec", ["identity", "delta", "fp16", "qint8"])
    def test_spec_round_trips(self, spec):
        assert make_codec(spec).spec == spec

    def test_deflate_composes_onto_any_base(self):
        codec = make_codec("fp16+deflate")
        assert isinstance(codec, DeflateCodec)
        assert isinstance(codec.inner, Fp16Codec)
        assert codec.spec == "fp16+deflate"
        assert not codec.lossless

    def test_codec_instances_pass_through(self):
        codec = DeltaCodec()
        assert make_codec(codec) is codec

    def test_unknown_base_raises(self):
        with pytest.raises(ValueError, match="unknown codec"):
            make_codec("zstd")

    def test_unknown_filter_raises(self):
        with pytest.raises(ValueError, match="unknown codec filter"):
            make_codec("identity+brotli")

    def test_non_string_spec_raises(self):
        with pytest.raises(TypeError):
            make_codec(42)

    def test_stateful_implies_lossless_for_stock_codecs(self):
        for spec in codec_specs():
            codec = make_codec(spec)
            if codec.stateful:
                assert codec.lossless


class TestLosslessRoundTrips:
    @pytest.mark.parametrize("spec", ["identity", "delta", "identity+deflate"])
    def test_exact_without_reference(self, rng, spec):
        codec = make_codec(spec)
        state = make_state(rng)
        decoded = codec.decode(codec.encode(state), None)
        assert_states_bit_identical(decoded, state)

    @pytest.mark.parametrize("spec", ["delta", "delta+deflate"])
    def test_exact_against_reference(self, rng, spec):
        codec = make_codec(spec)
        state = make_state(rng)
        ref = make_state(rng, offset=0.5)
        payload = codec.encode(state, ref)
        assert payload.kind == "delta"
        assert_states_bit_identical(codec.decode(payload, ref), state)

    def test_delta_frame_needs_its_reference(self, rng):
        codec = DeltaCodec()
        payload = codec.encode(make_state(rng), make_state(rng))
        with pytest.raises(ValueError, match="reference"):
            codec.decode(payload, None)

    def test_delta_rejects_mismatched_reference_keys(self, rng):
        codec = DeltaCodec()
        ref = make_state(rng)
        ref.pop("conv.bias")
        with pytest.raises(ValueError, match="keys"):
            codec.encode(make_state(rng), ref)

    def test_decode_with_wrong_codec_fails_loudly(self, rng):
        payload = IdentityCodec().encode(make_state(rng))
        with pytest.raises(ValueError, match="encoded by codec"):
            DeltaCodec().decode(payload, None)

    def test_roundtrip_is_identity_for_lossless(self, rng):
        state = make_state(rng)
        assert DeltaCodec().roundtrip(state) is state
        assert IdentityCodec().roundtrip(state) is state

    @given(st.integers(min_value=0, max_value=2**31), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_delta_round_trip_property(self, seed, with_ref):
        """Property: delta decoding is bit-exact for arbitrary float and
        integer tensors, with and without a reference."""
        rng = np.random.default_rng(seed)
        state = {
            "f64": rng.normal(size=(3, 4)) * 10.0 ** rng.integers(-8, 8),
            "f32": rng.normal(size=(7,)).astype(np.float32),
            "i32": rng.integers(-1000, 1000, size=(2, 5)).astype(np.int32),
            "scalar": np.array(rng.normal()),
        }
        ref = (
            {key: value + rng.normal() * 1e-6 for key, value in state.items()}
            if with_ref
            else None
        )
        if ref is not None:
            ref = {k: v.astype(state[k].dtype) for k, v in ref.items()}
        codec = DeltaCodec()
        decoded = codec.decode(codec.encode(state, ref), ref)
        assert_states_bit_identical(decoded, state)


class TestLossyRoundTrips:
    def test_fp16_within_relative_tolerance(self, rng):
        state = make_state(rng)
        decoded = Fp16Codec().roundtrip(state)
        for key in ("conv.weight", "conv.bias"):
            assert decoded[key].dtype == state[key].dtype
            np.testing.assert_allclose(decoded[key], state[key], rtol=1e-3, atol=1e-4)

    def test_fp16_passes_non_floats_through_exactly(self, rng):
        state = make_state(rng)
        decoded = Fp16Codec().roundtrip(state)
        np.testing.assert_array_equal(decoded["bn.count"], state["bn.count"])
        assert decoded["bn.count"].dtype == state["bn.count"].dtype

    def test_qint8_within_half_step_tolerance(self, rng):
        state = make_state(rng)
        decoded = Qint8Codec().roundtrip(state)
        for key in ("conv.weight", "conv.bias", "head.weight"):
            value = state[key]
            step = (value.max() - value.min()) / 255.0
            assert decoded[key].dtype == value.dtype
            assert np.max(np.abs(decoded[key] - value)) <= step / 2 + 1e-12
        np.testing.assert_array_equal(decoded["bn.count"], state["bn.count"])

    def test_qint8_constant_tensor_is_exact(self):
        state = {"w": np.full((3, 3), 0.25)}
        decoded = Qint8Codec().roundtrip(state)
        np.testing.assert_array_equal(decoded["w"], state["w"])

    @pytest.mark.parametrize("spec", ["fp16", "qint8"])
    def test_lossy_codecs_ignore_the_reference(self, rng, spec):
        """Statelessness is what keeps serial and parallel traces identical
        under lossy codecs: a reference chain would make the decode depend
        on engine-side history."""
        codec = make_codec(spec)
        state = make_state(rng)
        ref = make_state(rng, offset=1.0)
        with_ref = codec.decode(codec.encode(state, ref), ref)
        without = codec.decode(codec.encode(state), None)
        assert_states_bit_identical(with_ref, without)

    def test_deflate_preserves_the_inner_result(self, rng):
        state = make_state(rng)
        plain = Fp16Codec().roundtrip(state)
        packed = make_codec("fp16+deflate").roundtrip(state)
        assert_states_bit_identical(plain, packed)


class TestWireSizes:
    """Encoded payload sizes, through the real serializer."""

    @staticmethod
    def _bytes(codec, state, ref=None):
        return len(encode_payload(make_codec(codec).encode(state, ref)))

    def test_quantized_codecs_shrink_the_wire(self, rng):
        state = {"w": rng.normal(size=(64, 64)), "b": rng.normal(size=(64,))}
        identity = self._bytes("identity", state)
        assert self._bytes("fp16", state) < identity / 3.5
        assert self._bytes("qint8", state) < identity / 6.5

    def test_delta_beats_identity_near_a_reference(self, rng):
        """The acceptance-bar property at the codec level: against a
        fine-tune-scale reference (relative change ~1e-8) the delta frame
        is at least 2x smaller than the identity wire."""
        state = {"w": rng.normal(size=(64, 64)), "b": rng.normal(size=(64,))}
        ref = {key: value * (1.0 + 1e-8) for key, value in state.items()}
        assert self._bytes("delta", state, ref) * 2 <= self._bytes("identity", state)

    def test_delta_full_frame_still_compresses(self, rng):
        """Even the reference-less first frame ships shuffled + DEFLATEd:
        exponent byte planes across a tensor are low-entropy."""
        state = {"w": rng.normal(size=(64, 64))}
        assert self._bytes("delta", state) < self._bytes("identity", state)

    def test_analytic_scalar_bytes_per_codec(self):
        assert analytic_scalar_bytes("identity") == 8.0
        assert analytic_scalar_bytes("delta") == 8.0  # lossless upper bound
        assert analytic_scalar_bytes("fp16") == 2.0
        assert analytic_scalar_bytes("qint8") == 1.0
        assert analytic_scalar_bytes("qint8+deflate") == 1.0

    def test_method_communication_codec_adjustment(self):
        model = build_mlp_model((3, 8, 8), 7, rng=np.random.default_rng(0))
        dense = method_communication("fedavg", model)
        half = method_communication("fedavg", model, codec="fp16")
        assert half.per_round_up * 4 == dense.per_round_up
        assert half.per_round_down * 4 == dense.per_round_down


# -- end-to-end: codecs under the execution engines ---------------------------


def _make_clients(n_clients=8, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, 0.2, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def _run_once(codec, executor, rounds=3, local_config=FAST):
    server = FederatedServer(
        strategy=FedAvgStrategy(local_config),
        clients=_make_clients(),
        model=build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        ),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=4, seed=0, codec=codec
        ),
        executor=executor,
    )
    return server.run()


def _trace(result):
    return (
        [
            (
                record.round_index,
                record.mean_local_loss,
                tuple(record.participants),
                tuple(sorted(record.eval_accuracy.items())),
            )
            for record in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


class TestCrossEngineTraces:
    def test_delta_trace_bit_identical_to_identity_on_both_engines(self):
        """The headline regression: codec="delta" may not change a single
        bit of the run trace, serially or across the process pool."""
        baseline = _run_once("identity", SerialExecutor())
        serial_delta = _run_once("delta", SerialExecutor(codec="delta"))
        with ParallelExecutor(num_workers=2, codec="delta") as executor:
            parallel_delta = _run_once("delta", executor)
        with ParallelExecutor(num_workers=2) as executor:
            parallel_identity = _run_once("identity", executor)
        reference = _trace(baseline)
        assert _trace(serial_delta) == reference
        assert _trace(parallel_delta) == reference
        assert _trace(parallel_identity) == reference
        for key in baseline.final_state:
            np.testing.assert_array_equal(
                baseline.final_state[key], parallel_delta.final_state[key]
            )

    @pytest.mark.parametrize("spec", ["fp16", "qint8"])
    def test_lossy_codecs_are_engine_invariant(self, spec):
        serial = _run_once(spec, SerialExecutor(codec=spec))
        with ParallelExecutor(num_workers=2, codec=spec) as executor:
            parallel = _run_once(spec, executor)
        assert _trace(serial) == _trace(parallel)
        for key in serial.final_state:
            np.testing.assert_array_equal(
                serial.final_state[key], parallel.final_state[key]
            )

    def test_fp16_accuracy_stays_within_tolerance(self):
        """Stated tolerance for the lossy wire: half-precision training must
        track the identity run's accuracy closely at this scale."""
        baseline = _run_once("identity", SerialExecutor())
        fp16 = _run_once("fp16", SerialExecutor(codec="fp16"))
        for name, accuracy in baseline.final_accuracy.items():
            assert abs(fp16.final_accuracy[name] - accuracy) <= 0.1

    def test_mismatched_executor_codec_is_rejected(self):
        with pytest.raises(ValueError, match="codec"):
            FederatedServer(
                strategy=FedAvgStrategy(FAST),
                clients=_make_clients(),
                model=build_mlp_model(
                    SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
                ),
                eval_sets={},
                config=FederatedConfig(num_rounds=1, codec="delta"),
                executor=SerialExecutor(),  # carries identity
            )

    def test_bad_codec_spec_fails_at_config_time(self):
        with pytest.raises(ValueError, match="unknown codec"):
            FederatedConfig(codec="zstd")


class TestMeasuredWireReduction:
    """Per-round measured bytes with codec="delta" vs. identity."""

    @staticmethod
    def _per_round_bytes(codec, local_config, rounds=3):
        """Total wire bytes per round, measured hop-by-hop on a 2-worker
        pool (registration lands in round 0's bucket)."""
        clients = _make_clients()
        model = build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        )
        strategy = FedAvgStrategy(local_config)
        state = model.state_dict()
        tree = SeedTree(0).child("server", "codec-bytes")
        totals = []
        with ParallelExecutor(num_workers=2, codec=codec) as executor:
            for round_index in range(rounds):
                before = executor.wire_stats()
                seeds = [
                    tree.seed("client", client.client_id, "round", round_index)
                    for client in clients
                ]
                updates = executor.run_round(
                    strategy, model, state, clients, round_index, seeds
                )
                after = executor.wire_stats()
                totals.append(
                    (after.bytes_up - before.bytes_up)
                    + (after.bytes_down - before.bytes_down)
                )
                state = strategy.aggregate(state, updates, round_index)
        return totals

    def test_delta_halves_traffic_in_the_fine_tune_regime(self):
        """The acceptance bar: after round 1, delta moves <= half of
        identity's bytes.  Measured in the regime delta encoding is *for*
        — fine-tuning, where updates are tiny relative to the weights.
        (From-scratch training at bench learning rates randomizes the low
        mantissa bits every round, which caps any lossless codec near
        1.3x; see the module docstring of repro.fl.codec.)"""
        fine_tune = LocalTrainingConfig(batch_size=8, learning_rate=1e-8)
        identity = self._per_round_bytes("identity", fine_tune)
        delta = self._per_round_bytes("delta", fine_tune)
        for identity_round, delta_round in zip(identity[1:], delta[1:]):
            assert delta_round * 2 <= identity_round

    def test_delta_still_wins_at_training_step_sizes(self):
        """From-scratch regression floor: even with full-entropy updates,
        the shuffled-XOR delta must beat identity by a clear margin."""
        identity = self._per_round_bytes("identity", FAST)
        delta = self._per_round_bytes("delta", FAST)
        assert sum(delta[1:]) * 1.1 <= sum(identity[1:])


class TestPayloadTransport:
    def test_payload_takes_the_out_of_band_fast_path(self, rng):
        payload = IdentityCodec().encode(make_state(rng))
        blob = encode_payload(payload)
        assert blob[:4] == b"RPB5"
        from repro.nn.serialize import decode_payload

        decoded = decode_payload(blob)
        assert isinstance(decoded, Payload)
        assert_states_bit_identical(decoded.tensors, payload.tensors)

    def test_custom_codec_registration(self):
        class NoopCodec(Codec):
            name = "noop-test"

            def encode(self, state, ref=None):
                return Payload(codec=self.spec, kind="full", tensors=state)

            def decode(self, payload, ref=None):
                return payload.tensors

        from repro.fl.codec import _BASE_CODECS, register_codec

        register_codec("noop-test", NoopCodec)
        try:
            assert isinstance(make_codec("noop-test"), NoopCodec)
            assert "noop-test" in codec_specs()
        finally:
            _BASE_CODECS.pop("noop-test", None)
