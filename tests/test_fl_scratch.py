"""Tests for the change-tracking scratch wrapper (`repro.fl.client`).

`ScratchSpace` is the foundation of the delta-based wire protocol: every
key written or removed since the last sync point must be captured by
`collect_delta`, and applying the delta to any copy that was in sync must
reproduce the source exactly.
"""

import pickle

import numpy as np
import pytest

from repro.data.synthetic import LabeledDataset
from repro.fl import Client, ScratchDelta, ScratchSpace


def make_dataset(n=4):
    rng = np.random.default_rng(0)
    return LabeledDataset(
        images=rng.normal(size=(n, 3, 4, 4)),
        labels=np.zeros(n, dtype=np.int64),
        domain_ids=np.zeros(n, dtype=np.int64),
    )


class TestScratchSpaceMapping:
    def test_behaves_like_a_dict(self):
        space = ScratchSpace()
        space["a"] = 1
        space["b"] = 2
        assert space["a"] == 1
        assert "b" in space and "c" not in space
        assert len(space) == 2
        assert sorted(space) == ["a", "b"]
        assert dict(space) == {"a": 1, "b": 2}
        del space["a"]
        assert "a" not in space

    def test_get_pop_setdefault(self):
        space = ScratchSpace({"a": 1})
        assert space.get("missing") is None
        assert space.pop("missing", "default") == "default"
        assert space.pop("a") == 1
        assert space.setdefault("b", 7) == 7
        assert space.setdefault("b", 9) == 7

    def test_equality_with_dicts_and_spaces(self):
        assert ScratchSpace({"a": 1}) == {"a": 1}
        assert ScratchSpace({"a": 1}) == ScratchSpace({"a": 1})
        assert ScratchSpace({"a": 1}) != {"a": 2}


class TestChangeTracking:
    def test_initial_contents_count_as_unsynced(self):
        space = ScratchSpace({"a": 1})
        assert space.dirty_keys == ("a",)

    def test_collect_delta_captures_writes_and_removals(self):
        space = ScratchSpace({"keep": 0, "drop": 1})
        space.mark_clean()
        space["new"] = 2
        space["keep"] = 3
        del space["drop"]
        delta = space.collect_delta()
        assert delta.updates == {"new": 2, "keep": 3}
        assert delta.removed == ("drop",)
        # Collecting marks clean: the next delta is empty.
        assert not space.collect_delta()

    def test_write_then_delete_in_one_interval_is_a_removal(self):
        space = ScratchSpace()
        space.mark_clean()
        space["temp"] = 1
        del space["temp"]
        delta = space.collect_delta()
        assert delta.updates == {}
        assert delta.removed == ("temp",)

    def test_pop_with_default_on_missing_key_is_not_a_removal(self):
        space = ScratchSpace()
        space.mark_clean()
        space.pop("never-there", None)
        assert not space.collect_delta()

    def test_clear_marks_every_key_removed(self):
        space = ScratchSpace({"a": 1, "b": 2})
        space.mark_clean()
        space.clear()
        delta = space.collect_delta()
        assert sorted(delta.removed) == ["a", "b"]

    def test_apply_delta_round_trips_a_synced_copy(self):
        source = ScratchSpace({"keep": 0, "drop": 1, "edit": 2})
        mirror = ScratchSpace(dict(source))
        source.mark_clean()
        source["new"] = 3
        source["edit"] = 4
        del source["drop"]
        mirror.apply_delta(source.collect_delta())
        assert mirror == source

    def test_apply_delta_does_not_re_mark_dirty(self):
        space = ScratchSpace()
        space.mark_clean()
        space.apply_delta(ScratchDelta(updates={"a": 1}, removed=("b",)))
        assert space["a"] == 1
        assert not space.collect_delta()

    def test_delta_truthiness(self):
        assert not ScratchDelta()
        assert ScratchDelta(updates={"a": 1})
        assert ScratchDelta(removed=("a",))


class TestPickling:
    def test_round_trip_preserves_data_and_tracking(self):
        space = ScratchSpace({"synced": 0})
        space.mark_clean()
        space["pending"] = np.arange(3)
        clone = pickle.loads(pickle.dumps(space))
        assert sorted(clone) == sorted(space)
        assert clone["synced"] == 0
        assert clone.dirty_keys == ("pending",)
        delta = clone.collect_delta()
        np.testing.assert_array_equal(delta.updates["pending"], np.arange(3))


class TestClientIntegration:
    def test_client_wraps_plain_dict_scratch(self):
        client = Client(0, make_dataset(), scratch={"seed": 1})
        assert isinstance(client.scratch, ScratchSpace)
        assert client.scratch["seed"] == 1

    def test_default_scratch_is_a_scratch_space(self):
        client = Client(0, make_dataset())
        assert isinstance(client.scratch, ScratchSpace)
        client.scratch["k"] = "v"
        assert client.scratch.collect_delta().updates == {"k": "v"}


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
