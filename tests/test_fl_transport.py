"""Tests for the wire transports (`repro.fl.transport`).

The acceptance bar: the transport moves byte-identical blobs, so serial,
parallel+pipe, and parallel+shm runs must produce *bit-identical* traces
under every lossless codec; the shm transport must count the broadcast
blob once per round (`unique_bytes_down` independent of worker count);
and no run may strand a shared-memory segment — not on a clean close, not
on a pool rebuild, not when the transport is dropped without one.
"""

import gc
import os
import sys

import numpy as np
import pytest

from repro.baselines import FedAvgStrategy
from repro.fl import (
    Client,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    ParallelExecutor,
    PipeTransport,
    SerialExecutor,
    ShmTransport,
    make_executor,
    make_transport,
    resolve_transport,
    shm_supported,
    transport_specs,
)
from repro.fl.transport import SHM_SEGMENT_PREFIX, ShmHandle
from repro.data import synthetic_pacs, partition_clients
from repro.nn import build_mlp_model
from repro.utils.rng import SeedTree

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
FAST = LocalTrainingConfig(batch_size=8)

needs_shm = pytest.mark.skipif(
    not shm_supported(), reason="platform has no POSIX shared memory"
)


def _shm_dir_listable() -> bool:
    return sys.platform == "linux" and os.path.isdir("/dev/shm")


def _stray_segments() -> list[str]:
    """Our segments visible in /dev/shm (linux's shm backing directory)."""
    if not _shm_dir_listable():
        return []
    return [
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(SHM_SEGMENT_PREFIX)
    ]


def make_clients(n_clients=8, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, 0.2, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def _model(rng_seed=0, hidden_dim=64):
    return build_mlp_model(
        SUITE.image_shape,
        SUITE.num_classes,
        rng=np.random.default_rng(rng_seed),
        hidden_dim=hidden_dim,
    )


def run_once(executor, rounds=3, codec="identity"):
    server = FederatedServer(
        strategy=FedAvgStrategy(FAST),
        clients=make_clients(),
        model=_model(),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=4, seed=0, codec=codec
        ),
        executor=executor,
    )
    return server.run()


def _trace(result):
    return (
        [
            (r.round_index, r.mean_local_loss, tuple(r.participants),
             tuple(sorted(r.eval_accuracy.items())))
            for r in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


def _round_seeds(clients, rounds=1):
    tree = SeedTree(0).child("server", "test")
    return [
        [tree.seed("client", c.client_id, "round", r) for c in clients]
        for r in range(rounds)
    ]


class TestRegistry:
    def test_specs(self):
        assert set(transport_specs()) == {"pipe", "shm", "tcp"}

    def test_make_kinds(self):
        assert isinstance(make_transport("pipe"), PipeTransport)
        assert isinstance(make_transport("shm"), ShmTransport)

    def test_built_instance_passes_through(self):
        transport = PipeTransport()
        assert make_transport(transport) is transport

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError):
            make_transport("carrier-pigeon")
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")

    def test_non_string_spec_raises(self):
        with pytest.raises(TypeError):
            make_transport(7)

    def test_auto_prefers_shm_when_supported(self):
        assert resolve_transport("auto", supported=True) == "shm"
        assert resolve_transport("auto", supported=False) == "pipe"
        assert resolve_transport("auto") == (
            "shm" if shm_supported() else "pipe"
        )

    def test_concrete_names_pass_through(self):
        assert resolve_transport("pipe") == "pipe"
        assert resolve_transport("shm", supported=False) == "shm"

    def test_make_executor_validates_transport_for_every_kind(self):
        with pytest.raises(ValueError):
            make_executor("serial", transport="bogus")
        with pytest.raises(ValueError):
            make_executor("parallel", workers=2, transport="bogus")

    def test_serial_accepts_and_ignores_transport(self):
        """executor='auto' may resolve serial with any transport configured;
        the in-process engine has no wire, so the spec must not explode."""
        executor = make_executor("serial", transport="shm")
        assert isinstance(executor, SerialExecutor)
        assert executor.transport is None


class TestPipeTransport:
    def test_blob_is_its_own_handle(self):
        transport = PipeTransport()
        blob = b"x" * 1000
        handle = transport.publish(blob)
        assert handle is blob
        assert transport.fetch(handle) == blob
        assert transport.handle_wire_bytes(handle) == 1000
        assert transport.publish_wire_bytes(blob) == 0

    def test_upload_passthrough(self):
        transport = PipeTransport()
        assert transport.recv_upload(transport.send_upload(b"up")) == b"up"


@needs_shm
class TestShmTransport:
    def test_publish_fetch_roundtrip(self):
        server_side = ShmTransport()
        worker_side = ShmTransport()
        blob = os.urandom(4096)
        try:
            handle = server_side.publish(blob)
            assert isinstance(handle, ShmHandle)
            assert handle.length == len(blob)
            view = worker_side.fetch(handle)
            assert bytes(view) == blob
            assert view.readonly
            # The handle, not the blob, is what crosses per worker.
            assert server_side.handle_wire_bytes(handle) < 256
            assert server_side.publish_wire_bytes(blob) == len(blob)
            del view  # drop the exported buffer before closing the mapping
        finally:
            worker_side.close()
            server_side.close()
        assert _stray_segments() == []

    def test_end_round_unlinks_published_segments(self):
        transport = ShmTransport()
        transport.publish(b"a" * 128)
        transport.publish(b"b" * 128)
        if _shm_dir_listable():
            assert len(_stray_segments()) == 2
        transport.end_round()
        assert _stray_segments() == []
        transport.close()

    def test_close_is_idempotent(self):
        transport = ShmTransport()
        transport.publish(b"x")
        transport.close()
        transport.close()
        assert _stray_segments() == []

    def test_finalizer_reclaims_dropped_transport(self):
        """A transport dropped without close() (aborted run) must not
        strand segments: the weakref.finalize guard unlinks them."""
        transport = ShmTransport()
        transport.publish(b"orphan" * 100)
        del transport
        gc.collect()
        assert _stray_segments() == []

    def test_worker_attachment_retention(self):
        """The worker side keeps only the most recent attachments open
        (older mappings may back still-alive decoded views)."""
        server_side = ShmTransport()
        worker_side = ShmTransport()
        try:
            handles = [server_side.publish(bytes([i]) * 64) for i in range(4)]
            for handle in handles:
                worker_side.fetch(handle)
            assert len(worker_side._attached) == 2
            assert list(worker_side._attached) == [
                handles[2].segment, handles[3].segment
            ]
        finally:
            worker_side.close()
            server_side.close()

    def test_fetch_rejects_foreign_handles(self):
        transport = ShmTransport()
        with pytest.raises(TypeError):
            transport.fetch(b"a pipe blob")


class TestTransportInvariance:
    """Satellite: serial, parallel+pipe, and parallel+shm must trace
    bit-identically under both a stateless and a stateful lossless codec."""

    @pytest.mark.parametrize("codec", ["identity", "delta"])
    def test_cross_engine_cross_transport_traces(self, codec):
        serial = run_once(SerialExecutor(codec=codec), codec=codec)
        transports = ["pipe"] + (["shm"] if shm_supported() else [])
        for transport in transports:
            with ParallelExecutor(
                num_workers=2, codec=codec, transport=transport
            ) as executor:
                parallel = run_once(executor, codec=codec)
            assert _trace(parallel) == _trace(serial), (
                f"{transport}/{codec} trace diverged from serial"
            )
            for key in serial.final_state:
                np.testing.assert_array_equal(
                    serial.final_state[key], parallel.final_state[key]
                )


class TestUniqueBytes:
    """Satellite: bytes_down counted the identical broadcast once per
    worker; unique_bytes_down counts it once per round."""

    def _warm_round_wire(self, workers, transport, rounds=3):
        """Wire-stat deltas for the final (warm: no registration) round."""
        clients = make_clients()
        model = _model()
        state = model.state_dict()
        seeds = _round_seeds(clients, rounds=rounds)
        with ParallelExecutor(num_workers=workers, transport=transport) as ex:
            for r in range(rounds - 1):
                ex.run_round(FedAvgStrategy(FAST), model, state, clients, r, seeds[r])
            before = ex.wire_stats()
            ex.run_round(
                FedAvgStrategy(FAST), model, state, clients, rounds - 1,
                seeds[rounds - 1],
            )
            after = ex.wire_stats()
        return before, after

    def test_unique_down_independent_of_worker_count(self):
        deltas = []
        for workers in (2, 4):
            before, after = self._warm_round_wire(workers, "pipe")
            deltas.append(after.unique_bytes_down - before.unique_bytes_down)
        assert deltas[0] == deltas[1]

    def test_pipe_bytes_down_scale_with_workers_unique_does_not(self):
        (b2, a2) = self._warm_round_wire(2, "pipe")
        (b4, a4) = self._warm_round_wire(4, "pipe")
        assert (a4.bytes_down - b4.bytes_down) > (a2.bytes_down - b2.bytes_down)
        assert (a4.unique_bytes_down - b4.unique_bytes_down) == (
            a2.unique_bytes_down - b2.unique_bytes_down
        )

    @needs_shm
    def test_shm_unique_matches_pipe_unique(self):
        """The unique floor is transport-independent: both move the same
        post-codec blobs."""
        (pb, pa) = self._warm_round_wire(2, "pipe")
        (sb, sa) = self._warm_round_wire(2, "shm")
        assert (pa.unique_bytes_down - pb.unique_bytes_down) == (
            sa.unique_bytes_down - sb.unique_bytes_down
        )

    @needs_shm
    def test_shm_broadcast_is_single_copy(self):
        """Warm-round downlink under shm ~= the unique floor (blob once +
        tiny handles); under pipe it's roughly blob x workers."""
        (pb, pa) = self._warm_round_wire(2, "pipe")
        (sb, sa) = self._warm_round_wire(2, "shm")
        pipe_down = pa.bytes_down - pb.bytes_down
        shm_down = sa.bytes_down - sb.bytes_down
        shm_unique = sa.unique_bytes_down - sb.unique_bytes_down
        assert shm_down < pipe_down
        # Overhead above the unique floor is only handles + strategy blobs.
        assert shm_down - shm_unique < 4096

    def test_unique_down_lands_in_timing_report(self):
        with ParallelExecutor(num_workers=2, transport="pipe") as executor:
            result = run_once(executor, rounds=2)
        timing = result.timing
        assert 0 < timing.unique_bytes_down < timing.bytes_down

    def test_serial_engine_reports_zero_unique_down(self):
        result = run_once(SerialExecutor(), rounds=2)
        assert result.timing.unique_bytes_down == 0


class TestOverlappedDecode:
    """Broadcast decode runs lazily at the round's first tensor touch and
    its wall clock is recorded as the overlap window."""

    @pytest.mark.parametrize(
        "transport", ["pipe"] + (["shm"] if shm_supported() else [])
    )
    def test_one_decode_per_participating_worker_per_round(self, transport):
        clients = make_clients()
        model = _model()
        state = model.state_dict()
        seeds = _round_seeds(clients, rounds=2)
        with ParallelExecutor(num_workers=2, transport=transport) as executor:
            for round_index in range(2):
                updates = executor.run_round(
                    FedAvgStrategy(FAST), model, state, clients,
                    round_index, seeds[round_index],
                )
                decoded = [u for u in updates if u.decode_seconds > 0.0]
                assert len(decoded) == 2  # one per participating worker

    def test_decode_window_lands_in_timing_report(self):
        with ParallelExecutor(num_workers=2) as executor:
            result = run_once(executor, rounds=2)
        assert result.timing.broadcast_decode_seconds_total > 0.0

    def test_serial_engine_has_no_decode_window(self):
        result = run_once(SerialExecutor(), rounds=2)
        assert result.timing.broadcast_decode_seconds_total == 0.0


@needs_shm
class TestSegmentLifecycle:
    """Satellite: no stray /dev/shm segments after runs, closes, rebuilds."""

    def test_no_stray_segments_after_run_and_close(self):
        with ParallelExecutor(num_workers=2, transport="shm") as executor:
            run_once(executor, rounds=2)
            # Segments are round-scoped: already unlinked between rounds,
            # not only at close.
            assert _stray_segments() == []
        assert _stray_segments() == []

    def test_no_stray_segments_after_pool_rebuild(self):
        clients = make_clients()
        seeds = _round_seeds(clients, rounds=2)
        executor = ParallelExecutor(num_workers=2, transport="shm")
        try:
            model = _model()
            executor.run_round(
                FedAvgStrategy(FAST), model, model.state_dict(), clients, 0, seeds[0]
            )
            # A different architecture forces a pool rebuild mid-life.
            wider = _model(hidden_dim=128)
            executor.run_round(
                FedAvgStrategy(FAST), wider, wider.state_dict(), clients, 0, seeds[0]
            )
            assert _stray_segments() == []
        finally:
            executor.close()
        assert _stray_segments() == []

    def test_warm_pool_reuse_stays_clean(self):
        executor = ParallelExecutor(num_workers=2, transport="shm")
        try:
            first = run_once(executor, rounds=2)
            second = run_once(executor, rounds=2)
            assert _trace(first) == _trace(second)
            assert _stray_segments() == []
        finally:
            executor.close()


class TestCLIKnob:
    def test_transport_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lodo", "--suite", "pacs", "--method", "fedavg", "--transport", "shm"]
        )
        assert args.transport == "shm"

    def test_transport_default_is_auto(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lodo", "--suite", "pacs", "--method", "fedavg"]
        )
        assert args.transport == "auto"

    def test_unknown_transport_is_a_usage_error(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["lodo", "--suite", "pacs", "--method", "fedavg",
                 "--transport", "avian"]
            )

    def test_setting_threads_transport_into_config(self):
        from repro.eval import ExperimentSetting

        setting = ExperimentSetting(transport="pipe")
        assert setting.transport == "pipe"
        executor = setting.make_executor()
        assert isinstance(executor, SerialExecutor)  # tiny fan-out -> serial

    def test_config_rejects_unknown_transport(self):
        with pytest.raises(ValueError):
            FederatedConfig(transport="avian")
