"""Tests for secure aggregation, communication accounting, checkpointing,
MixStyle, and the CLI."""

import numpy as np
import pytest

from repro.baselines.mixstyle import MixStyleStrategy
from repro.data import synthetic_pacs, partition_clients
from repro.fl import Client, FederatedConfig, FederatedServer, LocalTrainingConfig
from repro.fl.communication import method_communication
from repro.fl.secure import SecureAggregator, masked_upload
from repro.nn import build_mlp_model
from repro.nn.checkpoint import load_model_into, load_state, save_model, save_state
from repro.nn.serialize import state_allclose

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)


def make_states(rng, n):
    return [
        {"w": rng.normal(size=(3, 2)), "b": rng.normal(size=(4,))}
        for _ in range(n)
    ]


class TestSecureAggregation:
    def test_masks_cancel_in_sum(self, rng):
        states = make_states(rng, 4)
        seeds = [11, 22, 33, 44]
        agg = SecureAggregator(session=0)
        uploads = [
            masked_upload(state, seed, seeds, agg.session)
            for state, seed in zip(states, seeds)
        ]
        total = agg.aggregate(uploads)
        expected = {
            key: sum(s[key] for s in states) for key in states[0]
        }
        for key in expected:
            np.testing.assert_allclose(total[key], expected[key], atol=1e-9)

    def test_individual_uploads_are_masked(self, rng):
        """A single masked upload reveals ~nothing: it differs from the raw
        state by noise of the mask scale."""
        states = make_states(rng, 3)
        seeds = [1, 2, 3]
        upload = masked_upload(states[0], 1, seeds, session=0, mask_scale=10.0)
        gap = np.abs(upload["w"] - states[0]["w"]).mean()
        assert gap > 1.0  # masks dominate the raw values

    def test_sessions_use_different_masks(self, rng):
        states = make_states(rng, 2)
        seeds = [1, 2]
        a = masked_upload(states[0], 1, seeds, session=0)
        b = masked_upload(states[0], 1, seeds, session=1)
        assert not np.allclose(a["w"], b["w"])

    def test_average_recovers_mean(self, rng):
        states = make_states(rng, 3)
        seeds = [5, 6, 7]
        agg = SecureAggregator(session=2)
        uploads = [
            masked_upload(state, seed, seeds, agg.session)
            for state, seed in zip(states, seeds)
        ]
        mean = agg.average(uploads)
        for key in states[0]:
            np.testing.assert_allclose(
                mean[key],
                np.mean([s[key] for s in states], axis=0),
                atol=1e-9,
            )

    def test_weighted_average_not_supported_directly(self, rng):
        agg = SecureAggregator(session=0)
        states = make_states(rng, 2)
        seeds = [1, 2]
        uploads = [
            masked_upload(state, seed, seeds, 0)
            for state, seed in zip(states, seeds)
        ]
        with pytest.raises(NotImplementedError):
            agg.average(uploads, weights=[1.0, 2.0])

    def test_validation(self, rng):
        state = make_states(rng, 1)[0]
        with pytest.raises(ValueError):
            masked_upload(state, 9, [1, 2], session=0)
        with pytest.raises(ValueError):
            masked_upload(state, 1, [1, 1], session=0)
        with pytest.raises(ValueError):
            SecureAggregator(0).aggregate([])


class TestCommunication:
    def model(self, rng):
        return build_mlp_model((3, 8, 8), num_classes=7, rng=rng)

    def test_weight_exchange_dominates_everywhere(self, rng):
        model = self.model(rng)
        for method in ("fedavg", "fedsr", "fedgma", "feddg_ga", "ccst", "pardon"):
            comm = method_communication(method, model)
            assert comm.per_round_up >= model.num_parameters() * 8

    def test_pardon_one_time_is_one_style_vector(self, rng):
        comm = method_communication("pardon", self.model(rng), style_dim=24)
        assert comm.one_time_up == 24 * 8
        assert comm.one_time_down == 24 * 8

    def test_ccst_download_scales_with_clients(self, rng):
        model = self.model(rng)
        small = method_communication("ccst", model, num_clients=10)
        large = method_communication("ccst", model, num_clients=100)
        assert large.one_time_down == 10 * small.one_time_down

    def test_fpl_ships_prototypes_every_round(self, rng):
        model = self.model(rng)
        fedavg = method_communication("fedavg", model)
        fpl = method_communication("fpl", model, num_classes=7)
        assert fpl.per_round_up - fedavg.per_round_up == model.embed_dim * 7 * 8

    def test_total_accounting(self, rng):
        comm = method_communication("pardon", self.model(rng))
        total = comm.total(rounds=10, participants_per_round=4, num_clients=20)
        expected = (comm.per_round_up + comm.per_round_down) * 4 * 10 + (
            comm.one_time_up + comm.one_time_down
        ) * 20
        assert total == expected

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            method_communication("nope", self.model(rng))


class TestCheckpoint:
    def test_state_round_trip(self, rng, tmp_path):
        state = make_states(rng, 1)[0]
        path = save_state(state, tmp_path / "ckpt")
        assert path.suffix == ".npz"
        restored = load_state(path)
        assert state_allclose(state, restored)

    def test_model_round_trip(self, rng, tmp_path):
        model = build_mlp_model((3, 8, 8), num_classes=3, rng=rng)
        path = save_model(model, tmp_path / "model.npz")
        fresh = build_mlp_model((3, 8, 8), num_classes=3,
                                rng=np.random.default_rng(99))
        load_model_into(fresh, path)
        x = rng.normal(size=(2, 3, 8, 8))
        np.testing.assert_allclose(model.forward(x), fresh.forward(x))

    def test_rejects_foreign_npz(self, rng, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            load_state(path)


class TestMixStyle:
    def test_runs_federated(self):
        partition = partition_clients(
            SUITE, [0, 1], 4, 0.2, np.random.default_rng(0)
        )
        clients = [Client(i, d) for i, d in enumerate(partition.client_datasets)]
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes,
                                rng=np.random.default_rng(0))
        server = FederatedServer(
            strategy=MixStyleStrategy(local_config=LocalTrainingConfig(batch_size=8)),
            clients=clients,
            model=model,
            eval_sets={"test": SUITE.datasets[2]},
            config=FederatedConfig(num_rounds=2, clients_per_round=2, seed=0),
        )
        result = server.run()
        for value in result.final_state.values():
            assert np.all(np.isfinite(value))

    def test_mixing_preserves_labels_and_shape(self, rng):
        strategy = MixStyleStrategy(mix_probability=1.0)
        images = SUITE.datasets[0].images[:8]
        mixed = strategy._mix_batch(images, rng)
        assert mixed.shape == images.shape
        assert not np.allclose(mixed, images)

    def test_single_sample_batch_not_mixed(self, rng):
        strategy = MixStyleStrategy(mix_probability=1.0)
        images = SUITE.datasets[0].images[:1]
        np.testing.assert_array_equal(strategy._mix_batch(images, rng), images)

    def test_validation(self):
        with pytest.raises(ValueError):
            MixStyleStrategy(alpha=0.0)
        with pytest.raises(ValueError):
            MixStyleStrategy(mix_probability=2.0)


class TestCli:
    def test_list_command(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pardon" in out and "pacs" in out

    def test_run_command_smoke(self, capsys, monkeypatch):
        from repro import cli

        # Swap in a tiny suite so the CLI test is fast.
        monkeypatch.setitem(
            cli.SUITES, "pacs",
            lambda seed: synthetic_pacs(seed=seed, samples_per_class=4,
                                        image_size=8),
        )
        code = cli.main([
            "run", "--suite", "pacs", "--method", "fedavg",
            "--train-domains", "photo", "art_painting",
            "--val-domain", "cartoon", "--test-domain", "sketch",
            "--rounds", "2", "--clients", "4", "--participation", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "test acc" in out

    def test_unknown_method_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "--suite", "pacs", "--method", "bogus",
                  "--train-domains", "photo", "--val-domain", "cartoon",
                  "--test-domain", "sketch"])
