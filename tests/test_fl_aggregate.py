"""Tests for Byzantine-robust aggregation + adaptive round control.

The acceptance bar: ``mean`` stays bit-identical to the historical
``average_states`` path (the cross-engine chaos traces of earlier PRs are
untouched); under a seeded ``byzantine=0.2:scale`` attack ``mean``
demonstrably diverges while ``median`` and ``krum`` stay within 2% of
their fault-free accuracy; byzantine chaos traces are bit-identical across
serial / parallel+pipe / parallel+shm; and quorum / adaptive-deadline runs
— whose membership depends on wall clock — replay *exactly* from the
``RoundRecord.accepted`` sets they record.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FedAvgStrategy, FPLStrategy
from repro.fl import (
    Client,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    ParallelExecutor,
    RoundTimeoutError,
    SerialExecutor,
    make_aggregator,
    make_executor,
    shm_supported,
)
from repro.fl.aggregate import (
    AGGREGATOR_KINDS,
    Aggregator,
    ClipAggregator,
    KrumAggregator,
    MeanAggregator,
    MedianAggregator,
    TrimmedMeanAggregator,
    aggregator_specs,
    register_aggregator,
)
from repro.fl.faults import (
    ADAPTIVE_WARMUP_ROUNDS,
    BYZANTINE_SCALE,
    AdaptiveDeadline,
    FaultEvent,
    FixedDeadline,
    byzantine_state,
    make_deadline_policy,
    make_fault_plan,
    state_is_corrupt,
)
from repro.data import partition_clients, synthetic_pacs
from repro.nn import build_mlp_model
from repro.nn.serialize import average_states

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
FAST = LocalTrainingConfig(batch_size=8)

#: The acceptance-criteria attack: a fifth of all (client, round) cells
#: upload a 100x-amplified poisoned update from the seeded schedule.
ATTACK = "byzantine=0.2:scale,seed=11"

needs_shm = pytest.mark.skipif(
    not shm_supported(), reason="platform has no POSIX shared memory"
)


def make_clients(n_clients=8, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, 0.2, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def _model(rng_seed=0):
    return build_mlp_model(
        SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(rng_seed)
    )


def run_once(executor, strategy=None, rounds=3, config_kwargs=None):
    server = FederatedServer(
        strategy=strategy or FedAvgStrategy(FAST),
        clients=make_clients(),
        model=_model(),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=4, seed=0,
            **(config_kwargs or {}),
        ),
        executor=executor,
    )
    return server.run()


def _trace(result):
    """The engine-invariant per-round trace (incl. drop map + accepted)."""
    return (
        [
            (r.round_index, r.mean_local_loss, tuple(r.participants),
             tuple(sorted(r.dropped.items())),
             None if r.accepted is None else tuple(r.accepted),
             tuple(sorted(r.eval_accuracy.items())))
            for r in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


def _vec_states(rows, dtype=np.float64):
    return [{"w": np.array(row, dtype=dtype)} for row in rows]


# -- the registry -------------------------------------------------------------


class TestRegistry:
    def test_known_kinds_registered(self):
        assert set(AGGREGATOR_KINDS) == set(aggregator_specs())

    @pytest.mark.parametrize(
        "spec, expect",
        [
            ("mean", "mean"),
            ("median", "median"),
            ("trimmed_mean", "trimmed_mean(1)"),
            ("trimmed_mean(2)", "trimmed_mean(2)"),
            ("krum", "krum"),
            ("krum(1)", "krum(1)"),
            ("multi-krum", "multi-krum(2)"),
            ("multi-krum(3, 1)", "multi-krum(3, 1)"),
            ("clip(5)+median", "clip(5)+median"),
            ("clip(2.5)+krum", "clip(2.5)+krum"),
        ],
    )
    def test_spec_round_trips(self, spec, expect):
        built = make_aggregator(spec)
        assert built.spec == expect
        assert make_aggregator(built.spec).spec == expect

    def test_none_means_mean_and_passthrough(self):
        assert isinstance(make_aggregator(None), MeanAggregator)
        rule = MedianAggregator()
        assert make_aggregator(rule) is rule

    def test_robust_marking(self):
        assert not make_aggregator("mean").robust
        for spec in ("median", "trimmed_mean", "krum", "multi-krum"):
            assert make_aggregator(spec).robust
        assert not make_aggregator("clip(5)+mean").robust
        assert make_aggregator("clip(5)+median").robust

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            make_aggregator("meteor")

    def test_only_clip_may_prefix(self):
        with pytest.raises(ValueError, match="clip"):
            make_aggregator("median+krum")

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            make_aggregator("trimmed_mean(x)")
        with pytest.raises(ValueError):
            make_aggregator("clip(-1)+median")
        with pytest.raises(ValueError):
            make_aggregator("clip()+median")
        with pytest.raises(TypeError):
            make_aggregator("")

    def test_custom_rule_registration(self):
        class FirstAggregator(Aggregator):
            name = "first"

            def aggregate(self, states, weights, ref=None):
                self.last_rejected = tuple(range(1, len(states)))
                return dict(states[0])

        register_aggregator("first", lambda: FirstAggregator())
        try:
            built = make_aggregator("first")
            states = _vec_states([[1.0], [9.0]])
            assert built.aggregate(states, [1.0, 1.0])["w"][0] == 1.0
            assert built.last_rejected == (1,)
        finally:
            from repro.fl.aggregate import _AGGREGATORS

            _AGGREGATORS.pop("first", None)


# -- the rules themselves -----------------------------------------------------


class TestRules:
    def test_mean_is_bitwise_average_states(self):
        rng = np.random.default_rng(0)
        states = [
            {"a": rng.normal(size=(4, 3)), "b": rng.normal(size=7)}
            for _ in range(5)
        ]
        weights = [1.0, 2.0, 3.0, 4.0, 5.0]
        ours = MeanAggregator().aggregate(states, weights)
        theirs = average_states(states, weights)
        for key in theirs:
            np.testing.assert_array_equal(ours[key], theirs[key])

    def test_median_survives_minority_outliers(self):
        # 2 of 5 adversarial: below the 1/2 breakdown point.
        states = _vec_states([[1.0], [2.0], [3.0], [1e6], [-1e6]])
        fused = MedianAggregator().aggregate(states, [1.0] * 5)
        assert fused["w"][0] == 2.0

    def test_mean_has_breakdown_point_zero(self):
        states = _vec_states([[1.0], [2.0], [3.0], [1e6]])
        fused = MeanAggregator().aggregate(states, [1.0] * 4)
        assert fused["w"][0] > 1e5  # one adversary steers it arbitrarily

    def test_trimmed_mean_drops_extremes(self):
        states = _vec_states([[1.0], [2.0], [3.0], [1e6], [-1e6]])
        fused = TrimmedMeanAggregator(k=1).aggregate(states, [1.0] * 5)
        assert fused["w"][0] == 2.0

    def test_trimmed_mean_k_clamped(self):
        # k=5 over 3 states clamps to 1 so something survives the trim.
        states = _vec_states([[0.0], [5.0], [100.0]])
        fused = TrimmedMeanAggregator(k=5).aggregate(states, [1.0] * 3)
        assert fused["w"][0] == 5.0

    def test_krum_selects_an_honest_upload(self):
        # 2 of 7 adversarial: krum's f<n/3 regime (7 >= 2*2+3).
        honest = [[1.0, 1.0], [1.1, 0.9], [0.9, 1.1], [1.0, 1.2], [1.2, 1.0]]
        attack = [[500.0, -500.0], [-500.0, 500.0]]
        states = _vec_states(honest + attack)
        rule = KrumAggregator(m=1, f=2)
        fused = rule.aggregate(states, [1.0] * 7)
        assert np.abs(fused["w"]).max() < 2.0
        assert set(rule.last_rejected) >= {5, 6}

    def test_multi_krum_rejects_the_attackers(self):
        honest = [[1.0], [1.1], [0.9], [1.05], [0.95]]
        attack = [[1e4], [-1e4]]
        rule = KrumAggregator(m=3, f=2)
        fused = rule.aggregate(_vec_states(honest + attack), [1.0] * 7)
        assert 0.8 < fused["w"][0] < 1.2
        assert {5, 6} <= set(rule.last_rejected)
        assert len(rule.last_rejected) == 4  # n - m

    def test_krum_few_uploads_keeps_all(self):
        rule = KrumAggregator(m=1)
        fused = rule.aggregate(_vec_states([[3.0]]), [1.0])
        assert fused["w"][0] == 3.0
        assert rule.last_rejected == ()

    def test_krum_tie_breaks_by_position(self):
        # Two identical clusters: scores tie, the earliest index wins.
        states = _vec_states([[1.0], [1.0], [1.0], [1.0]])
        rule = KrumAggregator(m=1, f=0)
        rule.aggregate(states, [1.0] * 4)
        assert rule.last_rejected == (1, 2, 3)

    def test_krum_returns_a_fresh_copy(self):
        states = _vec_states([[1.0], [1.0], [5.0]])
        fused = KrumAggregator(m=1, f=0).aggregate(states, [1.0] * 3)
        fused["w"][0] = -7.0
        assert states[0]["w"][0] == 1.0

    def test_clip_bounds_a_single_puller(self):
        ref = {"w": np.zeros(2)}
        states = _vec_states([[1.0, 0.0], [0.0, 1.0], [300.0, 400.0]])
        rule = ClipAggregator(5.0, MeanAggregator())
        fused = rule.aggregate(states, [1.0] * 3, ref=ref)
        # the 500-norm attack shrinks to norm 5: (3,4) after clipping
        np.testing.assert_allclose(fused["w"], [4.0 / 3.0, 5.0 / 3.0])
        assert rule.last_clipped == 1

    def test_clip_measures_delta_from_ref(self):
        ref = {"w": np.full(4, 10.0)}
        state = {"w": np.full(4, 10.0) + 1.0}  # delta norm 2 <= tau
        rule = ClipAggregator(5.0, MeanAggregator())
        fused = rule.aggregate([state], [1.0], ref=ref)
        np.testing.assert_array_equal(fused["w"], state["w"])
        assert rule.last_clipped == 0

    def test_clip_propagates_inner_rejections(self):
        honest = [[1.0], [1.1], [0.9], [1.05], [0.95]]
        rule = ClipAggregator(1e9, KrumAggregator(m=1, f=0))
        rule.aggregate(_vec_states(honest + [[1e4]]), [1.0] * 6)
        assert 5 in rule.last_rejected

    def test_reduce_vectors_matches_robustness(self):
        matrix = np.array([[1.0], [2.0], [1e6]])
        assert MedianAggregator().reduce_vectors(matrix)[0] == 2.0
        assert MeanAggregator().reduce_vectors(matrix)[0] > 1e5

    def test_non_float_tensors_pass_through_clip(self):
        state = {"w": np.full(3, 100.0), "step": np.array([7], dtype=np.int64)}
        rule = ClipAggregator(1.0, MeanAggregator())
        fused = rule.aggregate([state], [1.0])
        assert fused["step"][0] == 7


class TestPermutationInvariance:
    @staticmethod
    def _states_from(draw_values):
        return [{"w": np.array(row, dtype=np.float64)} for row in draw_values]

    @given(
        values=st.lists(
            st.lists(
                st.floats(-100.0, 100.0, allow_nan=False), min_size=3, max_size=3
            ),
            min_size=3,
            max_size=7,
        ),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=10, deadline=None)
    @pytest.mark.parametrize(
        "spec", ["mean", "median", "trimmed_mean(1)", "multi-krum(2, 1)"]
    )
    def test_rules_are_value_permutation_invariant(self, spec, values, seed):
        states = self._states_from(values)
        weights = [1.0] * len(states)
        order = np.random.default_rng(seed).permutation(len(states))
        rule = make_aggregator(spec)
        a = rule.aggregate(states, weights)
        b = rule.aggregate(
            [states[i] for i in order], [weights[i] for i in order]
        )
        # Not bitwise (fp addition is not associative) — value-equal.
        np.testing.assert_allclose(a["w"], b["w"], rtol=1e-9, atol=1e-9)


# -- byzantine fault injection ------------------------------------------------


class TestByzantineFaults:
    REF = {"w": np.linspace(-1.0, 1.0, 8, dtype=np.float64)}

    def _event(self, mode, payload_seed=3):
        return FaultEvent(
            "byzantine", 0, 0, mode=mode, payload_seed=payload_seed
        )

    def test_spec_parses(self):
        plan = make_fault_plan("byzantine=0.3:scale,screen=4,seed=5")
        assert plan.byzantine_rate == 0.3
        assert plan.byzantine_mode == "scale"
        assert plan.norm_screen == 4.0
        assert plan.seed == 5

    def test_default_mode_is_signflip(self):
        assert make_fault_plan("byzantine=0.5").byzantine_mode == "signflip"

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            make_fault_plan("byzantine=0.5:meteor")

    def test_schedule_is_deterministic_with_payload_seeds(self):
        plan = make_fault_plan("byzantine=0.6:random,seed=9")
        events = [plan.fault_for(c, r) for c in range(10) for r in range(5)]
        again = [plan.fault_for(c, r) for c in range(10) for r in range(5)]
        assert events == again
        byz = [e for e in events if e is not None and e.kind == "byzantine"]
        assert byz, "rate 0.6 must hit somewhere in a 10x5 grid"
        assert len({e.payload_seed for e in byz}) > 1

    def test_signflip_reflects_the_update(self):
        state = {"w": self.REF["w"] + 0.25}
        attacked = byzantine_state(state, self.REF, self._event("signflip"))
        np.testing.assert_allclose(attacked["w"], self.REF["w"] - 0.25)

    def test_scale_amplifies_the_update(self):
        state = {"w": self.REF["w"] + 0.5}
        attacked = byzantine_state(state, self.REF, self._event("scale"))
        np.testing.assert_allclose(
            attacked["w"], self.REF["w"] + BYZANTINE_SCALE * 0.5
        )

    def test_random_is_finite_and_seed_dependent(self):
        state = {"w": self.REF["w"] + 0.1}
        a = byzantine_state(state, self.REF, self._event("random", 1))
        b = byzantine_state(state, self.REF, self._event("random", 1))
        c = byzantine_state(state, self.REF, self._event("random", 2))
        np.testing.assert_array_equal(a["w"], b["w"])
        assert not np.array_equal(a["w"], c["w"])
        assert np.isfinite(a["w"]).all()

    def test_attacks_pass_the_nan_screen(self):
        # Byzantine uploads must *reach* aggregation — that is the point.
        state = {"w": self.REF["w"] + 0.5}
        for mode in ("signflip", "scale", "random"):
            attacked = byzantine_state(state, self.REF, self._event(mode))
            assert not state_is_corrupt(attacked)

    def test_non_float_tensors_pass_through(self):
        state = {"w": self.REF["w"] + 1.0, "step": np.array([4], dtype=np.int64)}
        attacked = byzantine_state(state, self.REF, self._event("scale"))
        assert attacked["step"][0] == 4


class TestNormScreen:
    def test_magnitude_screen_rejects_blowups(self):
        ref = {"w": np.ones(4)}
        mild = {"w": np.ones(4) * 1.5}
        wild = {"w": np.ones(4) * 50.0}
        assert not state_is_corrupt(mild, ref=ref, norm_screen=4.0)
        assert state_is_corrupt(wild, ref=ref, norm_screen=4.0)
        # Off by default: no screen, no rejection.
        assert not state_is_corrupt(wild, ref=ref)
        assert not state_is_corrupt(wild)

    def test_screen_drops_scaled_attacks_in_a_run(self):
        # With the screen on, 100x-amplified uploads never reach
        # aggregation: they are dropped as "corrupt" like NaN uploads.
        executor = SerialExecutor(
            faults="byzantine=0.3:scale,screen=4,seed=11"
        )
        result = run_once(executor, rounds=3)
        reasons = {
            reason
            for record in result.history.records
            for reason in record.dropped.values()
        }
        assert reasons == {"corrupt"}


# -- round control: deadline policies, quorum, timeout ------------------------


class TestDeadlinePolicies:
    def test_fixed_policy_round_trips(self):
        policy = make_deadline_policy(2.0)
        assert policy == FixedDeadline(2.0)
        assert not policy.adaptive
        assert policy.resolve([]) == 2.0
        assert make_deadline_policy("1.5") == FixedDeadline(1.5)
        assert make_deadline_policy(policy) is policy
        assert make_deadline_policy(None) is None

    def test_fixed_policy_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="deadline"):
            make_deadline_policy(0.0)
        with pytest.raises(ValueError, match="deadline"):
            make_deadline_policy("-3")

    def test_adaptive_spec_parses(self):
        policy = make_deadline_policy("percentile:p95")
        assert policy.adaptive
        assert policy.percentile == 95.0
        assert policy.spec == "percentile:p95"
        assert make_deadline_policy("percentile:p50").percentile == 50.0

    def test_bad_adaptive_specs_rejected(self):
        for bad in ("percentile", "percentile:95", "percentile:p0",
                    "percentile:p101", "meteor:p95"):
            with pytest.raises(ValueError):
                make_deadline_policy(bad)

    def test_adaptive_warms_up_then_tracks_the_percentile(self):
        policy = AdaptiveDeadline(percentile=50.0, window=4, slack=2.0)
        assert policy.resolve([]) is None
        assert policy.resolve([0.1] * (ADAPTIVE_WARMUP_ROUNDS - 1)) is None
        # Median of the last 4 of [9, 1, 1, 3, 3] = median(1,1,3,3) = 2.
        assert policy.resolve([9.0, 1.0, 1.0, 3.0, 3.0]) == pytest.approx(4.0)

    def test_executor_observes_only_under_adaptive_policies(self):
        fixed = SerialExecutor(deadline=5.0)
        fixed._observe_round_duration(0.5)
        assert len(fixed._round_durations) == 0
        adaptive = SerialExecutor(deadline="percentile:p95")
        adaptive._observe_round_duration(0.5)
        assert len(adaptive._round_durations) == 1

    def test_deadline_property_backcompat(self):
        assert SerialExecutor(deadline=2.0).deadline == 2.0
        assert SerialExecutor(deadline="percentile:p95").deadline is None
        assert SerialExecutor().deadline is None


class TestQuorum:
    def test_quorum_must_be_positive(self):
        with pytest.raises(ValueError, match="quorum"):
            SerialExecutor(quorum=0)
        with pytest.raises(ValueError, match="quorum"):
            FederatedConfig(quorum=0)

    def test_serial_quorum_truncates_in_sampling_order(self):
        executor = SerialExecutor(quorum=2)
        result = run_once(executor, rounds=2, config_kwargs={"quorum": 2})
        for record in result.history.records:
            assert record.accepted is not None
            assert len(record.accepted) == 2
            # Serial's canonical arrival order is the sampling order.
            expected = [
                c for c in record.participants if c not in record.dropped
            ] + [c for c in record.participants if c in record.dropped]
            assert record.accepted == expected[:2]
            assert set(record.dropped.values()) == {"quorum"}
            assert len(record.dropped) == 2

    def test_quorum_early_close_reported(self):
        executor = SerialExecutor(quorum=2)
        run_once(executor, rounds=1, config_kwargs={"quorum": 2})
        report = executor.last_fault_report
        assert report.early_closed

    def test_timeout_error_names_the_quorum(self):
        error = RoundTimeoutError(3, [4, 5], quorum=5, accepted=(0, 1))
        assert error.quorum == 5
        assert error.accepted == (0, 1)
        assert "below quorum 5" in str(error)
        assert "accepted 2" in str(error)
        legacy = RoundTimeoutError(3, [4, 5])
        assert "quorum" not in str(legacy)

    def test_parallel_quorum_misses_raise(self):
        # Three of four clients hang past the deadline: one honest upload
        # arrives, which satisfies the legacy no-quorum contract ("some
        # update arrived, aggregate the survivors") but stays below
        # quorum 2 — and that must now raise, naming both numbers.
        from repro.fl import FaultPlan
        from repro.utils.rng import SeedTree

        clients = make_clients()[:4]
        plan = FaultPlan(
            events=tuple(
                FaultEvent("hang", 0, c.client_id, delay_seconds=5.0)
                for c in clients[1:]
            )
        )
        executor = ParallelExecutor(
            num_workers=2, faults=plan, deadline=0.75, quorum=2
        )
        tree = SeedTree(0).child("server", "test")
        seeds = [tree.seed("client", c.client_id, "round", 0) for c in clients]
        model = _model()
        try:
            with pytest.raises(RoundTimeoutError) as excinfo:
                executor.run_round(
                    FedAvgStrategy(FAST), model, model.state_dict(),
                    clients, 0, seeds,
                )
            assert excinfo.value.quorum == 2
            assert excinfo.value.accepted == (clients[0].client_id,)
            assert "below quorum 2" in str(excinfo.value)
        finally:
            executor.close()


# -- server threading ---------------------------------------------------------


class TestServerThreading:
    def test_config_validates_aggregator_spec(self):
        FederatedConfig(aggregator="clip(5)+median")  # fine
        with pytest.raises(ValueError, match="aggregator"):
            FederatedConfig(aggregator="meteor")

    def test_config_accepts_adaptive_deadline(self):
        FederatedConfig(deadline="percentile:p95")
        with pytest.raises(ValueError):
            FederatedConfig(deadline="percentile:p0")
        with pytest.raises(ValueError):
            FederatedConfig(deadline=-1.0)

    def test_server_installs_config_aggregator(self):
        strategy = FedAvgStrategy(FAST)
        FederatedServer(
            strategy=strategy,
            clients=make_clients(),
            model=_model(),
            eval_sets={},
            config=FederatedConfig(
                num_rounds=1, clients_per_round=2, aggregator="median"
            ),
        )
        assert strategy.aggregator.spec == "median"

    def test_server_rejects_conflicting_aggregators(self):
        strategy = FedAvgStrategy(FAST)
        strategy.aggregator = make_aggregator("krum")
        with pytest.raises(ValueError, match="aggregator"):
            FederatedServer(
                strategy=strategy,
                clients=make_clients(),
                model=_model(),
                eval_sets={},
                config=FederatedConfig(
                    num_rounds=1, clients_per_round=2, aggregator="median"
                ),
            )

    def test_server_quorum_mismatch_rejected(self):
        with pytest.raises(ValueError, match="quorum"):
            FederatedServer(
                strategy=FedAvgStrategy(FAST),
                clients=make_clients(),
                model=_model(),
                eval_sets={},
                config=FederatedConfig(
                    num_rounds=1, clients_per_round=2, quorum=2
                ),
                executor=SerialExecutor(),
            )

    def test_server_adaptive_deadline_mismatch_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            FederatedServer(
                strategy=FedAvgStrategy(FAST),
                clients=make_clients(),
                model=_model(),
                eval_sets={},
                config=FederatedConfig(
                    num_rounds=1, clients_per_round=2,
                    deadline="percentile:p95",
                ),
                executor=SerialExecutor(deadline=2.0),
            )

    def test_mean_without_quorum_records_no_accepted(self):
        # The PR 6 bit-identity guarantee: default runs carry records
        # identical to prior releases (accepted stays None).
        result = run_once(SerialExecutor(), rounds=2)
        assert all(r.accepted is None for r in result.history.records)

    def test_explicit_mean_is_bit_identical_to_default(self):
        base = run_once(SerialExecutor(), rounds=2)
        explicit = run_once(
            SerialExecutor(), rounds=2, config_kwargs={"aggregator": "mean"}
        )
        assert _trace(base) == _trace(explicit)

    def test_rejected_uploads_reach_the_timing_report(self):
        result = run_once(
            SerialExecutor(), rounds=2, config_kwargs={"aggregator": "krum"}
        )
        # krum keeps one of four uploads per round: 3 rejections x 2 rounds.
        assert result.timing.rejected_uploads == 6

    def test_setting_threads_robustness_knobs(self):
        from repro.eval import ExperimentSetting

        setting = ExperimentSetting(
            aggregator="median", quorum=3, deadline="percentile:p90"
        )
        executor = setting.make_executor()
        assert executor.quorum == 3
        assert executor.deadline_policy == make_deadline_policy(
            "percentile:p90"
        )


class TestCLI:
    def test_robustness_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lodo", "--suite", "pacs", "--method", "fedavg",
             "--aggregator", "clip(5)+krum", "--quorum", "3",
             "--deadline", "percentile:p95"]
        )
        assert args.aggregator == "clip(5)+krum"
        assert args.quorum == 3
        assert args.deadline == "percentile:p95"

    def test_flags_default_to_historical_behaviour(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lodo", "--suite", "pacs", "--method", "fedavg"]
        )
        assert args.aggregator == "mean"
        assert args.quorum is None

    def test_numeric_deadline_still_parses_as_seconds(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lodo", "--suite", "pacs", "--method", "fedavg",
             "--deadline", "1.5"]
        )
        assert args.deadline == 1.5

    def test_bad_specs_are_usage_errors(self):
        from repro.cli import build_parser

        for flags in (["--aggregator", "meteor"], ["--quorum", "0"],
                      ["--deadline", "percentile:p0"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["lodo", "--suite", "pacs", "--method", "fedavg", *flags]
                )

    def test_timing_table_row_matches_header(self):
        from repro.cli import _TIMING_HEADER, _timing_row

        result = run_once(
            SerialExecutor(), rounds=1, config_kwargs={"aggregator": "krum"}
        )
        row = _timing_row("krum", result.timing)
        assert len(row) == len(_TIMING_HEADER)
        assert row[_TIMING_HEADER.index("rejected")] == "3"


# -- the acceptance pins ------------------------------------------------------


class TestByzantineRuns:
    def _accuracy(self, aggregator, faults=None):
        executor = SerialExecutor(faults=faults)
        result = run_once(
            executor, rounds=4,
            config_kwargs={"aggregator": aggregator,
                           **({"faults": faults} if faults else {})},
        )
        return result.final_accuracy["test"]

    def test_mean_diverges_where_median_and_krum_survive(self):
        # The acceptance pin: under byzantine=0.2 scaled-gradient attacks,
        # mean demonstrably diverges while the robust rules stay within
        # 2% of their own fault-free accuracy.
        for aggregator in ("median", "krum"):
            clean = self._accuracy(aggregator)
            attacked = self._accuracy(aggregator, faults=ATTACK)
            assert attacked >= clean - 0.02, (
                f"{aggregator} lost more than 2% under {ATTACK}"
            )
        clean_mean = self._accuracy("mean")
        attacked_mean = self._accuracy("mean", faults=ATTACK)
        assert attacked_mean < clean_mean - 0.10, (
            "mean should demonstrably diverge under the scaled attack"
        )

    def test_chaos_trace_is_engine_invariant_under_attack(self):
        faults = "dropout=0.1," + ATTACK
        kwargs = {"faults": faults, "aggregator": "median"}
        serial = run_once(SerialExecutor(faults=faults), rounds=3,
                          config_kwargs=kwargs)
        pipe = make_executor(
            "parallel", 2, faults=faults, transport="pipe"
        )
        try:
            parallel = run_once(pipe, rounds=3, config_kwargs=kwargs)
        finally:
            pipe.close()
        assert _trace(serial) == _trace(parallel)

    @needs_shm
    def test_chaos_trace_matches_on_shm_too(self):
        faults = "dropout=0.1," + ATTACK
        kwargs = {"faults": faults, "aggregator": "krum"}
        serial = run_once(SerialExecutor(faults=faults), rounds=3,
                          config_kwargs=kwargs)
        shm = make_executor("parallel", 2, faults=faults, transport="shm")
        try:
            parallel = run_once(shm, rounds=3, config_kwargs=kwargs)
        finally:
            shm.close()
        assert _trace(serial) == _trace(parallel)

    def test_byzantine_rides_lossy_codecs(self):
        # The attack applies to the *decoded* upload before the codec's
        # lossy roundtrip on serial — same order as the worker path.
        faults = ATTACK
        kwargs = {"faults": faults, "aggregator": "median",
                  "codec": "fp16"}
        serial = run_once(
            SerialExecutor(faults=faults, codec="fp16"), rounds=2,
            config_kwargs=kwargs,
        )
        pipe = make_executor(
            "parallel", 2, faults=faults, codec="fp16", transport="pipe"
        )
        try:
            parallel = run_once(pipe, rounds=2, config_kwargs=kwargs)
        finally:
            pipe.close()
        assert _trace(serial) == _trace(parallel)


class TestReplay:
    def test_set_replay_requires_accepted_sets(self):
        result = run_once(SerialExecutor(), rounds=1)
        with pytest.raises(ValueError, match="accepted"):
            SerialExecutor().set_replay(result.history)

    def test_serial_quorum_replays_bit_identically(self):
        original = run_once(
            SerialExecutor(quorum=2), rounds=3, config_kwargs={"quorum": 2}
        )
        replayer = SerialExecutor()
        replayer.set_replay(original.history)
        replayed = run_once(replayer, rounds=3)
        assert _trace(replayed) == _trace(original)

    def test_parallel_quorum_replays_on_serial(self):
        # The wall-clock-dependent accepted set, replayed exactly on a
        # different engine: the cross-engine bit-identity guarantee
        # extended to racy membership.
        executor = ParallelExecutor(num_workers=2, quorum=2)
        try:
            original = run_once(
                executor, rounds=2, config_kwargs={"quorum": 2}
            )
        finally:
            executor.close()
        for record in original.history.records:
            assert record.accepted is not None
            assert len(record.accepted) >= 2
        replayer = SerialExecutor()
        replayer.set_replay(original.history)
        replayed = run_once(replayer, rounds=2)
        assert _trace(replayed) == _trace(original)

    def test_quorum_replay_reinjects_update_faults(self):
        faults = "byzantine=0.25:signflip,seed=13"
        original = run_once(
            SerialExecutor(faults=faults, quorum=3), rounds=3,
            config_kwargs={"faults": faults, "quorum": 3},
        )
        replayer = SerialExecutor(faults=faults)
        replayer.set_replay(original.history)
        replayed = run_once(
            replayer, rounds=3, config_kwargs={"faults": faults}
        )
        assert _trace(replayed) == _trace(original)

    def test_adaptive_deadline_run_records_and_replays(self):
        original = run_once(SerialExecutor(deadline="percentile:p95"),
                            rounds=4,
                            config_kwargs={"deadline": "percentile:p95"})
        assert all(
            r.accepted is not None for r in original.history.records
        )
        replayer = SerialExecutor()
        replayer.set_replay(original.history)
        replayed = run_once(replayer, rounds=4)
        assert _trace(replayed) == _trace(original)

    def test_clear_replay_restores_live_control(self):
        result = run_once(
            SerialExecutor(quorum=2), rounds=1, config_kwargs={"quorum": 2}
        )
        executor = SerialExecutor()
        executor.set_replay(result.history)
        assert executor.records_accepted
        executor.clear_replay()
        assert not executor.records_accepted


class TestFPLPrototypeHook:
    def test_robust_rule_hardens_prototype_fusion(self):
        matrix = np.vstack(
            [np.ones((4, 3)), np.full((1, 3), 1e6)]
        )
        strategy = FPLStrategy(local_config=FAST)
        historical = strategy._fuse_prototypes(matrix)
        assert historical.max() > 1.0  # FINCH path, poisoned row leaks in
        strategy.aggregator = make_aggregator("median")
        hardened = strategy._fuse_prototypes(matrix)
        np.testing.assert_allclose(hardened, np.ones(3))

    def test_mean_rule_keeps_the_finch_path(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(6, 4))
        strategy = FPLStrategy(local_config=FAST)
        assert not strategy.aggregator.robust
        a = strategy._fuse_prototypes(matrix)
        b = strategy._fuse_prototypes(matrix)
        np.testing.assert_array_equal(a, b)
