"""Tests for the composable objective registry (repro.nn.objective).

Covers the registry surface (lookup, duplicate registration, unknown
names), CompositeObjective construction/override semantics, the override
spec parser, and finite-difference gradient checks of every term that
routes gradient through the embedding or logits entry points.
"""

import numpy as np
import pytest

from tests.gradcheck import numeric_gradient
from repro.nn.objective import (
    OBJECTIVE_TERMS,
    ClassAlignTerm,
    CompositeObjective,
    ConsistencyTerm,
    CrossEntropyTerm,
    EmbeddingNormTerm,
    EnsembleStepContext,
    FeatureAlignTerm,
    ObjectiveTerm,
    ProtoNCETerm,
    StepContext,
    make_term,
    objective_term_specs,
    parse_objective_overrides,
    prototype_nce,
    register_objective_term,
)

BUILTIN_TERMS = (
    "align",
    "ce",
    "class_align",
    "consistency",
    "embed_l2",
    "pair_l2",
    "proto_nce",
    "triplet_style",
)


def make_context(
    rng,
    *,
    batch=5,
    views=1,
    dim=6,
    classes=4,
    extras=None,
):
    """A random single-view or two-view step context with zeroed buffers."""
    rows = batch * views
    embeddings = rng.normal(size=(rows, dim))
    logits = rng.normal(size=(rows, classes))
    labels = rng.integers(0, classes, size=batch)
    return StepContext(
        labels=labels,
        embeddings=embeddings,
        logits=logits,
        batch=batch,
        views=views,
        grad_logits=np.zeros_like(logits),
        grad_embedding=np.zeros_like(embeddings),
        extras=extras or {},
    )


class TestRegistry:
    def test_builtin_terms_registered(self):
        assert objective_term_specs() == BUILTIN_TERMS

    def test_make_term_builds_named_term(self):
        term = make_term("proto_nce", temperature=0.25)
        assert isinstance(term, ProtoNCETerm)
        assert term.temperature == 0.25

    def test_make_term_unknown_name(self):
        with pytest.raises(ValueError, match="unknown objective term"):
            make_term("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_objective_term("ce", CrossEntropyTerm)

    def test_custom_registration_round_trips(self):
        class NullTerm(ObjectiveTerm):
            name = "null"
            uses_embedding = False

            def apply(self, ctx, weight):
                return 0.0

        register_objective_term("null", NullTerm)
        try:
            assert isinstance(make_term("null"), NullTerm)
            objective = CompositeObjective([("ce", 1.0), ("null", 2.0)])
            assert objective.weights == {"ce": 1.0, "null": 2.0}
        finally:
            del OBJECTIVE_TERMS["null"]


class TestParseOverrides:
    def test_spec_string(self):
        assert parse_objective_overrides("ce=1, proto_nce=0.7") == {
            "ce": 1.0,
            "proto_nce": 0.7,
        }

    def test_mapping_passthrough(self):
        assert parse_objective_overrides({"align": 2}) == {"align": 2.0}

    def test_empty_chunks_ignored(self):
        assert parse_objective_overrides("ce=1,,") == {"ce": 1.0}

    @pytest.mark.parametrize(
        "bad", ["ce", "=1", "ce=abc", "ce=-0.5", "ce=inf", "ce=nan"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_objective_overrides(bad)


class TestCompositeObjective:
    def test_weights_and_spec(self):
        objective = CompositeObjective([("ce", 1.0), ("embed_l2", 0.5)])
        assert objective.weights == {"ce": 1.0, "embed_l2": 0.5}
        assert objective.spec == "ce=1,embed_l2=0.5"

    def test_spec_round_trips_through_overrides(self):
        objective = CompositeObjective([("ce", 1.0), ("proto_nce", 0.7)])
        again = objective.with_overrides(objective.spec)
        assert again.weights == objective.weights

    def test_overrides_replace_only_named_weights(self):
        objective = CompositeObjective([("ce", 1.0), ("embed_l2", 0.1)])
        updated = objective.with_overrides("embed_l2=0.9")
        assert updated.weights == {"ce": 1.0, "embed_l2": 0.9}
        # The original is untouched (with_overrides is functional).
        assert objective.weights["embed_l2"] == 0.1

    def test_override_preserves_parameterized_term_instance(self):
        term = ProtoNCETerm(temperature=0.125)
        objective = CompositeObjective([("ce", 1.0), ("proto_nce", 0.5, term)])
        updated = objective.with_overrides("proto_nce=1.5")
        assert updated.bindings[1].term is term

    def test_unknown_override_name_is_an_error(self):
        objective = CompositeObjective([("ce", 1.0)])
        with pytest.raises(ValueError, match="unknown objective term"):
            objective.with_overrides("proto_nce=0.7")

    def test_none_or_empty_overrides_are_identity(self):
        objective = CompositeObjective([("ce", 1.0)])
        assert objective.with_overrides(None) is objective
        assert objective.with_overrides("") is objective

    def test_rejects_bad_constructions(self):
        with pytest.raises(ValueError):
            CompositeObjective([])
        with pytest.raises(ValueError):
            CompositeObjective([("ce", -1.0)])
        with pytest.raises(ValueError):
            CompositeObjective([("ce", 1.0), ("ce", 0.5)])
        with pytest.raises(ValueError):
            CompositeObjective([("ce", float("nan"))])

    def test_needs_embedding(self):
        assert not CompositeObjective([("ce", 1.0)]).needs_embedding()
        assert CompositeObjective(
            [("ce", 1.0), ("embed_l2", 0.1)]
        ).needs_embedding()

    def test_zero_weight_terms_are_skipped(self, rng):
        class ExplodingTerm(ObjectiveTerm):
            name = "boom"

            def apply(self, ctx, weight):
                raise AssertionError("zero-weight term must not run")

        objective = CompositeObjective(
            [("ce", 1.0), ("boom", 0.0, ExplodingTerm())]
        )
        ctx = make_context(rng)
        total = objective.evaluate(ctx)
        assert np.isfinite(total)

    def test_evaluate_sums_term_losses(self):
        """The composite's total is the left-fold of its terms' weighted
        losses over identical contexts — the bitwise contract."""
        objective = CompositeObjective([("ce", 1.0), ("embed_l2", 0.5)])
        ce_only = CompositeObjective([("ce", 1.0)])
        l2_only = CompositeObjective([("embed_l2", 0.5)])
        both = objective.evaluate(make_context(np.random.default_rng(7)))
        ce = ce_only.evaluate(make_context(np.random.default_rng(7)))
        l2 = l2_only.evaluate(make_context(np.random.default_rng(7)))
        assert both == ce + l2


class TestTermGradients:
    """Finite-difference checks: each term's accumulated gradient matches
    central differences of its returned loss (references held constant)."""

    def test_cross_entropy_logits_gradient(self, rng):
        ctx = make_context(rng)
        term = CrossEntropyTerm()
        term.apply(ctx, 0.7)

        def loss():
            return CrossEntropyTerm().apply(
                StepContext(
                    labels=ctx.labels,
                    embeddings=ctx.embeddings,
                    logits=ctx.logits,
                    batch=ctx.batch,
                    grad_logits=np.zeros_like(ctx.logits),
                ),
                0.7,
            )

        numeric = numeric_gradient(loss, ctx.logits)
        np.testing.assert_allclose(ctx.grad_logits, numeric, atol=1e-7)

    def test_cross_entropy_two_view_primary_only(self, rng):
        ctx = make_context(rng, views=2)
        CrossEntropyTerm(all_views=False).apply(ctx, 1.0)
        # Gradient confined to the primary view's rows.
        assert np.all(ctx.grad_logits[ctx.batch :] == 0.0)
        assert np.any(ctx.grad_logits[: ctx.batch] != 0.0)

    def test_cross_entropy_two_view_all_views(self, rng):
        ctx = make_context(rng, views=2)
        CrossEntropyTerm(all_views=True).apply(ctx, 1.0)
        assert np.any(ctx.grad_logits[ctx.batch :] != 0.0)

    def test_embedding_norm_gradient(self, rng):
        ctx = make_context(rng)
        EmbeddingNormTerm().apply(ctx, 0.3)

        def loss():
            return 0.3 * float(np.mean(np.sum(ctx.embeddings**2, axis=1)))

        numeric = numeric_gradient(loss, ctx.embeddings)
        np.testing.assert_allclose(ctx.grad_embedding, numeric, atol=1e-7)

    def test_class_align_gradient_with_stop_grad_references(self, rng):
        """ClassAlign treats the in-batch class means as constants, so the
        analytic gradient is 2*w*(e - ref)/n with the references frozen —
        NOT the naive numeric gradient (which would move the mean too)."""
        ctx = make_context(rng)
        weight = 0.4
        ClassAlignTerm().apply(ctx, weight)
        references = np.empty_like(ctx.embeddings)
        for label in np.unique(ctx.labels):
            mask = ctx.labels == label
            references[mask] = ctx.embeddings[mask].mean(axis=0)
        expected = (
            weight * 2.0 * (ctx.embeddings - references)
            / ctx.embeddings.shape[0]
        )
        np.testing.assert_array_equal(ctx.grad_embedding, expected)

    def test_feature_align_gradient(self, rng):
        targets = {c: rng.normal(size=6) for c in range(4)}
        ctx = make_context(rng, extras={"align_targets": targets})
        term = FeatureAlignTerm()
        term.apply(ctx, 0.6)

        def loss():
            fresh = StepContext(
                labels=ctx.labels,
                embeddings=ctx.embeddings,
                logits=ctx.logits,
                batch=ctx.batch,
                grad_embedding=np.zeros_like(ctx.embeddings),
                extras={"align_targets": targets},
            )
            return FeatureAlignTerm().apply(fresh, 0.6)

        numeric = numeric_gradient(loss, ctx.embeddings)
        np.testing.assert_allclose(ctx.grad_embedding, numeric, atol=1e-7)

    def test_feature_align_no_targets_is_inert(self, rng):
        ctx = make_context(rng, extras={"align_targets": {}})
        assert FeatureAlignTerm().apply(ctx, 1.0) == 0.0
        assert np.all(ctx.grad_embedding == 0.0)

    def test_feature_align_partial_targets(self, rng):
        """Classes without a target contribute zero loss and gradient."""
        targets = {0: np.zeros(6)}
        ctx = make_context(rng, extras={"align_targets": targets})
        FeatureAlignTerm().apply(ctx, 1.0)
        other = ctx.labels != 0
        assert np.all(ctx.grad_embedding[other] == 0.0)

    def test_proto_nce_gradient(self, rng):
        prototypes = {c: rng.normal(size=6) for c in range(4)}
        ctx = make_context(rng, extras={"prototypes": prototypes})
        term = ProtoNCETerm(temperature=0.5)
        term.apply(ctx, 0.8)

        def loss():
            value, _ = prototype_nce(
                ctx.embeddings, ctx.labels, prototypes, 0.5
            )
            return 0.8 * value

        numeric = numeric_gradient(loss, ctx.embeddings)
        np.testing.assert_allclose(
            ctx.grad_embedding, numeric, rtol=1e-4, atol=1e-7
        )

    def test_consistency_gradient(self, rng):
        ctx = make_context(rng, views=2)
        ConsistencyTerm().apply(ctx, 0.9)

        def loss():
            diff = ctx.embeddings[: ctx.batch] - ctx.embeddings[ctx.batch :]
            return 0.9 * float(np.mean(diff**2))

        numeric = numeric_gradient(loss, ctx.embeddings)
        np.testing.assert_allclose(ctx.grad_embedding, numeric, atol=1e-7)

    def test_triplet_and_pair_terms_gradcheck(self, rng):
        for name, params in [
            ("triplet_style", {"margin": 0.5, "hinge": False}),
            ("pair_l2", {}),
        ]:
            ctx = make_context(rng, views=2)
            term = make_term(name, **params)
            term.apply(ctx, 0.35)

            def loss():
                fresh = StepContext(
                    labels=ctx.labels,
                    embeddings=ctx.embeddings,
                    logits=ctx.logits,
                    batch=ctx.batch,
                    views=2,
                    grad_embedding=np.zeros_like(ctx.embeddings),
                )
                return make_term(name, **params).apply(fresh, 0.35)

            numeric = numeric_gradient(loss, ctx.embeddings)
            np.testing.assert_allclose(
                ctx.grad_embedding, numeric, rtol=1e-4, atol=1e-6,
                err_msg=f"gradient mismatch for term {name}",
            )


class TestEnsemblePath:
    """apply_ensemble (vectorized or per-slice fallback) must reproduce the
    scalar apply on every slice bitwise — the backend-invariance contract."""

    @pytest.mark.parametrize("name", BUILTIN_TERMS)
    def test_slices_match_scalar(self, name, rng):
        stack, batch, views, dim, classes = 3, 5, 2, 6, 4
        rows = batch * views
        embeddings = rng.normal(size=(stack, rows, dim))
        logits = rng.normal(size=(stack, rows, classes))
        labels = rng.integers(0, classes, size=(stack, batch))
        extras = [
            {
                "prototypes": {c: rng.normal(size=dim) for c in range(classes)},
                "align_targets": {
                    c: rng.normal(size=dim) for c in range(classes)
                },
            }
            for _ in range(stack)
        ]
        term = make_term(name)
        ectx = EnsembleStepContext(
            labels=labels,
            embeddings=embeddings.copy(),
            logits=logits.copy(),
            batch=batch,
            views=views,
            grad_logits=np.zeros((stack, rows, classes)),
            grad_embedding=np.zeros((stack, rows, dim)),
            extras=extras,
        )
        losses = term.apply_ensemble(ectx, 0.7)
        assert losses.shape == (stack,)
        for k in range(stack):
            sctx = StepContext(
                labels=labels[k],
                embeddings=embeddings[k].copy(),
                logits=logits[k].copy(),
                batch=batch,
                views=views,
                grad_logits=np.zeros((rows, classes)),
                grad_embedding=np.zeros((rows, dim)),
                extras=extras[k],
            )
            scalar_loss = term.apply(sctx, 0.7)
            np.testing.assert_array_equal(
                ectx.grad_logits[k], sctx.grad_logits,
                err_msg=f"{name}: slice {k} grad_logits diverges",
            )
            np.testing.assert_array_equal(
                ectx.grad_embedding[k], sctx.grad_embedding,
                err_msg=f"{name}: slice {k} grad_embedding diverges",
            )
            assert losses[k] == scalar_loss, f"{name}: slice {k} loss diverges"
