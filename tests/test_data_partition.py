"""Tests for the domain-heterogeneity partitioner and LODO/LTDO splits,
including hypothesis properties over (lambda, N) settings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Batcher,
    lodo_splits,
    ltdo_splits,
    partition_clients,
    synthetic_pacs,
)

SUITE = synthetic_pacs(seed=0, samples_per_class=6, image_size=8)


class TestPartitionBasics:
    def test_conserves_every_sample(self, rng):
        partition = partition_clients(SUITE, [0, 1, 2], 10, 0.3, rng)
        total = sum(partition.client_sizes())
        expected = sum(len(SUITE.datasets[d]) for d in [0, 1, 2])
        assert total == expected

    def test_lambda_zero_is_domain_separated(self, rng):
        partition = partition_clients(SUITE, [0, 1], 6, 0.0, rng)
        for dataset, home in zip(partition.client_datasets, partition.home_domains):
            if len(dataset):
                domains = np.unique(dataset.domain_ids)
                assert len(domains) == 1
                assert domains[0] == [0, 1][home]

    def test_lambda_one_mixes_domains(self, rng):
        partition = partition_clients(SUITE, [0, 1, 2], 4, 1.0, rng)
        multi_domain = sum(
            len(np.unique(d.domain_ids)) > 1 for d in partition.client_datasets
        )
        assert multi_domain >= 3

    def test_home_domains_cover_all_train_domains(self, rng):
        partition = partition_clients(SUITE, [0, 1, 2], 9, 0.0, rng)
        assert set(partition.home_domains) == {0, 1, 2}

    def test_mixture_weights_rows_sum_to_one(self, rng):
        partition = partition_clients(SUITE, [0, 1, 2, 3], 7, 0.4, rng)
        np.testing.assert_allclose(partition.mixture_weights.sum(axis=1), 1.0)

    def test_heterogeneity_monotone_in_lambda(self):
        """Higher lambda -> more domain mixing per client on average."""
        def mean_domains_per_client(lam):
            rng = np.random.default_rng(0)
            partition = partition_clients(SUITE, [0, 1, 2], 12, lam, rng)
            return np.mean([
                len(np.unique(d.domain_ids))
                for d in partition.client_datasets if len(d)
            ])

        assert mean_domains_per_client(0.0) <= mean_domains_per_client(0.5)
        assert mean_domains_per_client(0.0) < mean_domains_per_client(1.0)

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ValueError):
            partition_clients(SUITE, [0], 5, -0.1, rng)
        with pytest.raises(ValueError):
            partition_clients(SUITE, [0], 0, 0.5, rng)
        with pytest.raises(ValueError):
            partition_clients(SUITE, [], 5, 0.5, rng)

    def test_reproducible_under_seed(self):
        a = partition_clients(SUITE, [0, 1], 5, 0.3, np.random.default_rng(9))
        b = partition_clients(SUITE, [0, 1], 5, 0.3, np.random.default_rng(9))
        for da, db in zip(a.client_datasets, b.client_datasets):
            np.testing.assert_array_equal(da.images, db.images)


class TestPartitionProperties:
    @given(
        lam=st.floats(min_value=0.0, max_value=1.0),
        n_clients=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_property(self, lam, n_clients, seed):
        """No samples created or destroyed, for any (lambda, N, seed)."""
        rng = np.random.default_rng(seed)
        partition = partition_clients(SUITE, [0, 1, 2], n_clients, lam, rng)
        assert sum(partition.client_sizes()) == sum(
            len(SUITE.datasets[d]) for d in [0, 1, 2]
        )

    @given(
        lam=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_label_sets_preserved(self, lam, seed):
        """The union of client label multisets equals the training pool's."""
        rng = np.random.default_rng(seed)
        partition = partition_clients(SUITE, [0, 1], 8, lam, rng)
        combined = np.sort(
            np.concatenate([d.labels for d in partition.client_datasets if len(d)])
        )
        expected = np.sort(
            np.concatenate([SUITE.datasets[d].labels for d in [0, 1]])
        )
        np.testing.assert_array_equal(combined, expected)


class TestSplits:
    def test_lodo_structure(self):
        splits = lodo_splits(4)
        assert len(splits) == 4
        for i, split in enumerate(splits):
            assert split["val"] == [i] and split["test"] == [i]
            assert sorted(split["train"] + split["val"]) == list(range(4))

    def test_ltdo_each_domain_once_per_role(self):
        splits = ltdo_splits(4)
        assert len(splits) == 4
        vals = [s["val"][0] for s in splits]
        tests = [s["test"][0] for s in splits]
        assert sorted(vals) == list(range(4))
        assert sorted(tests) == list(range(4))
        for split in splits:
            assert len(split["train"]) == 2
            assert split["val"][0] not in split["train"]
            assert split["test"][0] not in split["train"]
            assert split["val"][0] != split["test"][0]

    def test_minimum_domain_counts(self):
        with pytest.raises(ValueError):
            lodo_splits(1)
        with pytest.raises(ValueError):
            ltdo_splits(2)


class TestBatcher:
    def test_batches_cover_epoch(self, rng):
        ds = SUITE.datasets[0]
        batcher = Batcher(ds, batch_size=8, rng=rng)
        seen = sum(len(labels) for _, labels in batcher.epoch())
        assert seen == len(ds)

    def test_drop_last(self, rng):
        ds = SUITE.datasets[0].subset(np.arange(10))
        batcher = Batcher(ds, batch_size=4, rng=rng, drop_last=True)
        sizes = [len(labels) for _, labels in batcher.epoch()]
        assert sizes == [4, 4]
        assert len(batcher) == 2

    def test_reshuffles_between_epochs(self, rng):
        ds = SUITE.datasets[0]
        batcher = Batcher(ds, batch_size=len(ds), rng=rng)
        first = next(iter(batcher.epoch()))[1]
        second = next(iter(batcher.epoch()))[1]
        assert not np.array_equal(first, second)

    def test_empty_dataset_yields_nothing(self, rng):
        empty = SUITE.datasets[0].subset(np.array([], dtype=int))
        assert list(Batcher(empty, 4, rng).epoch()) == []

    def test_rejects_bad_batch_size(self, rng):
        with pytest.raises(ValueError):
            Batcher(SUITE.datasets[0], 0, rng)
