"""Tests for the privacy substrate: metrics, the inversion generator, and
the headline sample-vs-client reconstruction gap (paper Table IV)."""

import numpy as np
import pytest

from repro.data import synthetic_pacs
from repro.nn import build_mlp_model, CrossEntropyLoss, SGD
from repro.privacy import (
    client_style_vectors,
    fid_score,
    frechet_distance,
    inception_score_like,
    psnr,
    run_reconstruction_attack,
    sample_style_vectors,
    train_inverter,
)
from repro.style import FrozenConvEncoder, InvertibleEncoder

SUITE = synthetic_pacs(seed=0, samples_per_class=12, image_size=8)
ENCODER = InvertibleEncoder(levels=1, seed=7)


def train_judge(rng):
    """A small classifier on the suite, used by the IS-like metric."""
    train = SUITE.merged([0, 1, 2, 3])
    model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
    criterion = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    n = len(train)
    shuffle = np.random.default_rng(0)
    for _ in range(5):
        order = shuffle.permutation(n)
        for start in range(0, n, 32):
            idx = order[start : start + 32]
            model.zero_grad()
            logits = model.forward(train.images[idx])
            criterion.forward(logits, train.labels[idx])
            model.backward(grad_logits=criterion.backward())
            optimizer.step()
    return model


class TestFrechetDistance:
    def test_identical_sets_near_zero(self, rng):
        features = rng.normal(size=(50, 6))
        assert frechet_distance(features, features) < 1e-6

    def test_mean_shift_increases_distance(self, rng):
        a = rng.normal(size=(100, 6))
        b_near = a + 0.1
        b_far = a + 3.0
        assert frechet_distance(a, b_far) > frechet_distance(a, b_near)

    def test_known_isotropic_value(self, rng):
        """For equal covariance and mean gap d, FD == ||d||^2."""
        a = rng.normal(size=(5000, 3))
        shift = np.array([2.0, 0.0, 0.0])
        value = frechet_distance(a, a + shift)
        np.testing.assert_allclose(value, 4.0, rtol=0.1)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            frechet_distance(rng.normal(size=(10, 3)), rng.normal(size=(10, 4)))
        with pytest.raises(ValueError):
            frechet_distance(rng.normal(size=(1, 3)), rng.normal(size=(10, 3)))


class TestInceptionScoreLike:
    def test_confident_diverse_beats_uniform_blobs(self, rng):
        judge = train_judge(rng)
        real = SUITE.datasets[0].images
        blobs = np.ones_like(real[:20]) * real.mean()
        diverse = inception_score_like(real, judge)
        collapsed = inception_score_like(blobs, judge)
        assert diverse > collapsed

    def test_lower_bound_is_one(self, rng):
        judge = train_judge(rng)
        identical = np.repeat(SUITE.datasets[0].images[:1], 10, axis=0)
        score = inception_score_like(identical, judge)
        np.testing.assert_allclose(score, 1.0, atol=1e-6)

    def test_empty_rejected(self, rng):
        judge = train_judge(rng)
        with pytest.raises(ValueError):
            inception_score_like(np.zeros((0, 3, 8, 8)), judge)


class TestPSNR:
    def test_perfect_reconstruction_infinite(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        assert psnr(x, x.copy()) == float("inf")

    def test_more_noise_lower_psnr(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        small = psnr(x, x + 0.01 * rng.normal(size=x.shape))
        large = psnr(x, x + 1.0 * rng.normal(size=x.shape))
        assert small > large

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            psnr(np.zeros((1, 3, 4, 4)), np.zeros((2, 3, 4, 4)))


class TestInverterTraining:
    def test_learns_to_reconstruct_in_distribution(self, rng):
        images = SUITE.datasets[0].images
        result = train_inverter(images, ENCODER, rng, epochs=30)
        assert result.losses[-1] < result.losses[0]
        styles = sample_style_vectors(images[:8], ENCODER)
        recon = result.generator.generate(styles)
        assert recon.shape == images[:8].shape
        # Styles carry colour structure: reconstruction beats predicting zero.
        baseline = np.mean(images[:8] ** 2)
        assert np.mean((recon - images[:8]) ** 2) < baseline

    def test_requires_minimum_data(self, rng):
        with pytest.raises(ValueError):
            train_inverter(SUITE.datasets[0].images[:2], ENCODER, rng)


class TestClientStyleVectors:
    def test_one_vector_per_nonempty_client(self, rng):
        datasets = [SUITE.datasets[0].images[:10], SUITE.datasets[1].images[:10],
                    np.zeros((0, 3, 8, 8))]
        vectors = client_style_vectors(datasets, ENCODER)
        assert vectors.shape == (2, 2 * ENCODER.out_channels)

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            client_style_vectors([np.zeros((0, 3, 8, 8))], ENCODER)


class TestReconstructionGap:
    def test_client_styles_leak_less_than_sample_styles(self, rng):
        """The paper's Table IV in one assertion: reconstructions from
        client-level (PARDON) style vectors sit much farther from the real
        data than reconstructions from sample-level (CCST) style vectors."""
        judge = train_judge(rng)
        victim = SUITE.merged([0, 1])
        # Victim data split across 6 clients.
        chunks = np.array_split(np.arange(len(victim)), 6)
        client_data = [victim.images[c] for c in chunks]
        surrogate = synthetic_pacs(seed=99, samples_per_class=12, image_size=8)
        attacker_images = surrogate.merged([0, 1]).images

        fid_encoder = FrozenConvEncoder(seed=11)
        reports = {}
        for mode in ("sample", "client"):
            reports[mode] = run_reconstruction_attack(
                attacker_images=attacker_images,
                victim_images=victim.images,
                victim_client_datasets=client_data,
                mode=mode,
                encoder=ENCODER,
                judge=judge,
                rng=np.random.default_rng(5),
                epochs=25,
                fid_encoder=fid_encoder,
            )
        assert reports["client"].fid > reports["sample"].fid
        assert reports["client"].num_reconstructions == 6
        assert reports["sample"].num_reconstructions == len(victim)

    def test_mode_validation(self, rng):
        with pytest.raises(ValueError):
            run_reconstruction_attack(
                attacker_images=SUITE.datasets[0].images,
                victim_images=SUITE.datasets[1].images,
                victim_client_datasets=[SUITE.datasets[1].images],
                mode="bogus",
                encoder=ENCODER,
                judge=None,
                rng=rng,
            )
