"""Tests for the synthetic content/style generative model."""

import numpy as np
import pytest

from repro.data.content import ContentBank, smooth_noise
from repro.data.styles import DomainStyle, render_images


class TestSmoothNoise:
    def test_bounded(self, rng):
        field = smooth_noise(16, 16, rng)
        assert np.max(np.abs(field)) <= 1.0 + 1e-12

    def test_shape(self, rng):
        assert smooth_noise(8, 12, rng).shape == (8, 12)

    def test_deterministic_under_seed(self):
        a = smooth_noise(8, 8, np.random.default_rng(3))
        b = smooth_noise(8, 8, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestContentBank:
    def test_prototypes_are_distinct(self, rng):
        bank = ContentBank(7, 16, rng)
        protos = bank.prototypes.reshape(7, -1)
        for i in range(7):
            for j in range(i + 1, 7):
                correlation = np.corrcoef(protos[i], protos[j])[0, 1]
                assert correlation < 0.98, f"classes {i},{j} nearly identical"

    def test_sample_shapes(self, rng):
        bank = ContentBank(3, 16, rng)
        samples = bank.sample(1, 5, rng)
        assert samples.shape == (5, 16, 16)

    def test_samples_correlate_with_prototype(self, rng):
        bank = ContentBank(5, 16, rng, jitter=0.1)
        samples = bank.sample(2, 8, rng)
        proto = bank.prototypes[2].reshape(-1)
        # Circular shifts reduce but cannot destroy correlation at jitter 0.1.
        correlations = [
            np.corrcoef(s.reshape(-1), proto)[0, 1] for s in samples
        ]
        assert np.mean(correlations) > 0.3

    def test_same_seed_same_bank(self):
        a = ContentBank(4, 8, np.random.default_rng(1))
        b = ContentBank(4, 8, np.random.default_rng(1))
        np.testing.assert_array_equal(a.prototypes, b.prototypes)

    def test_rejects_bad_arguments(self, rng):
        with pytest.raises(ValueError):
            ContentBank(1, 16, rng)
        with pytest.raises(ValueError):
            ContentBank(4, 2, rng)
        bank = ContentBank(3, 8, rng)
        with pytest.raises(ValueError):
            bank.sample(5, 1, rng)
        with pytest.raises(ValueError):
            bank.sample(0, -1, rng)


class TestDomainStyle:
    def test_random_styles_differ(self):
        rng = np.random.default_rng(0)
        a = DomainStyle.random("a", rng)
        b = DomainStyle.random("b", rng)
        assert a.channel_gain != b.channel_gain

    def test_validation(self):
        with pytest.raises(ValueError):
            DomainStyle("x", (1.0, 1.0), (1.0,) * 3, (0.0,) * 3)
        with pytest.raises(ValueError):
            DomainStyle("x", (1.0,) * 3, (1.0,) * 3, (0.0,) * 3, contrast=0.0)
        with pytest.raises(ValueError):
            DomainStyle("x", (1.0,) * 3, (1.0,) * 3, (0.0,) * 3, noise_std=-1.0)

    def test_texture_field_zero_when_amp_zero(self):
        style = DomainStyle("x", (1.0,) * 3, (1.0,) * 3, (0.0,) * 3, texture_amp=0.0)
        assert np.all(style.texture_field(8, 8) == 0)

    def test_texture_field_amplitude(self):
        style = DomainStyle(
            "x", (1.0,) * 3, (1.0,) * 3, (0.0,) * 3,
            texture_amp=0.5, texture_freq=2.0,
        )
        field = style.texture_field(16, 16)
        assert np.max(np.abs(field)) <= 0.5 + 1e-12
        assert np.max(np.abs(field)) > 0.1


class TestRenderImages:
    def test_output_shape(self, rng):
        style = DomainStyle("x", (1.0,) * 3, (1.0,) * 3, (0.0,) * 3)
        content = rng.normal(size=(4, 8, 8))
        images = render_images(content, style, rng)
        assert images.shape == (4, 3, 8, 8)

    def test_gain_bias_shift_channel_statistics(self, rng):
        """The whole premise of the benchmark: different styles yield
        measurably different per-channel statistics for identical content."""
        content = rng.normal(size=(32, 8, 8))
        neutral = DomainStyle("n", (1.0,) * 3, (1.0, 1.0, 1.0), (0.0,) * 3,
                              noise_std=0.0)
        shifted = DomainStyle("s", (1.0,) * 3, (2.0, 0.5, 1.0), (0.5, -0.5, 0.0),
                              noise_std=0.0)
        img_n = render_images(content, neutral, rng)
        img_s = render_images(content, shifted, rng)
        mean_gap = np.abs(img_n.mean(axis=(0, 2, 3)) - img_s.mean(axis=(0, 2, 3)))
        assert mean_gap[0] > 0.3  # bias difference dominates
        std_ratio = img_s.std(axis=(0, 2, 3)) / img_n.std(axis=(0, 2, 3))
        assert std_ratio[0] > 1.5 and std_ratio[1] < 0.7

    def test_content_survives_styling(self, rng):
        """Within one domain, same-class images stay more correlated than
        different-class images — the signal DG methods must extract."""
        bank = ContentBank(4, 16, rng, jitter=0.1)
        style = DomainStyle("x", (1.0, 0.8, 0.6), (1.2, 0.9, 1.1), (0.1, 0.0, -0.1),
                            noise_std=0.02)
        imgs_a = render_images(bank.sample(0, 6, rng), style, rng)
        imgs_b = render_images(bank.sample(1, 6, rng), style, rng)
        same = np.corrcoef(imgs_a[0].ravel(), imgs_a[1].ravel())[0, 1]
        cross = np.corrcoef(imgs_a[0].ravel(), imgs_b[0].ravel())[0, 1]
        assert same > cross

    def test_rejects_bad_content_shape(self, rng):
        style = DomainStyle("x", (1.0,) * 3, (1.0,) * 3, (0.0,) * 3)
        with pytest.raises(ValueError):
            render_images(rng.normal(size=(4, 3, 8, 8)), style, rng)
