"""Tests for convolution and pooling, including an independent naive oracle."""

import numpy as np
import pytest

from repro import nn
from repro.nn.conv import col2im, im2col
from tests.gradcheck import check_module_gradients


def naive_conv2d(x, weight, bias, stride, padding):
    """Reference convolution via explicit loops (the oracle)."""
    batch, _, height, width = x.shape
    out_channels, _, kernel, _ = weight.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kernel) // stride + 1
    out_w = (x.shape[3] - kernel) // stride + 1
    out = np.zeros((batch, out_channels, out_h, out_w))
    for b in range(batch):
        for oc in range(out_channels):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[
                        b, :, i * stride : i * stride + kernel,
                        j * stride : j * stride + kernel,
                    ]
                    out[b, oc, i, j] = np.sum(patch * weight[oc]) + bias[oc]
    return out


class TestIm2col:
    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), c> == <x, col2im(c)> — the defining adjoint identity."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, _ = im2col(x, kernel=3, stride=2, padding=1)
        c = rng.normal(size=cols.shape)
        lhs = np.sum(cols * c)
        rhs = np.sum(x * col2im(c, x.shape, kernel=3, stride=2, padding=1))
        np.testing.assert_allclose(lhs, rhs)

    def test_rejects_too_small_input(self, rng):
        with pytest.raises(ValueError, match="non-positive"):
            im2col(rng.normal(size=(1, 1, 2, 2)), kernel=5, stride=1, padding=0)


class TestConv2d:
    @pytest.mark.parametrize(
        "stride,padding", [(1, 0), (1, 1), (2, 1)], ids=["s1p0", "s1p1", "s2p1"]
    )
    def test_matches_naive_oracle(self, stride, padding, rng):
        layer = nn.Conv2d(3, 4, kernel_size=3, stride=stride, padding=padding, rng=rng)
        x = rng.normal(size=(2, 3, 8, 8))
        expected = naive_conv2d(x, layer.weight.data, layer.bias.data, stride, padding)
        np.testing.assert_allclose(layer.forward(x), expected, rtol=1e-10)

    def test_gradients(self, rng):
        layer = nn.Conv2d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng)
        check_module_gradients(layer, rng.normal(size=(2, 2, 6, 6)))

    def test_gradients_no_bias(self, rng):
        layer = nn.Conv2d(2, 2, kernel_size=2, stride=1, padding=0, rng=rng, bias=False)
        check_module_gradients(layer, rng.normal(size=(1, 2, 4, 4)))

    def test_rejects_wrong_channels(self, rng):
        layer = nn.Conv2d(3, 4, kernel_size=3, rng=rng)
        with pytest.raises(ValueError, match="expected"):
            layer.forward(rng.normal(size=(1, 2, 8, 8)))


class TestPooling:
    def test_maxpool_selects_max(self):
        layer = nn.MaxPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradients(self, rng):
        # Distinct values avoid FD ambiguity at ties.
        x = rng.permutation(64).astype(np.float64).reshape(1, 4, 4, 4)
        check_module_gradients(nn.MaxPool2d(2), x)

    def test_avgpool_is_mean(self):
        layer = nn.AvgPool2d(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_gradients(self, rng):
        check_module_gradients(nn.AvgPool2d(2), rng.normal(size=(2, 3, 4, 4)))

    def test_global_avgpool(self, rng):
        layer = nn.GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 5, 5))
        np.testing.assert_allclose(layer.forward(x), x.mean(axis=(2, 3)))

    def test_global_avgpool_gradients(self, rng):
        check_module_gradients(nn.GlobalAvgPool2d(), rng.normal(size=(2, 3, 4, 4)))
