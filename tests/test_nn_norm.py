"""Tests for normalization layers."""

import numpy as np
import pytest

from repro import nn
from tests.gradcheck import check_module_gradients


class TestBatchNorm2d:
    def test_normalizes_batch_statistics(self, rng):
        layer = nn.BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=3.0, size=(16, 3, 4, 4))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_update(self, rng):
        layer = nn.BatchNorm2d(2, momentum=0.5)
        x = rng.normal(loc=2.0, size=(8, 2, 3, 3))
        layer.forward(x)
        expected_mean = 0.5 * x.mean(axis=(0, 2, 3))
        np.testing.assert_allclose(layer._buffers["running_mean"], expected_mean)

    def test_eval_uses_running_stats(self, rng):
        layer = nn.BatchNorm2d(2)
        for _ in range(20):
            layer.forward(rng.normal(loc=1.0, size=(32, 2, 4, 4)))
        layer.eval()
        x = rng.normal(loc=1.0, size=(4, 2, 4, 4))
        out1 = layer.forward(x)
        out2 = layer.forward(x)
        np.testing.assert_array_equal(out1, out2)

    def test_training_gradients(self, rng):
        layer = nn.BatchNorm2d(2)
        check_module_gradients(layer, rng.normal(size=(4, 2, 3, 3)), rtol=1e-3)

    def test_buffers_travel_with_state_dict(self, rng):
        layer = nn.BatchNorm2d(2)
        layer.forward(rng.normal(size=(8, 2, 3, 3)))
        state = layer.state_dict()
        assert "running_mean" in state and "running_var" in state
        fresh = nn.BatchNorm2d(2)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(
            fresh._buffers["running_mean"], layer._buffers["running_mean"]
        )

    def test_rejects_wrong_channels(self, rng):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3).forward(rng.normal(size=(2, 4, 3, 3)))


class TestInstanceNorm2d:
    def test_whitens_each_sample_channel(self, rng):
        layer = nn.InstanceNorm2d(3, affine=False)
        x = rng.normal(loc=4.0, scale=2.0, size=(5, 3, 6, 6))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=(2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(2, 3)), 1.0, atol=1e-3)

    def test_gradients_affine(self, rng):
        layer = nn.InstanceNorm2d(2)
        check_module_gradients(layer, rng.normal(size=(3, 2, 4, 4)), rtol=1e-3)

    def test_gradients_no_affine(self, rng):
        layer = nn.InstanceNorm2d(2, affine=False)
        check_module_gradients(layer, rng.normal(size=(2, 2, 4, 4)), rtol=1e-3)

    def test_removes_channel_style_shift(self, rng):
        """InstanceNorm cancels a per-channel affine restyle — the property
        AdaIN style transfer is built on."""
        layer = nn.InstanceNorm2d(3, affine=False)
        x = rng.normal(size=(4, 3, 8, 8))
        styled = 3.0 * x + 7.0
        # Tolerance reflects the eps asymmetry: sqrt(9*var+eps)/3 != sqrt(var+eps).
        np.testing.assert_allclose(
            layer.forward(x), layer.forward(styled), atol=1e-4
        )


class TestLayerNorm:
    def test_normalizes_rows(self, rng):
        layer = nn.LayerNorm(16)
        x = rng.normal(loc=3.0, scale=2.0, size=(6, 16))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-10)

    def test_gradients(self, rng):
        check_module_gradients(nn.LayerNorm(8), rng.normal(size=(4, 8)), rtol=1e-3)
