"""Population-scaling layer: streaming aggregation, lazy populations,
resident-client LRU bounds, and the two-tier edge topology.

The acceptance bar: streaming folds in *any* arrival order are
bit-identical to the batch weighted mean (the compensated accumulator's
order invariance), an ``edge:G`` topology traces bit-identically to flat
FedAvg on every engine, a bounded resident set changes no trace (evicted
clients fall back to full re-registration), and server peak memory under
a lazy population scales with participants — not with the population.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FedAvgStrategy
from repro.fl import (
    Client,
    ClientUpdate,
    FederatedConfig,
    FederatedServer,
    LazyPopulation,
    ListPopulation,
    LocalTrainingConfig,
    ParallelExecutor,
    SerialExecutor,
    UniformClientSampler,
    as_population,
    make_aggregator,
    make_compute,
    make_executor,
    parse_topology,
    shm_supported,
)
from repro.fl.aggregate import EdgeAggregator
from repro.data import partition_clients, synthetic_pacs
from repro.data.synthetic import LabeledDataset
from repro.nn import build_mlp_model, ensemble_of, load_state_broadcast
from repro.nn.serialize import MeanAccumulator, average_states

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
FAST = LocalTrainingConfig(batch_size=8)

needs_shm = pytest.mark.skipif(
    not shm_supported(), reason="platform has no POSIX shared memory"
)


def make_clients(n_clients=8, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, 0.2, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def _model(rng_seed=0, hidden_dim=64):
    return build_mlp_model(
        SUITE.image_shape,
        SUITE.num_classes,
        rng=np.random.default_rng(rng_seed),
        hidden_dim=hidden_dim,
    )


def _run(clients, executor, rounds=3, *, topology="flat", codec="identity",
         clients_per_round=4, transport="auto"):
    server = FederatedServer(
        strategy=FedAvgStrategy(FAST),
        clients=clients,
        model=_model(),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=clients_per_round, seed=0,
            codec=codec, transport=transport, topology=topology,
        ),
        executor=executor,
    )
    try:
        return server.run()
    finally:
        executor.close()


def _trace(result):
    return (
        [
            (r.round_index, r.mean_local_loss, tuple(r.participants),
             tuple(sorted(r.eval_accuracy.items())))
            for r in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


def _assert_same_run(a, b):
    assert _trace(a) == _trace(b)
    assert sorted(a.final_state) == sorted(b.final_state)
    for key in a.final_state:
        np.testing.assert_array_equal(a.final_state[key], b.final_state[key])


def _states_and_weights(seed, count):
    rng = np.random.default_rng(seed)
    states = [
        {
            "w": rng.normal(size=(3, 2)),
            "b": rng.normal(size=(4,)),
        }
        for _ in range(count)
    ]
    weights = [float(w) for w in rng.uniform(0.1, 10.0, size=count)]
    return states, weights


class TestStreamingFoldOrder:
    """Any fold order — streaming arrival, hierarchical grouping — must be
    bit-identical to the batch reduction."""

    @settings(deadline=None, max_examples=60)
    @given(
        seed=st.integers(0, 2**32 - 1),
        count=st.integers(1, 8),
        shuffle_seed=st.integers(0, 2**32 - 1),
    )
    def test_any_arrival_order_matches_batch(self, seed, count, shuffle_seed):
        states, weights = _states_and_weights(seed, count)
        batch = average_states(states, weights)
        order = np.random.default_rng(shuffle_seed).permutation(count)
        acc = MeanAccumulator()
        for index in order:
            acc.fold(states[int(index)], weights[int(index)])
        streamed = acc.finalize()
        for key in batch:
            np.testing.assert_array_equal(streamed[key], batch[key])

    @settings(deadline=None, max_examples=30)
    @given(
        seed=st.integers(0, 2**32 - 1),
        count=st.integers(1, 8),
        groups=st.integers(1, 4),
    )
    def test_any_grouping_matches_batch(self, seed, count, groups):
        """Partial per-group accumulators merged at a root — the edge
        topology's reduction shape — agree with the flat fold."""
        states, weights = _states_and_weights(seed, count)
        batch = average_states(states, weights)
        partials = [MeanAccumulator() for _ in range(groups)]
        for position, (state, weight) in enumerate(zip(states, weights)):
            partials[position % groups].fold(state, weight)
        root = MeanAccumulator()
        for partial in partials:
            root.merge(partial)
        merged = root.finalize()
        for key in batch:
            np.testing.assert_array_equal(merged[key], batch[key])

    def test_mean_stream_matches_batch_aggregate(self, rng):
        states, weights = _states_and_weights(7, 5)
        aggregator = make_aggregator("mean")
        batch = aggregator.aggregate(states, weights)
        stream = aggregator.begin_stream()
        for position, (state, weight) in enumerate(zip(states, weights)):
            stream.fold(state, weight, position)
        assert stream.count == 5
        streamed = stream.finalize()
        for key in batch:
            np.testing.assert_array_equal(streamed[key], batch[key])

    def test_clip_stream_matches_batch_aggregate(self):
        states, weights = _states_and_weights(11, 4)
        ref = {key: np.zeros_like(value) for key, value in states[0].items()}
        aggregator = make_aggregator("clip(1.5)+mean")
        batch = aggregator.aggregate(states, weights, ref=ref)
        clipped_in_batch = aggregator.last_clipped
        stream = aggregator.begin_stream(ref)
        for position, (state, weight) in enumerate(zip(states, weights)):
            stream.fold(state, weight, position)
        streamed = stream.finalize()
        assert aggregator.last_clipped == clipped_in_batch
        for key in batch:
            np.testing.assert_array_equal(streamed[key], batch[key])

    def test_order_statistics_are_not_streaming(self):
        aggregator = make_aggregator("median")
        assert not aggregator.streaming
        with pytest.raises(NotImplementedError, match="not streaming"):
            aggregator.begin_stream()


class TestZeroWeightStreamFallback:
    """Regression: an all-zero-weight round (every sampled client empty)
    must stream to the same uniform-mean fallback the batch path takes
    (``Strategy.aggregate``'s ``sum(weights) <= 0`` branch), bit for bit.
    Before the fix the stream's finalize raised ``weights must not sum to
    zero`` where the batch path silently recovered."""

    @pytest.mark.parametrize(
        "spec", ["mean", "clip(1.5)+mean", "edge(3)+mean"]
    )
    def test_zero_weight_stream_matches_batch_uniform_fallback(self, spec):
        states, _ = _states_and_weights(23, 5)
        ref = {key: np.zeros_like(value) for key, value in states[0].items()}
        aggregator = make_aggregator(spec)
        batch = aggregator.aggregate(states, [1.0] * len(states), ref=ref)
        stream = aggregator.begin_stream(ref)
        for position, state in enumerate(states):
            stream.fold(state, 0.0, position)
        streamed = stream.finalize()
        for key in batch:
            np.testing.assert_array_equal(
                streamed[key], batch[key],
                err_msg=f"{spec}: zero-weight stream diverged from batch",
            )

    def test_first_positive_weight_drops_the_shadow(self):
        """A zero-weight prefix must not disturb the weighted result once
        any positive weight arrives — and the shadow accumulator is freed
        (constant memory, weights are non-negative sample counts)."""
        states, weights = _states_and_weights(29, 5)
        weights[0] = 0.0
        weights[1] = 0.0
        aggregator = make_aggregator("mean")
        batch = aggregator.aggregate(states, weights)
        stream = aggregator.begin_stream()
        for position, (state, weight) in enumerate(zip(states, weights)):
            stream.fold(state, weight, position)
            if weight > 0:
                assert stream.uniform is None
        streamed = stream.finalize()
        for key in batch:
            np.testing.assert_array_equal(streamed[key], batch[key])

    def test_strategy_batch_and_stream_agree_on_all_empty_round(self):
        """End of the wire: Strategy.aggregate must return the same state
        whether the engine streamed the all-empty round or batched it."""
        strategy = FedAvgStrategy(FAST)
        global_state = _model().state_dict()
        states, _ = _states_and_weights(31, 4)
        empty_dataset = SUITE.datasets[0].subset(np.array([], dtype=int))
        clients = [Client(i, empty_dataset) for i in range(4)]
        batch_updates = [
            ClientUpdate.from_client(client, state, 0.0)
            for client, state in zip(clients, states)
        ]
        merged_batch = strategy.aggregate(global_state, batch_updates, 0)
        stream = strategy.begin_stream(global_state)
        assert stream is not None
        stream_updates = [
            ClientUpdate.from_client(client, state, 0.0)
            for client, state in zip(clients, states)
        ]
        for position, update in enumerate(stream_updates):
            stream.fold(update.state, float(update.num_samples), position)
            update.state = None  # the engine frees folded uploads
        merged_stream = strategy.aggregate(
            global_state, stream_updates, 0, stream=stream
        )
        for key in merged_batch:
            np.testing.assert_array_equal(
                merged_batch[key], merged_stream[key]
            )


class TestEmptyClientGuard:
    """Regression: the zero-sample guard lives in the *base* strategy
    (``local_update`` and ``ensemble_update``), so every strategy and both
    compute backends handle empty clients uniformly — zero loss, unchanged
    state, no randomness consumed."""

    @staticmethod
    def _empty_dataset():
        return SUITE.datasets[0].subset(np.array([], dtype=int))

    def _mixed_clients(self):
        clients = make_clients(4)
        clients.insert(1, Client(97, self._empty_dataset()))
        clients.append(Client(98, self._empty_dataset()))
        return clients

    def test_base_local_update_guards_empty_client(self, rng):
        strategy = FedAvgStrategy(FAST)
        model = _model()
        before = {k: v.copy() for k, v in model.state_dict().items()}
        update = strategy.local_update(
            Client(99, self._empty_dataset()), model, 0, rng
        )
        assert update.loss == 0.0
        assert update.num_samples == 0
        for key in before:
            np.testing.assert_array_equal(update.state[key], before[key])

    def test_base_ensemble_update_guards_empty_group(self):
        strategy = FedAvgStrategy(FAST)
        model = _model()
        wire = model.state_dict()
        clients = [Client(i, self._empty_dataset()) for i in range(3)]
        emodel = ensemble_of(model, 3)
        load_state_broadcast(emodel, wire, 3)
        rngs = [np.random.default_rng(i) for i in range(3)]
        updates = strategy.ensemble_update(clients, emodel, 0, rngs)
        assert updates is not None
        for update in updates:
            assert update.loss == 0.0
            for key in wire:
                np.testing.assert_array_equal(update.state[key], wire[key])

    @pytest.mark.parametrize("compute", ["ensemble", "strict"])
    def test_backends_agree_on_group_with_empty_clients(self, compute):
        """A group mixing empty and non-empty clients produces bitwise the
        loop backend's updates on the batched backends."""
        model = _model()
        wire = model.state_dict()
        seeds = list(range(100, 106))

        def updates_for(backend):
            return make_compute(backend).run_group(
                FedAvgStrategy(FAST), _model(), wire,
                self._mixed_clients(), 0, seeds,
            )

        reference = updates_for("loop")
        batched = updates_for(compute)
        assert [u.client_id for u in batched] == [
            u.client_id for u in reference
        ]
        for ref, got in zip(reference, batched):
            assert got.loss == ref.loss
            assert got.num_samples == ref.num_samples
            for key in ref.state:
                np.testing.assert_array_equal(got.state[key], ref.state[key])


class TestAverageStatesOut:
    """The ``out=`` machinery: buffer reuse and the empty-survivor edge
    case fall back to the caller's state without a fresh allocation."""

    def test_empty_states_with_out_returns_out_untouched(self, rng):
        ref = {"w": rng.normal(size=(3, 3))}
        before = ref["w"].copy()
        result = average_states([], out=ref)
        assert result is ref
        np.testing.assert_array_equal(ref["w"], before)

    def test_empty_states_without_out_raises(self):
        with pytest.raises(ValueError, match="at least one state"):
            average_states([])

    def test_out_buffers_are_reused(self):
        states, weights = _states_and_weights(3, 4)
        expected = average_states(states, weights)
        out = {key: np.empty_like(value) for key, value in states[0].items()}
        buffers = dict(out)
        result = average_states(states, weights, out=out)
        assert result is out
        for key in expected:
            assert result[key] is buffers[key]
            np.testing.assert_array_equal(result[key], expected[key])


class TestEdgeTopology:
    """``edge:G`` must be invisible in the trace: G edge aggregators
    reduce with the streaming mean and the root composes the partial
    (sum, weight) pairs bit-identically to flat FedAvg."""

    def test_parse_topology(self):
        assert parse_topology("flat") is None
        assert parse_topology("edge:4") == 4
        with pytest.raises(ValueError):
            parse_topology("edge:0")
        with pytest.raises(ValueError):
            parse_topology("ring")
        with pytest.raises(TypeError):
            parse_topology(4)

    def test_spec_round_trip(self):
        aggregator = make_aggregator("edge(3)+mean")
        assert isinstance(aggregator, EdgeAggregator)
        assert aggregator.spec == "edge(3)+mean"
        assert aggregator.streaming

    def test_edge_requires_a_streaming_rule(self):
        with pytest.raises(ValueError, match="hierarchically"):
            EdgeAggregator(2, make_aggregator("median"))
        with pytest.raises(ValueError, match="hierarchically"):
            make_aggregator("edge(2)+krum")

    def test_edge_batch_matches_mean(self):
        states, weights = _states_and_weights(5, 6)
        flat = make_aggregator("mean").aggregate(states, weights)
        edged = make_aggregator("edge(3)+mean").aggregate(states, weights)
        for key in flat:
            np.testing.assert_array_equal(edged[key], flat[key])

    def test_config_rejects_non_streaming_topology_rule(self):
        with pytest.raises(ValueError, match="hierarchically"):
            FederatedConfig(
                num_rounds=1, topology="edge:2", aggregator="median"
            )

    @pytest.mark.parametrize(
        "make_engine, codec",
        [
            pytest.param(lambda: SerialExecutor(), "identity", id="serial"),
            pytest.param(
                lambda: ParallelExecutor(num_workers=2, transport="pipe",
                                         codec="identity"),
                "identity", id="pipe",
            ),
            pytest.param(
                lambda: ParallelExecutor(num_workers=2, transport="shm",
                                         codec="delta"),
                "delta", id="shm-delta", marks=needs_shm,
            ),
        ],
    )
    def test_edge_trace_identical_to_flat(self, make_engine, codec):
        flat = _run(make_clients(), make_engine(), codec=codec)
        edged = _run(
            make_clients(), make_engine(), codec=codec, topology="edge:3"
        )
        _assert_same_run(flat, edged)


def _lazy_factory(num_classes=SUITE.num_classes,
                  image_shape=SUITE.image_shape, samples=6):
    def factory(client_id):
        rng = np.random.default_rng(10_000 + client_id)
        dataset = LabeledDataset(
            images=rng.normal(size=(samples,) + tuple(image_shape)),
            labels=rng.integers(0, num_classes, size=samples),
            domain_ids=np.zeros(samples, dtype=np.int64),
        )
        return Client(client_id, dataset)

    return factory


class TestLazyPopulation:
    def test_sample_ids_floyd_properties(self, rng):
        sampler = UniformClientSampler(16)
        ids = sampler.sample_ids(100_000, rng)
        assert len(ids) == 16
        assert len(set(ids)) == 16
        assert ids == sorted(ids)
        assert all(0 <= i < 100_000 for i in ids)

    def test_sample_ids_deterministic(self):
        sampler = UniformClientSampler(0.1)
        first = sampler.sample_ids(5000, np.random.default_rng(3))
        again = sampler.sample_ids(5000, np.random.default_rng(3))
        assert first == again

    def test_sample_ids_rejects_empty(self, rng):
        with pytest.raises(ValueError, match="no client"):
            UniformClientSampler(4).sample_ids(0, rng)

    def test_factory_id_mismatch_raises(self, rng):
        population = LazyPopulation(50, lambda cid: Client(0, _tiny_dataset()))
        with pytest.raises(ValueError, match="factory returned id"):
            population.sample(UniformClientSampler(4), rng)

    def test_factory_empty_client_raises(self, rng):
        def factory(cid):
            dataset = _tiny_dataset()
            return Client(cid, dataset.subset(np.array([], dtype=np.int64)))

        population = LazyPopulation(50, factory)
        with pytest.raises(ValueError, match="empty client"):
            population.sample(UniformClientSampler(4), rng)

    def test_size_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            LazyPopulation(0, _lazy_factory())

    def test_as_population_coercion(self):
        clients = make_clients(4)
        wrapped = as_population(clients)
        assert isinstance(wrapped, ListPopulation)
        lazy = LazyPopulation(10, _lazy_factory())
        assert as_population(lazy) is lazy

    def test_lazy_run_is_deterministic(self):
        first = _run(
            LazyPopulation(200, _lazy_factory()), SerialExecutor(), rounds=2
        )
        again = _run(
            LazyPopulation(200, _lazy_factory()), SerialExecutor(), rounds=2
        )
        _assert_same_run(first, again)

    def test_lazy_run_engine_invariant(self):
        serial = _run(
            LazyPopulation(60, _lazy_factory()), SerialExecutor(), rounds=2
        )
        parallel = _run(
            LazyPopulation(60, _lazy_factory()),
            ParallelExecutor(num_workers=2, transport="pipe"),
            rounds=2,
        )
        _assert_same_run(serial, parallel)


def _tiny_dataset(samples=4):
    rng = np.random.default_rng(0)
    return LabeledDataset(
        images=rng.normal(size=(samples,) + tuple(SUITE.image_shape)),
        labels=rng.integers(0, SUITE.num_classes, size=samples),
        domain_ids=np.zeros(samples, dtype=np.int64),
    )


class TestMaxResidentLRU:
    def test_bounded_residency_changes_no_trace(self):
        """Eviction falls back to full re-registration, so a tiny bound
        must reproduce the unbounded run bit-for-bit (delta codec: the
        reference chains must reset consistently on both endpoints)."""
        unbounded = _run(
            make_clients(12),
            ParallelExecutor(num_workers=2, transport="pipe", codec="delta"),
            rounds=4, codec="delta", clients_per_round=6,
        )
        bounded = _run(
            make_clients(12),
            ParallelExecutor(num_workers=2, transport="pipe", codec="delta",
                             max_resident=6),
            rounds=4, codec="delta", clients_per_round=6,
        )
        _assert_same_run(unbounded, bounded)

    def test_resident_set_is_bounded(self):
        executor = ParallelExecutor(
            num_workers=2, transport="pipe", max_resident=4
        )
        _run(make_clients(12), executor, rounds=3, clients_per_round=6)
        # close() cleared it; inspect the bound instead via a fresh run.
        executor = ParallelExecutor(
            num_workers=2, transport="pipe", max_resident=4
        )
        try:
            server = FederatedServer(
                strategy=FedAvgStrategy(FAST),
                clients=make_clients(12),
                model=_model(),
                eval_sets={"test": SUITE.datasets[2]},
                config=FederatedConfig(
                    num_rounds=3, clients_per_round=6, seed=0
                ),
                executor=executor,
            )
            server.run()
            assert len(executor._resident) <= 4 + 6
            assert len(executor._upload_refs) <= 4 + 6
        finally:
            executor.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="max_resident"):
            ParallelExecutor(num_workers=2, max_resident=0)
        with pytest.raises(ValueError, match="max_resident"):
            make_executor("serial", max_resident=4)
        engine = make_executor("auto", max_resident=8, participants=2)
        try:
            assert isinstance(engine, ParallelExecutor)
            assert engine.max_resident == 8
        finally:
            engine.close()


class TestConfigValidation:
    def test_integer_count_quorum_checked_at_config_time(self):
        with pytest.raises(ValueError, match="quorum 5 exceeds"):
            FederatedConfig(num_rounds=1, clients_per_round=4, quorum=5)

    def test_integer_participation_not_treated_as_fraction(self):
        # A count of 1 must stay a count (1 participant), never become
        # the fraction 1.0 (everyone).
        config = FederatedConfig(num_rounds=1, clients_per_round=1)
        assert UniformClientSampler(config.clients_per_round).round_size(
            100_000
        ) == 1

    def test_fractional_quorum_resolved_at_server_construction(self):
        # 0.5 of 8 clients = 4 participants < quorum 5: config time cannot
        # know the population, server construction can.
        config = FederatedConfig(
            num_rounds=1, clients_per_round=0.5, quorum=5
        )
        with pytest.raises(ValueError, match="quorum"):
            FederatedServer(
                strategy=FedAvgStrategy(FAST),
                clients=make_clients(8),
                model=_model(),
                eval_sets={},
                config=config,
                executor=SerialExecutor(quorum=5),
            )

    def test_topology_spec_validated_at_config_time(self):
        with pytest.raises(ValueError):
            FederatedConfig(num_rounds=1, topology="edge:zero")


class TestMemoryScaling:
    def test_server_peak_is_o_participants_not_o_population(self):
        """The ISSUE's acceptance bound, at smoke scale: a 20x larger lazy
        population at the same participant count must stay within 2x of
        the small run's server peak memory."""
        peaks = []
        for population_size in (120, 2400):
            population = LazyPopulation(population_size, _lazy_factory())
            tracemalloc.start()
            try:
                result = _run(
                    population, SerialExecutor(), rounds=2,
                    clients_per_round=8,
                )
                peaks.append(tracemalloc.get_traced_memory()[1])
            finally:
                tracemalloc.stop()
            assert result.timing.peak_memory_bytes > 0  # sampled per round
        small, large = peaks
        assert large < 2.0 * small, (
            f"peak memory grew with the population: {small} -> {large}"
        )

    def test_client_nbytes_counts_dataset_and_scratch(self):
        client = _lazy_factory()(3)
        base = client.nbytes()
        assert base >= client.dataset.images.nbytes
        client.scratch["cache"] = np.zeros((16, 16))
        assert client.nbytes() == base + client.scratch["cache"].nbytes
