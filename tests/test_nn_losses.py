"""Tests for loss functions, including finite-difference checks of the
triplet loss — the heart of PARDON's contrastive mechanism."""

import numpy as np
import pytest

from repro import nn
from repro.nn.functional import log_softmax
from tests.gradcheck import numeric_gradient


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 2, 1, 2])
        loss = nn.CrossEntropyLoss().forward(logits, labels)
        manual = -log_softmax(logits)[np.arange(4), labels].mean()
        np.testing.assert_allclose(loss, manual)

    def test_gradient_matches_fd(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        criterion = nn.CrossEntropyLoss()
        criterion.forward(logits, labels)
        analytic = criterion.backward()
        numeric = numeric_gradient(
            lambda: nn.CrossEntropyLoss().forward(logits, labels), logits
        )
        np.testing.assert_allclose(analytic, numeric, rtol=1e-5, atol=1e-8)

    def test_perfect_prediction_near_zero_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = nn.CrossEntropyLoss().forward(logits, np.array([0, 1]))
        assert loss < 1e-8

    def test_sum_reduction(self, rng):
        logits = rng.normal(size=(5, 3))
        labels = np.array([0, 1, 2, 0, 1])
        mean_loss = nn.CrossEntropyLoss("mean").forward(logits, labels)
        sum_loss = nn.CrossEntropyLoss("sum").forward(logits, labels)
        np.testing.assert_allclose(sum_loss, 5 * mean_loss)

    def test_rejects_batch_mismatch(self, rng):
        with pytest.raises(ValueError):
            nn.CrossEntropyLoss().forward(rng.normal(size=(3, 2)), np.array([0, 1]))


class TestTripletStyleLoss:
    def test_hinge_zero_when_negatives_far_and_positive_close(self, rng):
        anchors = rng.normal(size=(4, 8))
        anchors[2:] += 100.0  # well-separated classes
        transferred = anchors.copy()  # positives exactly at anchors
        labels = np.array([0, 0, 1, 1])
        loss = nn.TripletStyleLoss(margin=1.0, hinge=True, normalize=False).forward(
            anchors, transferred, labels
        )
        assert loss == 0.0

    def test_no_hinge_rewards_far_negatives(self, rng):
        """Without the hinge (the paper's Eq. 7 as written) the same
        configuration yields a negative loss — pushing negatives farther
        keeps paying off."""
        anchors = rng.normal(size=(4, 8))
        anchors[2:] += 100.0
        transferred = anchors.copy()
        labels = np.array([0, 0, 1, 1])
        loss = nn.TripletStyleLoss(margin=1.0, hinge=False, normalize=False).forward(
            anchors, transferred, labels
        )
        assert loss < 0.0

    def test_positive_when_negative_closer_than_positive(self):
        anchors = np.array([[0.0, 0.0], [10.0, 10.0]])
        transferred = np.array([[5.0, 5.0], [0.1, 0.1]])  # other-class is closer
        labels = np.array([0, 1])
        loss = nn.TripletStyleLoss(margin=0.5, normalize=False).forward(anchors, transferred, labels)
        assert loss > 0.0

    @pytest.mark.parametrize("reduction", ["mean", "sum"])
    @pytest.mark.parametrize("hinge", [False, True])
    @pytest.mark.parametrize("normalize", [False, True])
    def test_gradients_match_fd(self, reduction, hinge, normalize, rng):
        anchors = rng.normal(size=(5, 4))
        transferred = rng.normal(size=(5, 4))
        labels = np.array([0, 1, 0, 2, 1])
        criterion = nn.TripletStyleLoss(
            margin=2.0, reduction=reduction, hinge=hinge, normalize=normalize
        )
        criterion.forward(anchors, transferred, labels)
        grad_a, grad_t = criterion.backward()

        def loss_fn():
            return nn.TripletStyleLoss(
                margin=2.0, reduction=reduction, hinge=hinge, normalize=normalize
            ).forward(anchors, transferred, labels)

        numeric_a = numeric_gradient(loss_fn, anchors)
        numeric_t = numeric_gradient(loss_fn, transferred)
        np.testing.assert_allclose(grad_a, numeric_a, rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(grad_t, numeric_t, rtol=1e-4, atol=1e-7)

    def test_normalized_distances_are_bounded(self, rng):
        """On the unit sphere every pairwise term lies in [0, 4], so the
        hinge-free loss cannot explode regardless of embedding scale."""
        anchors = rng.normal(size=(6, 8)) * 1e6
        transferred = rng.normal(size=(6, 8)) * 1e-6
        labels = np.array([0, 1, 2, 0, 1, 2])
        loss = nn.TripletStyleLoss(margin=0.0, normalize=True).forward(
            anchors, transferred, labels
        )
        assert -4.0 <= loss <= 4.0

    def test_normalized_gradient_is_tangent(self, rng):
        """The chained gradient has no radial component: moving along z
        itself cannot change z/||z||."""
        anchors = rng.normal(size=(4, 6))
        transferred = rng.normal(size=(4, 6))
        labels = np.array([0, 1, 0, 1])
        criterion = nn.TripletStyleLoss(normalize=True)
        criterion.forward(anchors, transferred, labels)
        grad_a, grad_t = criterion.backward()
        radial_a = np.sum(grad_a * anchors, axis=1)
        radial_t = np.sum(grad_t * transferred, axis=1)
        np.testing.assert_allclose(radial_a, 0.0, atol=1e-10)
        np.testing.assert_allclose(radial_t, 0.0, atol=1e-10)

    def test_single_class_batch_has_no_negative_term(self, rng):
        """All-same-class batch: loss reduces to hinge(positive + margin)."""
        anchors = rng.normal(size=(3, 4))
        transferred = rng.normal(size=(3, 4))
        labels = np.zeros(3, dtype=int)
        loss = nn.TripletStyleLoss(margin=0.0, reduction="sum", normalize=False).forward(
            anchors, transferred, labels
        )
        expected = np.sum((anchors - transferred) ** 2)
        np.testing.assert_allclose(loss, expected)

    def test_empty_batch(self):
        criterion = nn.TripletStyleLoss()
        loss = criterion.forward(np.zeros((0, 4)), np.zeros((0, 4)), np.zeros(0))
        assert loss == 0.0
        grad_a, grad_t = criterion.backward()
        assert grad_a.shape == (0, 4) and grad_t.shape == (0, 4)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            nn.TripletStyleLoss(margin=-1.0)

    def test_minimizing_pulls_anchor_to_positive(self, rng):
        """Gradient descent on the loss moves anchors toward their positives
        and away from other-class transferred samples."""
        anchors = np.array([[0.0, 0.0], [4.0, 4.0]])
        transferred = np.array([[2.0, 0.0], [2.0, 4.0]])
        labels = np.array([0, 1])
        criterion = nn.TripletStyleLoss(margin=10.0, normalize=False)
        for _ in range(50):
            criterion.forward(anchors, transferred, labels)
            grad_a, _ = criterion.backward()
            anchors -= 0.05 * grad_a
        dist_pos_0 = np.linalg.norm(anchors[0] - transferred[0])
        dist_neg_0 = np.linalg.norm(anchors[0] - transferred[1])
        assert dist_pos_0 < dist_neg_0


class TestEmbeddingL2:
    def test_value(self, rng):
        a = rng.normal(size=(3, 4))
        t = rng.normal(size=(3, 4))
        loss = nn.EmbeddingL2Loss(reduction="sum").forward(a, t)
        np.testing.assert_allclose(loss, np.sum(a**2) + np.sum(t**2))

    def test_gradients(self, rng):
        a = rng.normal(size=(3, 4))
        t = rng.normal(size=(3, 4))
        criterion = nn.EmbeddingL2Loss()
        criterion.forward(a, t)
        grad_a, grad_t = criterion.backward()
        np.testing.assert_allclose(grad_a, 2 * a / 3)
        np.testing.assert_allclose(grad_t, 2 * t / 3)


class TestMSE:
    def test_value_and_gradient(self, rng):
        pred = rng.normal(size=(4, 5))
        target = rng.normal(size=(4, 5))
        criterion = nn.MSELoss()
        loss = criterion.forward(pred, target)
        np.testing.assert_allclose(loss, np.mean((pred - target) ** 2))
        numeric = numeric_gradient(
            lambda: nn.MSELoss().forward(pred, target), pred
        )
        np.testing.assert_allclose(criterion.backward(), numeric, rtol=1e-5, atol=1e-8)
