"""Tests for cross-machine federation (`repro.fl.net`).

The acceptance bar: the loopback ``tcp`` transport and the
:class:`RemoteExecutor` produce traces *bit-identical* to the in-host
engines (serial, parallel+pipe, parallel+shm) under both lossless
codecs — including the seeded chaos plan and a Byzantine leg; frames
survive worst-case 1-byte fragmentation; the handshake rejects version
and spec mismatches; a mid-upload agent disconnect is a typed fault
(``"disconnect"``) that never wedges round close.
"""

import json
import logging
import os
import socket
import struct
import threading

import numpy as np
import pytest

from repro.baselines import FedAvgStrategy
from repro.data import partition_clients, synthetic_pacs
from repro.fl import (
    Client,
    FaultPlan,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    make_transport,
    resolve_transport,
    shm_supported,
    transport_specs,
)
from repro.fl.faults import DROP_REASONS
from repro.fl.net import (
    FrameDecoder,
    FrameError,
    FrameStream,
    MAX_FRAME_BYTES,
    HandshakeError,
    RemoteExecutor,
    TcpHandle,
    TcpTransport,
    encode_frame,
    recv_frame,
)
from repro.fl.net.agent import run_agent
from repro.fl.net.protocol import (
    HELLO,
    REJECT,
    TASK,
    WELCOME,
    decode_message,
    encode_message,
    evaluate_hello,
    hello_meta,
)
from repro.fl.net.serve import trace_dict
from repro.fl.net.transport import parse_endpoint
from repro.nn import build_mlp_model

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
FAST = LocalTrainingConfig(batch_size=8)

#: Same seeded plan as the fault tests: dropouts + stragglers + corrupted
#: uploads + one crash round, all deterministic functions of the seed.
CHAOS_PLAN = FaultPlan(
    seed=7,
    dropout_rate=0.15,
    straggler_rate=0.25,
    straggler_delay=0.02,
    corrupt_rate=0.1,
    crash_rounds=(1,),
)


def make_clients(n_clients=8, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, 0.2, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def _model(rng_seed=0):
    return build_mlp_model(
        SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(rng_seed)
    )


def run_once(executor, rounds=3, config_kwargs=None):
    server = FederatedServer(
        strategy=FedAvgStrategy(FAST),
        clients=make_clients(),
        model=_model(),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=4, seed=0,
            **(config_kwargs or {}),
        ),
        executor=executor,
    )
    return server.run()


def _trace(result):
    """Per-round trace including the drop map, plus final accuracies —
    what must stay invariant across every transport and engine."""
    return (
        [
            (r.round_index, r.mean_local_loss, tuple(r.participants),
             tuple(sorted(r.dropped.items())),
             tuple(sorted(r.eval_accuracy.items())))
            for r in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


def _assert_same(reference, candidate, label=""):
    assert _trace(candidate) == _trace(reference), (
        f"{label} trace diverged from the reference"
    )
    for key in reference.final_state:
        np.testing.assert_array_equal(
            reference.final_state[key], candidate.final_state[key]
        )


def _drop_reasons(result):
    return {
        reason
        for record in result.history.records
        for reason in record.dropped.values()
    }


def run_remote(remote, rounds=3, config_kwargs=None, agents=2):
    """Drive ``remote`` with in-process thread agents (the agent loop is
    the same code the process entrypoint runs)."""
    threads = [
        threading.Thread(
            target=run_agent, args=(remote.address,),
            kwargs={"name": f"agent-{i}"}, daemon=True,
        )
        for i in range(agents)
    ]
    for thread in threads:
        thread.start()
    try:
        return run_once(remote, rounds=rounds, config_kwargs=config_kwargs)
    finally:
        remote.close()
        for thread in threads:
            thread.join(timeout=10)


# -- frames --------------------------------------------------------------------


class TestFrames:
    def test_one_byte_fragmentation_roundtrip(self):
        """Worst-case kernel delivery: one byte per feed, across several
        back-to-back frames (including an empty payload)."""
        payloads = [b"", b"x", os.urandom(257), b"tail"]
        wire = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(len(wire)):
            out.extend(decoder.feed(wire[i : i + 1]))
        assert out == payloads
        assert decoder.pending_bytes == 0

    def test_batched_feed_yields_all_frames(self):
        decoder = FrameDecoder()
        wire = encode_frame(b"a") + encode_frame(b"bb")
        assert decoder.feed(wire) == [b"a", b"bb"]

    def test_oversized_header_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError, match="cap"):
            decoder.feed(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_recv_frame_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        a.sendall(encode_frame(b"hello")[:3])
        a.close()
        with pytest.raises(FrameError, match="mid-frame"):
            recv_frame(b)
        b.close()

    def test_recv_frame_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        assert recv_frame(b) is None
        b.close()

    def test_recv_frame_rejects_pipelined_peer(self):
        a, b = socket.socketpair()
        a.sendall(encode_frame(b"one") + encode_frame(b"two"))
        with pytest.raises(FrameError, match="pipelined"):
            recv_frame(b)
        a.close()
        b.close()

    def test_frame_stream_tolerates_pipelined_peer(self):
        a, b = socket.socketpair()
        a.sendall(encode_frame(b"one") + encode_frame(b"two"))
        stream = FrameStream(b)
        assert stream.next_frame() == b"one"
        assert stream.buffered  # second frame already decoded
        assert stream.next_frame() == b"two"
        assert not stream.buffered
        a.close()
        assert stream.next_frame() is None
        b.close()


# -- handshake -----------------------------------------------------------------


class TestHandshake:
    def test_message_roundtrip(self):
        message = decode_message(
            encode_message(TASK, {"task": 3}, b"payload")
        )
        assert (message.kind, message.meta, message.blob) == (
            TASK, {"task": 3}, b"payload"
        )

    def test_version_mismatch_rejected(self):
        reason = evaluate_hello(
            {"version": 0}, codec_spec="identity", compute_spec="loop"
        )
        assert reason is not None and "version" in reason

    def test_codec_pin_mismatch_rejected(self):
        meta = hello_meta(codec="fp16")
        reason = evaluate_hello(
            meta, codec_spec="identity", compute_spec="loop"
        )
        assert reason is not None and "codec" in reason

    def test_compute_pin_mismatch_rejected(self):
        meta = hello_meta(compute="loop")
        reason = evaluate_hello(
            meta, codec_spec="identity", compute_spec="ensemble"
        )
        assert reason is not None and "compute" in reason

    def test_matching_pins_accepted(self):
        meta = hello_meta(name="a", codec="delta", compute="loop")
        assert evaluate_hello(
            meta, codec_spec="delta", compute_spec="loop"
        ) is None

    def test_live_rejections_then_good_agent_joins(self):
        """A rejected agent (pin mismatch or wrong protocol version) must
        not poison the federation: the listener keeps accepting and a
        conforming agent completes the run."""
        remote = RemoteExecutor(num_agents=1)
        box = {}

        def serve():
            try:
                box["result"] = run_once(remote, rounds=1)
            except BaseException as exc:  # surfaced by the final assert
                box["error"] = exc

        server = threading.Thread(target=serve, daemon=True)
        server.start()
        with pytest.raises(HandshakeError, match="codec"):
            run_agent(remote.address, codec="fp16")
        with socket.create_connection(remote.address, timeout=10) as sock:
            stream = FrameStream(sock)
            stream.send(encode_message(HELLO, {"version": 99, "name": "old"}))
            message = decode_message(stream.next_frame())
            assert message.kind == REJECT
            assert "version" in message.meta["reason"]
        good = threading.Thread(
            target=run_agent, args=(remote.address,), daemon=True
        )
        good.start()
        server.join(timeout=120)
        remote.close()
        good.join(timeout=10)
        assert "result" in box, box.get("error")


# -- the tcp transport (ParallelExecutor wire) ---------------------------------


class TestTcpTransport:
    def test_parse_endpoint_forms(self):
        assert parse_endpoint(None) == ("127.0.0.1", 0)
        assert parse_endpoint("9999") == ("127.0.0.1", 9999)
        assert parse_endpoint("0.0.0.0:80") == ("0.0.0.0", 80)
        with pytest.raises(ValueError):
            parse_endpoint("host:notaport")
        with pytest.raises(ValueError):
            parse_endpoint("host:70000")

    def test_spec_forms(self):
        assert TcpTransport().spec == "tcp"
        assert TcpTransport("127.0.0.1:0").spec == "tcp:127.0.0.1:0"
        assert isinstance(make_transport("tcp"), TcpTransport)

    def test_publish_fetch_upload_roundtrip(self):
        server_side = TcpTransport()
        worker_side = TcpTransport()
        blob = os.urandom(4096)
        try:
            handle = server_side.publish(blob)
            assert isinstance(handle, TcpHandle)
            assert handle.length == len(blob)
            assert worker_side.fetch(handle) == blob
            upload = worker_side.send_upload(b"u" * 512)
            assert len(upload) < 64  # a marker, not the blob
            assert server_side.recv_upload(upload) == b"u" * 512
        finally:
            worker_side.close()
            server_side.close()

    def test_end_round_kills_zombie_fetch(self):
        """Round end clears the blob store, so a zombie fetching a dead
        round's broadcast fails exactly like attaching an unlinked shm
        segment: a ConnectionError in the zombie's own worker."""
        server_side = TcpTransport()
        worker_side = TcpTransport()
        try:
            handle = server_side.publish(b"x" * 64)
            server_side.end_round()
            with pytest.raises(ConnectionError):
                worker_side.fetch(handle)
        finally:
            worker_side.close()
            server_side.close()

    def test_upload_falls_back_inline_when_server_gone(self):
        server_side = TcpTransport()
        worker_side = TcpTransport()
        try:
            handle = server_side.publish(b"y" * 32)
            worker_side.fetch(handle)
        finally:
            server_side.close()
        assert worker_side.send_upload(b"late") == b"late"
        assert server_side.recv_upload(b"late") == b"late"

    def test_fetch_rejects_foreign_handles(self):
        transport = TcpTransport()
        with pytest.raises(TypeError):
            transport.fetch(b"a pipe blob")


class TestRegistry:
    def test_tcp_is_registered(self):
        assert "tcp" in transport_specs()

    def test_unknown_spec_error_enumerates_every_form(self):
        with pytest.raises(ValueError, match=r"tcp\[:host:port\]"):
            make_transport("avian")
        with pytest.raises(ValueError, match=r"'auto', 'pipe', 'shm'"):
            resolve_transport("avian")

    def test_params_on_plain_transport_rejected(self):
        with pytest.raises(ValueError, match="takes no parameters"):
            resolve_transport("pipe:9999")

    def test_make_executor_error_enumerates_specs(self):
        with pytest.raises(ValueError, match=r"tcp\[:host:port\]"):
            make_executor("parallel", workers=2, transport="avian")

    def test_auto_degrade_logs_reason_once(self):
        import repro.fl.transport as transport_module

        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        # The repro logger doesn't propagate to root (caplog can't see
        # it), so capture on the module logger directly.
        handler = Capture(level=logging.WARNING)
        transport_module._log.addHandler(handler)
        was_logged = transport_module._DEGRADE_LOGGED
        transport_module._DEGRADE_LOGGED = False
        try:
            assert resolve_transport("auto", supported=False) == "pipe"
            assert resolve_transport("auto", supported=False) == "pipe"
        finally:
            transport_module._DEGRADE_LOGGED = was_logged
            transport_module._log.removeHandler(handler)
        degrades = [
            record for record in records
            if "degrading shm -> pipe" in record.getMessage()
        ]
        assert len(degrades) == 1


class TestTcpTransportInvariance:
    """Acceptance: parallel+tcp traces bit-identically to serial (and so,
    transitively with the transport tests, to pipe and shm) under both
    lossless codecs — in clean rounds, under the chaos plan with a
    deadline, and on a Byzantine leg with a robust aggregator."""

    @pytest.mark.parametrize("codec", ["identity", "delta"])
    def test_clean_rounds_match_serial_and_pipe(self, codec):
        serial = run_once(
            SerialExecutor(codec=codec), config_kwargs={"codec": codec}
        )
        for transport in ["tcp"] + ["pipe"] + (
            ["shm"] if shm_supported() else []
        ):
            with ParallelExecutor(
                num_workers=2, codec=codec, transport=transport
            ) as executor:
                candidate = run_once(executor, config_kwargs={"codec": codec})
            _assert_same(serial, candidate, f"{transport}/{codec}")

    @pytest.mark.parametrize("codec", ["identity", "delta"])
    def test_chaos_with_deadline_matches_serial(self, codec):
        serial = run_once(
            SerialExecutor(codec=codec, faults=CHAOS_PLAN, deadline=30.0),
            config_kwargs={"codec": codec},
        )
        assert "crash" in _drop_reasons(serial)
        with ParallelExecutor(
            num_workers=2, codec=codec, transport="tcp",
            faults=CHAOS_PLAN, deadline=30.0,
        ) as executor:
            candidate = run_once(executor, config_kwargs={"codec": codec})
        _assert_same(serial, candidate, f"tcp/{codec} chaos")

    def test_byzantine_leg_matches_serial(self):
        plan = FaultPlan(seed=11, corrupt_rate=0.3)
        serial = run_once(
            SerialExecutor(faults=plan),
            config_kwargs={"aggregator": "median"},
        )
        assert "corrupt" in _drop_reasons(serial)
        with ParallelExecutor(
            num_workers=2, transport="tcp", faults=plan
        ) as executor:
            candidate = run_once(
                executor, config_kwargs={"aggregator": "median"}
            )
        _assert_same(serial, candidate, "tcp byzantine")


# -- the remote executor -------------------------------------------------------


class TestRemoteExecutor:
    _serial_cache = {}

    @classmethod
    def _serial(cls, codec):
        if codec not in cls._serial_cache:
            cls._serial_cache[codec] = run_once(
                SerialExecutor(codec=codec), config_kwargs={"codec": codec}
            )
        return cls._serial_cache[codec]

    @pytest.mark.parametrize("pipelined", [True, False])
    @pytest.mark.parametrize("codec", ["identity", "delta"])
    def test_trace_matches_serial(self, codec, pipelined):
        remote = RemoteExecutor(num_agents=2, codec=codec, pipelined=pipelined)
        result = run_remote(remote, config_kwargs={"codec": codec})
        _assert_same(
            self._serial(codec), result,
            f"remote/{codec}/{'pipelined' if pipelined else 'unpipelined'}",
        )

    def test_chaos_trace_matches_serial(self):
        serial = run_once(SerialExecutor(faults=CHAOS_PLAN, deadline=30.0))
        assert "crash" in _drop_reasons(serial)
        remote = RemoteExecutor(num_agents=2, faults=CHAOS_PLAN, deadline=30.0)
        result = run_remote(remote)
        _assert_same(serial, result, "remote chaos")

    def test_edge_topology_matches_flat_mean(self):
        """Two agents + the two-tier edge topology must land bitwise on
        flat weighted mean (the topology invariant, now across sockets)."""
        flat = run_once(SerialExecutor())
        remote = RemoteExecutor(num_agents=2)
        result = run_remote(remote, config_kwargs={"topology": "edge:2"})
        _assert_same(flat, result, "remote edge:2")

    def test_unpipelined_reports_zero_overlap(self):
        remote = RemoteExecutor(num_agents=2, pipelined=False)
        result = run_remote(remote)
        assert result.timing.pipeline_overlap_seconds == 0.0

    def test_rejects_zero_agents(self):
        with pytest.raises(ValueError):
            RemoteExecutor(num_agents=0)


class TestDisconnect:
    def test_mid_round_disconnect_never_wedges_round_close(self):
        """Regression: an agent that dies after accepting a task (its
        upload never arrives) is a typed ``"disconnect"`` drop; the round
        closes over the survivors and later rounds re-home its clients."""
        assert "disconnect" in DROP_REASONS
        remote = RemoteExecutor(num_agents=2)

        def saboteur():
            sock = socket.create_connection(remote.address, timeout=30)
            stream = FrameStream(sock)
            stream.send(encode_message(HELLO, hello_meta(name="saboteur")))
            frame = stream.next_frame()
            if frame is None or decode_message(frame).kind != WELCOME:
                sock.close()
                return
            while True:
                frame = stream.next_frame()
                if frame is None:
                    break
                if decode_message(frame).kind == TASK:
                    break  # vanish mid-round: task accepted, upload never sent
            sock.close()

        sab = threading.Thread(target=saboteur, daemon=True)
        good = threading.Thread(
            target=run_agent, args=(remote.address,),
            kwargs={"name": "survivor"}, daemon=True,
        )
        sab.start()
        good.start()
        try:
            result = run_once(remote, rounds=3)
        finally:
            remote.close()
        sab.join(timeout=10)
        good.join(timeout=10)
        assert len(result.history.records) == 3  # no round wedged
        assert "disconnect" in _drop_reasons(result)
        # After the disconnect round every participant trains again.
        assert result.history.records[-1].participants


# -- the run-trace digest ------------------------------------------------------


class TestTraceDict:
    def test_equal_runs_equal_digests(self):
        first = run_once(SerialExecutor(), rounds=2)
        second = run_once(SerialExecutor(), rounds=2)
        assert trace_dict(first) == trace_dict(second)
        # JSON-safe and lossless through a round-trip.
        assert json.loads(json.dumps(trace_dict(first))) == trace_dict(first)

    def test_different_runs_differ(self):
        short = run_once(SerialExecutor(), rounds=1)
        long = run_once(SerialExecutor(), rounds=2)
        assert trace_dict(short) != trace_dict(long)


# -- CLI -----------------------------------------------------------------------


class TestCLIKnob:
    def test_parameterized_tcp_spec_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lodo", "--suite", "pacs", "--method", "fedavg",
             "--transport", "tcp:127.0.0.1:0"]
        )
        assert args.transport == "tcp:127.0.0.1:0"

    def test_bad_tcp_endpoint_is_a_usage_error(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["lodo", "--suite", "pacs", "--method", "fedavg",
                 "--transport", "tcp:127.0.0.1:notaport"]
            )

    def test_params_on_plain_transport_is_a_usage_error(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["lodo", "--suite", "pacs", "--method", "fedavg",
                 "--transport", "pipe:9999"]
            )
