"""Tests for the fault-tolerance layer (`repro.fl.faults` + the engines).

The acceptance bar: a seeded fault plan (dropouts + a worker crash +
stragglers + corrupted uploads) produces *bit-identical* traces — including
who dropped, and why — across serial, parallel+pipe, and parallel+shm;
rounds close within their configured deadline with survivors-only
aggregation; a crashed worker leaves no shared-memory segments and no
resource-tracker warnings behind; and a deadline that expires with nothing
to aggregate raises a typed `RoundTimeoutError` instead of hanging forever
(the pre-PR-5 latent bug: result collection had no timeout at all).
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FedAvgStrategy
from repro.core import PardonStrategy
from repro.data import synthetic_pacs, partition_clients
from repro.fl import (
    Client,
    FaultEvent,
    FaultPlan,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    ParallelExecutor,
    RoundTimeoutError,
    SerialExecutor,
    make_executor,
    make_fault_plan,
    shm_supported,
)
from repro.fl.faults import poison_state, state_is_corrupt
from repro.fl.transport import SHM_SEGMENT_PREFIX
from repro.nn import build_mlp_model
from repro.utils.rng import SeedTree

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
FAST = LocalTrainingConfig(batch_size=8)

#: The acceptance-criteria plan: dropouts + stragglers + corrupted uploads
#: from the seeded schedule, plus one worker crash in round 1.
CHAOS_PLAN = FaultPlan(
    seed=7,
    dropout_rate=0.15,
    straggler_rate=0.25,
    straggler_delay=0.02,
    corrupt_rate=0.1,
    crash_rounds=(1,),
)

needs_shm = pytest.mark.skipif(
    not shm_supported(), reason="platform has no POSIX shared memory"
)


def _shm_dir_listable() -> bool:
    return sys.platform == "linux" and os.path.isdir("/dev/shm")


def _stray_segments() -> list[str]:
    if not _shm_dir_listable():
        return []
    return [
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(SHM_SEGMENT_PREFIX)
    ]


def make_clients(n_clients=8, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, 0.2, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def _model(rng_seed=0):
    return build_mlp_model(
        SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(rng_seed)
    )


def run_once(executor, strategy=None, rounds=3, config_kwargs=None):
    server = FederatedServer(
        strategy=strategy or FedAvgStrategy(FAST),
        clients=make_clients(),
        model=_model(),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(
            num_rounds=rounds, clients_per_round=4, seed=0,
            **(config_kwargs or {}),
        ),
        executor=executor,
    )
    return server.run()


def _trace(result):
    """The full per-round trace — including the fault layer's drop map —
    plus the final accuracies: what must be engine-invariant."""
    return (
        [
            (r.round_index, r.mean_local_loss, tuple(r.participants),
             tuple(sorted(r.dropped.items())),
             tuple(sorted(r.eval_accuracy.items())))
            for r in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


def _round_seeds(clients, rounds=1):
    tree = SeedTree(0).child("server", "test")
    return [
        [tree.seed("client", c.client_id, "round", r) for c in clients]
        for r in range(rounds)
    ]


class TestFaultPlan:
    def test_schedule_is_deterministic(self):
        a = FaultPlan(seed=3, dropout_rate=0.3, straggler_rate=0.3, corrupt_rate=0.3)
        b = FaultPlan(seed=3, dropout_rate=0.3, straggler_rate=0.3, corrupt_rate=0.3)
        grid = [(c, r) for c in range(20) for r in range(10)]
        assert [a.fault_for(c, r) for c, r in grid] == [
            b.fault_for(c, r) for c, r in grid
        ]

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, dropout_rate=0.5)
        b = FaultPlan(seed=2, dropout_rate=0.5)
        grid = [(c, r) for c in range(30) for r in range(10)]
        assert [a.fault_for(c, r) for c, r in grid] != [
            b.fault_for(c, r) for c, r in grid
        ]

    def test_rate_edges(self):
        none = FaultPlan()
        assert all(none.fault_for(c, r) is None for c in range(10) for r in range(5))
        all_drop = FaultPlan(dropout_rate=1.0)
        assert all(
            all_drop.fault_for(c, r).kind == "dropout"
            for c in range(10) for r in range(5)
        )

    def test_explicit_event_overrides_rates(self):
        plan = FaultPlan(
            dropout_rate=1.0,
            events=(FaultEvent("corrupt", round_index=2, client_id=5),),
        )
        assert plan.fault_for(5, 2).kind == "corrupt"
        assert plan.fault_for(5, 1).kind == "dropout"

    def test_crash_victim_is_deterministic_and_sampled(self):
        plan = FaultPlan(seed=11, crash_rounds=(1, 3))
        candidates = [4, 9, 2, 7]
        victim = plan.crash_victim(1, candidates)
        assert victim in candidates
        assert victim == plan.crash_victim(1, list(reversed(candidates)))
        assert plan.crash_victim(0, candidates) is None
        assert plan.crash_victim(1, []) is None

    def test_explicit_crash_event_names_its_victim(self):
        plan = FaultPlan(events=(FaultEvent("crash", round_index=0, client_id=3),))
        assert plan.crash_victim(0, [1, 2, 3]) == 3
        assert plan.crash_victim(0, [1, 2]) is None  # victim not selected
        assert plan.crash_victim(1, [1, 2, 3]) is None

    def test_actions_split_cooperative_straggler_drops(self):
        plan = FaultPlan(seed=0, straggler_rate=1.0, straggler_delay=0.5)
        over = plan.actions_for_round([1, 2], 0, deadline=0.1)
        assert over.skipped == {1: "straggler", 2: "straggler"}
        assert over.injected == {}
        assert over.straggler_seconds == pytest.approx(1.0)
        under = plan.actions_for_round([1, 2], 0, deadline=10.0)
        assert under.skipped == {}
        assert sorted(under.injected) == [1, 2]
        no_deadline = plan.actions_for_round([1, 2], 0, deadline=None)
        assert sorted(no_deadline.injected) == [1, 2]

    def test_crash_victim_excludes_skipped_clients(self):
        plan = FaultPlan(
            dropout_rate=1.0,
            events=(FaultEvent("crash", round_index=0, client_id=1),),
        )
        actions = plan.actions_for_round([1, 2], 0, deadline=None)
        # Client 1 dropped out before dispatch, so its worker cannot crash.
        assert actions.skipped == {1: "dropout", 2: "dropout"}
        assert actions.injected == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(dropout_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(straggler_delay=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(crash_rounds=(-1,))
        with pytest.raises(ValueError):
            FaultEvent("meteor", 0, 0)
        with pytest.raises(ValueError):
            FaultEvent("straggler", 0, 0, delay_seconds=-0.1)


class TestMakeFaultPlan:
    def test_parses_full_spec(self):
        plan = make_fault_plan(
            "dropout=0.1,straggler=0.25:0.05,corrupt=0.05,crash=2+5,seed=7"
        )
        assert plan == FaultPlan(
            seed=7, dropout_rate=0.1, straggler_rate=0.25,
            straggler_delay=0.05, corrupt_rate=0.05, crash_rounds=(2, 5),
        )

    def test_straggler_rate_without_delay_uses_default(self):
        plan = make_fault_plan("straggler=0.5")
        assert plan.straggler_rate == 0.5
        assert plan.straggler_delay > 0

    def test_passthrough(self):
        assert make_fault_plan(None) is None
        plan = FaultPlan(seed=1)
        assert make_fault_plan(plan) is plan

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            make_fault_plan("meteor=0.1")
        with pytest.raises(ValueError):
            make_fault_plan("dropout=lots")
        with pytest.raises(ValueError):
            make_fault_plan("dropout")
        with pytest.raises(TypeError):
            make_fault_plan(7)
        with pytest.raises(TypeError):
            make_fault_plan("   ")


class TestCorruption:
    def test_poison_is_detected(self):
        state = {"w": np.ones((3, 3)), "b": np.zeros(3)}
        assert not state_is_corrupt(state)
        assert state_is_corrupt(poison_state(state))

    def test_poison_does_not_mutate_the_original(self):
        state = {"w": np.ones(4)}
        poison_state(state)
        assert np.isfinite(state["w"]).all()


class TestChaosInvariance:
    """Acceptance criteria: the seeded chaos plan traces bit-identically
    across serial, parallel+pipe, and parallel+shm, completes within the
    configured deadline, and leaves zero shared-memory segments behind."""

    @pytest.mark.parametrize("codec", ["identity", "delta"])
    def test_chaos_trace_engine_and_transport_invariant(self, codec):
        serial = run_once(
            SerialExecutor(codec=codec, faults=CHAOS_PLAN, deadline=30.0),
            config_kwargs={"codec": codec},
        )
        # The plan really fired: every kind shows up in the trace.
        reasons = {
            reason
            for record in serial.history.records
            for reason in record.dropped.values()
        }
        assert "crash" in reasons
        assert serial.timing.dropped_clients > 0
        assert serial.timing.straggler_seconds > 0
        transports = ["pipe"] + (["shm"] if shm_supported() else [])
        for transport in transports:
            with ParallelExecutor(
                num_workers=2, codec=codec, transport=transport,
                faults=CHAOS_PLAN, deadline=30.0,
            ) as executor:
                parallel = run_once(executor, config_kwargs={"codec": codec})
                assert parallel.timing.rebuilt_workers >= 1
            assert _trace(parallel) == _trace(serial), (
                f"{transport}/{codec} chaos trace diverged from serial"
            )
            for key in serial.final_state:
                np.testing.assert_array_equal(
                    serial.final_state[key], parallel.final_state[key]
                )
            assert _stray_segments() == []

    def test_chaos_with_scratch_heavy_strategy(self):
        """A crash round must not lose or fork per-client scratch state:
        PARDON's style-transfer cache re-ships from the server copy when
        the slot rebuilds, so the trace still matches serial."""
        plan = FaultPlan(seed=5, crash_rounds=(1,), dropout_rate=0.1)
        serial = run_once(
            SerialExecutor(faults=plan), strategy=PardonStrategy(local_config=FAST)
        )
        with ParallelExecutor(num_workers=2, faults=plan) as executor:
            parallel = run_once(executor, strategy=PardonStrategy(local_config=FAST))
        assert _trace(parallel) == _trace(serial)
        for key in serial.final_state:
            np.testing.assert_array_equal(
                serial.final_state[key], parallel.final_state[key]
            )

    def test_fault_free_plan_changes_nothing(self):
        """An empty plan must not perturb the trace (the fault layer's
        bookkeeping is observable only through faults)."""
        plain = run_once(SerialExecutor())
        chaosless = run_once(SerialExecutor(faults=FaultPlan()))
        assert _trace(plain) == _trace(chaosless)

    def test_cooperative_straggler_drop_is_engine_invariant(self):
        """Stragglers injected past the deadline drop identically (and
        up front) on every engine — no wall-clock races in the trace."""
        plan = FaultPlan(seed=2, straggler_rate=0.5, straggler_delay=5.0)
        serial = run_once(
            SerialExecutor(faults=plan, deadline=0.5),
            config_kwargs={"deadline": 0.5},
        )
        reasons = {
            reason
            for record in serial.history.records
            for reason in record.dropped.values()
        }
        assert reasons == {"straggler"}
        with ParallelExecutor(num_workers=2, faults=plan, deadline=0.5) as ex:
            parallel = run_once(ex, config_kwargs={"deadline": 0.5})
        assert _trace(parallel) == _trace(serial)


class TestPartialAggregation:
    """Satellite: for random (participation, dropout-rate, deadline)
    tuples, the aggregated state equals the reference computed over
    exactly the surviving client set."""

    @settings(max_examples=10, deadline=None)
    @given(
        participation=st.sampled_from([0.3, 0.5, 1.0, 2, 5]),
        dropout=st.floats(0.0, 0.9),
        straggler=st.floats(0.0, 0.8),
        plan_seed=st.integers(0, 2**31 - 1),
        deadline=st.sampled_from([None, 0.001, 30.0]),
    )
    def test_aggregate_covers_exactly_the_survivors(
        self, participation, dropout, straggler, plan_seed, deadline
    ):
        plan = FaultPlan(
            seed=plan_seed, dropout_rate=dropout,
            straggler_rate=straggler, straggler_delay=0.005,
            corrupt_rate=0.2,
        )
        strategy = FedAvgStrategy(FAST)
        clients = make_clients()
        by_id = {client.client_id: client for client in clients}
        model = _model()
        init_state = {k: v.copy() for k, v in model.state_dict().items()}
        server = FederatedServer(
            strategy=strategy,
            clients=clients,
            model=model,
            eval_sets={},
            config=FederatedConfig(
                num_rounds=2, clients_per_round=participation, seed=0,
                eval_every=10,
            ),
            executor=SerialExecutor(faults=plan, deadline=deadline),
        )
        result = server.run()
        # Replay: recompute each surviving update independently and
        # aggregate over exactly that set.
        tree = SeedTree(0).child("server", strategy.name)
        replay_model = _model()
        state = init_state
        for record in result.history.records:
            updates = []
            for client_id in record.participants:
                if client_id in record.dropped:
                    continue
                replay_model.load_state_dict(state)
                update = strategy.local_update(
                    by_id[client_id],
                    replay_model,
                    record.round_index,
                    np.random.default_rng(
                        tree.seed(
                            "client", client_id, "round", record.round_index
                        )
                    ),
                )
                updates.append(update)
            state = strategy.aggregate(state, updates, record.round_index)
        for key in state:
            np.testing.assert_array_equal(state[key], result.final_state[key])


class TestDeadline:
    def _run_one_round(self, executor, clients, round_index=0, seeds=None):
        model = _model()
        state = model.state_dict()
        seeds = seeds or _round_seeds(clients, rounds=round_index + 1)[round_index]
        return executor.run_round(
            FedAvgStrategy(FAST), model, state, clients, round_index, seeds
        )

    def test_hung_worker_is_dropped_at_the_deadline(self):
        """The latent-bug fix, graceful half: a hung worker no longer
        blocks collection forever — the round closes at the deadline with
        the survivors, and the straggler is absorbed into the next round."""
        clients = make_clients()[:4]
        # Client 3 hangs well past the deadline; with 2 workers it is the
        # last task on its slot, so only it misses the round.
        plan = FaultPlan(
            events=(FaultEvent("hang", 0, 3, delay_seconds=2.0),)
        )
        seeds = _round_seeds(clients, rounds=2)
        with ParallelExecutor(num_workers=2, faults=plan, deadline=0.75) as ex:
            start = time.perf_counter()
            updates = self._run_one_round(ex, clients, 0, seeds[0])
            elapsed = time.perf_counter() - start
            assert [u.client_id for u in updates] == [0, 1, 2]
            assert ex.last_fault_report.dropped == {3: "deadline"}
            # Closed at the deadline, not at the straggler's convenience.
            assert elapsed < 1.9
            # The absorbed straggler poisons nothing: the next round
            # re-registers client 3 and collects everyone.
            model = _model()
            updates = ex.run_round(
                FedAvgStrategy(FAST), model, model.state_dict(), clients,
                1, seeds[1],
            )
            assert [u.client_id for u in updates] == [0, 1, 2, 3]
            assert ex.last_fault_report.dropped == {}

    def test_round_timeout_error_when_nothing_arrives(self):
        """The latent-bug fix, typed half: a deadline that expires with
        zero updates raises RoundTimeoutError naming the offenders — and
        close() kills the still-wedged slots instead of inheriting the
        hang as an unbounded join."""
        clients = make_clients()[:4]
        plan = FaultPlan(
            events=tuple(
                FaultEvent("hang", 0, c.client_id, delay_seconds=5.0)
                for c in clients
            )
        )
        ex = ParallelExecutor(num_workers=2, faults=plan, deadline=0.5)
        try:
            with pytest.raises(RoundTimeoutError) as excinfo:
                self._run_one_round(ex, clients)
            assert sorted(excinfo.value.client_ids) == [0, 1, 2, 3]
            assert excinfo.value.round_index == 0
        finally:
            start = time.perf_counter()
            ex.close()
            closed_in = time.perf_counter() - start
        # Each slot still holds ~5s of absorbed sleeps; a joining close
        # would take ~10s.
        assert closed_in < 2.0
        assert _stray_segments() == []

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError):
            SerialExecutor(deadline=0.0)
        with pytest.raises(ValueError):
            ParallelExecutor(num_workers=2, deadline=-1.0)
        with pytest.raises(ValueError):
            FederatedConfig(deadline=0.0)


@needs_shm
class TestCrashLeaks:
    """Satellite: a worker killed mid-round under the shm transport must
    not strand segments or trip the multiprocessing resource tracker."""

    def test_crash_round_leaves_no_segments(self):
        plan = FaultPlan(seed=5, crash_rounds=(0,))
        executor = ParallelExecutor(num_workers=2, transport="shm", faults=plan)
        try:
            result = run_once(executor, rounds=2)
            assert result.timing.rebuilt_workers >= 1
            assert _stray_segments() == []
        finally:
            executor.close()
        assert _stray_segments() == []

    def test_no_resource_tracker_warnings_in_subprocess(self):
        """Run a crash-heavy shm chaos run in a clean interpreter and
        assert the tracker stays silent through interpreter exit (the
        in-process assertion above cannot see exit-time warnings)."""
        repo = Path(__file__).resolve().parent.parent
        script = (
            "import os\n"
            "import numpy as np\n"
            "from repro.baselines import FedAvgStrategy\n"
            "from repro.data import synthetic_pacs, partition_clients\n"
            "from repro.fl import (Client, FaultPlan, FederatedConfig,\n"
            "    FederatedServer, LocalTrainingConfig, ParallelExecutor)\n"
            "from repro.fl.transport import SHM_SEGMENT_PREFIX\n"
            "from repro.nn import build_mlp_model\n"
            "suite = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)\n"
            "part = partition_clients(suite, [0, 1], 8, 0.2,\n"
            "    np.random.default_rng(0))\n"
            "clients = [Client(i, d) for i, d in\n"
            "    enumerate(part.client_datasets)]\n"
            "plan = FaultPlan(seed=5, crash_rounds=(0, 1))\n"
            "executor = ParallelExecutor(num_workers=2, transport='shm',\n"
            "    faults=plan)\n"
            "server = FederatedServer(\n"
            "    strategy=FedAvgStrategy(LocalTrainingConfig(batch_size=8)),\n"
            "    clients=clients,\n"
            "    model=build_mlp_model(suite.image_shape, suite.num_classes,\n"
            "        rng=np.random.default_rng(0)),\n"
            "    eval_sets={},\n"
            "    config=FederatedConfig(num_rounds=2, clients_per_round=4,\n"
            "        seed=0, eval_every=10),\n"
            "    executor=executor,\n"
            ")\n"
            "result = server.run()\n"
            "assert result.timing.rebuilt_workers >= 1\n"
            "executor.close()\n"
            "strays = [n for n in os.listdir('/dev/shm')\n"
            "    if n.startswith(SHM_SEGMENT_PREFIX)]\n"
            "assert strays == [], strays\n"
            "print('CLEAN')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, cwd=repo, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "CLEAN" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr


class TestCrashRecovery:
    def test_co_resident_tasks_rerun_after_crash(self):
        """With 2 workers and 4 clients, the crash victim's slot hosts a
        second task; only the victim drops, the sibling re-runs and its
        update matches the serial engine bit-for-bit."""
        clients = make_clients()[:4]
        seeds = _round_seeds(clients)[0]
        plan = FaultPlan(events=(FaultEvent("crash", 0, 0),))
        model = _model()
        state = model.state_dict()
        serial = SerialExecutor(faults=plan)
        serial_updates = serial.run_round(
            FedAvgStrategy(FAST), model, state, make_clients()[:4], 0, seeds
        )
        with ParallelExecutor(num_workers=2, faults=plan) as ex:
            updates = ex.run_round(
                FedAvgStrategy(FAST), model, state, clients, 0, seeds
            )
            assert ex.last_fault_report.dropped == {0: "crash"}
            assert ex.last_fault_report.rebuilt_workers == 1
        # Client 2 shares slot 0 with the victim: its task died with the
        # worker and re-ran on the rebuilt slot.
        assert [u.client_id for u in updates] == [1, 2, 3]
        assert [u.client_id for u in serial_updates] == [1, 2, 3]
        for mine, theirs in zip(updates, serial_updates):
            assert mine.loss == theirs.loss
            for key in theirs.state:
                np.testing.assert_array_equal(mine.state[key], theirs.state[key])

    def test_unplanned_worker_death_is_survived(self):
        """Crash recovery is always on: a worker lost without any fault
        plan re-runs its tasks instead of killing the run."""
        clients = make_clients()[:4]
        seeds = _round_seeds(clients, rounds=2)
        model = _model()
        state = model.state_dict()
        with ParallelExecutor(num_workers=2) as ex:
            ex.run_round(FedAvgStrategy(FAST), model, state, clients, 0, seeds[0])
            # Kill one worker process behind the executor's back.
            victim_pool = ex._pools[0]
            pid = next(iter(victim_pool._processes))
            os.kill(pid, 9)
            updates = ex.run_round(
                FedAvgStrategy(FAST), model, state, clients, 1, seeds[1]
            )
            assert [u.client_id for u in updates] == [0, 1, 2, 3]
            assert ex.last_fault_report.rebuilt_workers >= 1
            assert ex.last_fault_report.dropped == {}


class TestTimingAndHistory:
    def test_fault_counters_reach_the_timing_report(self):
        result = run_once(SerialExecutor(faults=CHAOS_PLAN, deadline=30.0))
        dropped_total = sum(
            len(record.dropped) for record in result.history.records
        )
        assert result.timing.dropped_clients == dropped_total > 0
        assert result.timing.straggler_seconds > 0
        assert result.timing.rebuilt_workers == 0  # serial has no workers

    def test_survivors_property(self):
        result = run_once(SerialExecutor(faults=CHAOS_PLAN, deadline=30.0))
        for record in result.history.records:
            assert set(record.survivors) == (
                set(record.participants) - set(record.dropped)
            )

    def test_fault_free_round_records_empty_drop_map(self):
        result = run_once(SerialExecutor())
        assert all(record.dropped == {} for record in result.history.records)
        assert result.timing.dropped_clients == 0

    def test_cli_timing_row_has_fault_columns(self):
        from repro.cli import _TIMING_HEADER, _timing_row

        result = run_once(SerialExecutor(faults=CHAOS_PLAN, deadline=30.0))
        row = _timing_row("chaos", result.timing)
        assert len(row) == len(_TIMING_HEADER)
        assert "dropped" in _TIMING_HEADER
        assert row[_TIMING_HEADER.index("dropped")] == str(
            result.timing.dropped_clients
        )


class TestConfigAndCLI:
    def test_faults_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lodo", "--suite", "pacs", "--method", "fedavg",
             "--faults", "dropout=0.1,crash=2", "--deadline", "1.5"]
        )
        assert args.faults == "dropout=0.1,crash=2"
        assert args.deadline == 1.5

    def test_flags_default_off(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["lodo", "--suite", "pacs", "--method", "fedavg"]
        )
        assert args.faults is None
        assert args.deadline is None

    def test_bad_faults_spec_is_a_usage_error(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["lodo", "--suite", "pacs", "--method", "fedavg",
                 "--faults", "meteor=0.1"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["lodo", "--suite", "pacs", "--method", "fedavg",
                 "--deadline", "-3"]
            )

    def test_setting_threads_faults_into_executor_and_config(self):
        from repro.eval import ExperimentSetting

        setting = ExperimentSetting(faults="dropout=0.5,seed=3", deadline=2.0)
        executor = setting.make_executor()
        assert executor.fault_plan == make_fault_plan("dropout=0.5,seed=3")
        assert executor.deadline == 2.0

    def test_make_executor_threads_faults_for_both_kinds(self):
        serial = make_executor("serial", faults="dropout=0.2", deadline=1.0)
        assert serial.fault_plan.dropout_rate == 0.2
        parallel = make_executor(
            "parallel", workers=2, faults="dropout=0.2", deadline=1.0
        )
        try:
            assert parallel.fault_plan.dropout_rate == 0.2
            assert parallel.deadline == 1.0
        finally:
            parallel.close()

    def test_config_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            FederatedConfig(faults="meteor=1")
        with pytest.raises(ValueError):
            FederatedConfig(deadline=-1.0)

    def test_server_rejects_mismatched_fault_plan(self):
        config = FederatedConfig(
            num_rounds=1, clients_per_round=2, faults="dropout=0.5"
        )
        with pytest.raises(ValueError, match="fault plan"):
            FederatedServer(
                strategy=FedAvgStrategy(FAST),
                clients=make_clients(),
                model=_model(),
                eval_sets={},
                config=config,
                executor=SerialExecutor(),  # forgot the plan
            )
        with pytest.raises(ValueError, match="deadline"):
            FederatedServer(
                strategy=FedAvgStrategy(FAST),
                clients=make_clients(),
                model=_model(),
                eval_sets={},
                config=FederatedConfig(
                    num_rounds=1, clients_per_round=2, deadline=1.0
                ),
                executor=SerialExecutor(),
            )

    def test_server_default_executor_carries_config_faults(self):
        server = FederatedServer(
            strategy=FedAvgStrategy(FAST),
            clients=make_clients(),
            model=_model(),
            eval_sets={},
            config=FederatedConfig(
                num_rounds=1, clients_per_round=2, faults="dropout=1.0",
            ),
        )
        result = server.run()
        record = result.history.records[0]
        assert set(record.dropped.values()) == {"dropout"}
        assert record.survivors == []
