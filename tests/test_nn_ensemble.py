"""Tests for the ensemble compute path (`repro.nn.ensemble` + `repro.fl.compute`).

The acceptance bar: slice ``k`` of every ``(K, ...)`` ensemble layer is
*bitwise* the template layer's computation on that slice (forward, backward,
parameter gradients, running buffers); a K-stack local update is bitwise K
independent loop updates, so client results never depend on how an engine
groups them; the ``strict`` backend (K=1 stacks through the ensemble code)
proves that equivalence one client at a time; and the backend registry
negotiates like codecs and transports — unknown specs fail fast, ``auto``
resolves against the model, and unsupported models or strategies fall back
to the loop rather than erroring.
"""

import numpy as np
import pytest

from repro.baselines import FedAvgStrategy, FPLStrategy
from repro.core import PardonStrategy
from repro.data import partition_clients, synthetic_pacs
from repro.data.synthetic import LabeledDataset
from repro.fl import (
    Client,
    EnsembleBackend,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    LoopBackend,
    ParallelExecutor,
    SerialExecutor,
    compute_specs,
    make_compute,
    register_compute,
    resolve_compute,
    shm_supported,
)
from repro.fl.compute import ComputeBackend, _BACKENDS
from repro.fl.strategy import Strategy
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    FeatureClassifierModel,
    Flatten,
    GlobalAvgPool2d,
    InstanceNorm2d,
    LayerNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    build_cnn_model,
    build_mlp_model,
    ensemble_of,
    ensemble_state_dicts,
    ensemble_supports,
    load_state_broadcast,
    load_state_stack,
)
from repro.nn.conv import im2col
from repro.nn.ensemble import ensemble_cross_entropy
from repro.nn.losses import CrossEntropyLoss
from tests.gradcheck import check_module_gradients

needs_shm = pytest.mark.skipif(
    not shm_supported(), reason="platform has no POSIX shared memory"
)

K = 3  # default stack size for layer parity checks
FAST = LocalTrainingConfig(batch_size=5, local_epochs=2)


# --------------------------------------------------------------------------
# Layer-level bitwise parity: slice k of the ensemble == template on slice k
# --------------------------------------------------------------------------


def _perturbed_variants(factory, k, seed):
    """K template layers with distinct parameters (norm layers initialize
    to constants, so perturb every parameter to make slices distinguishable)."""
    layers = []
    for index in range(k):
        rng = np.random.default_rng(seed + index)
        layer = factory(rng)
        for _, param in layer.named_parameters():
            param.data += 0.1 * rng.normal(size=param.data.shape)
        layers.append(layer)
    return layers


def _assert_slicewise_equal(factory, x_shape, seed=0, k=K, training=True):
    """Forward, input gradient, parameter gradients, and buffers of the
    ensemble must be bitwise the K independent template computations."""
    templates = _perturbed_variants(factory, k, seed)
    emodel = ensemble_of(templates[0], k)
    states = [template.state_dict() for template in templates]
    if states[0]:
        load_state_stack(emodel, states)
    rng = np.random.default_rng(seed + 100)
    x = rng.normal(size=(k,) + x_shape)

    for module in (emodel, *templates):
        module.train() if training else module.eval()

    out = emodel.forward(x)
    emodel.zero_grad()
    emodel.forward(x)
    grad_out = rng.normal(size=out.shape)
    grad_in = emodel.backward(grad_out)

    ensemble_params = dict(emodel.named_parameters())
    ensemble_buffers = dict(emodel.named_buffers())
    for index, template in enumerate(templates):
        ref_out = template.forward(x[index])
        assert np.array_equal(out[index], ref_out), (
            f"slice {index}: forward diverged from template"
        )
        template.zero_grad()
        template.forward(x[index])
        ref_grad_in = template.backward(grad_out[index])
        assert np.array_equal(grad_in[index], ref_grad_in), (
            f"slice {index}: input gradient diverged from template"
        )
        for name, param in template.named_parameters():
            assert np.array_equal(ensemble_params[name].grad[index], param.grad), (
                f"slice {index}: gradient of {name} diverged from template"
            )
        for name, buffer in template.named_buffers():
            assert np.array_equal(ensemble_buffers[name][index], buffer), (
                f"slice {index}: buffer {name} diverged from template"
            )


class TestLayerParity:
    """Every layer type of the PARDON model (and the rest of the registry)."""

    def test_conv2d(self):
        _assert_slicewise_equal(
            lambda rng: Conv2d(3, 5, kernel_size=3, stride=2, padding=1, rng=rng),
            (4, 3, 8, 8),
        )

    def test_conv2d_unit_stride_no_padding(self):
        _assert_slicewise_equal(
            lambda rng: Conv2d(2, 4, kernel_size=3, stride=1, padding=0, rng=rng),
            (3, 2, 6, 6),
        )

    def test_linear(self):
        _assert_slicewise_equal(lambda rng: Linear(7, 4, rng=rng), (6, 7))

    def test_batchnorm_training(self):
        _assert_slicewise_equal(lambda rng: BatchNorm2d(5), (4, 5, 6, 6))

    def test_batchnorm_eval(self):
        _assert_slicewise_equal(
            lambda rng: BatchNorm2d(5), (4, 5, 6, 6), training=False
        )

    def test_instancenorm(self):
        _assert_slicewise_equal(lambda rng: InstanceNorm2d(5), (4, 5, 6, 6))

    def test_layernorm(self):
        _assert_slicewise_equal(lambda rng: LayerNorm(7), (6, 7))

    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: MaxPool2d(2),
            lambda rng: AvgPool2d(2),
            lambda rng: GlobalAvgPool2d(),
        ],
        ids=["maxpool", "avgpool", "globalavgpool"],
    )
    def test_pools(self, factory):
        _assert_slicewise_equal(factory, (3, 4, 6, 6))

    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: ReLU(),
            lambda rng: LeakyReLU(0.2),
            lambda rng: Tanh(),
            lambda rng: Sigmoid(),
        ],
        ids=["relu", "leaky_relu", "tanh", "sigmoid"],
    )
    def test_elementwise(self, factory):
        _assert_slicewise_equal(factory, (5, 7))

    def test_flatten(self):
        _assert_slicewise_equal(lambda rng: Flatten(), (3, 2, 4, 5))

    def test_full_cnn_model(self):
        """The whole PARDON backbone: split-gradient routing included."""
        templates = _perturbed_variants(
            lambda rng: build_cnn_model((3, 8, 8), 4, rng, widths=(4, 6), embed_dim=8),
            K,
            seed=7,
        )
        emodel = ensemble_of(templates[0], K)
        load_state_stack(emodel, [t.state_dict() for t in templates])
        rng = np.random.default_rng(11)
        x = rng.normal(size=(K, 5, 3, 8, 8))
        embeddings = emodel.forward_features(x)
        logits = emodel.forward_logits(embeddings)
        grad_logits = rng.normal(size=logits.shape)
        grad_embedding = rng.normal(size=embeddings.shape)
        emodel.zero_grad()
        emodel.forward_features(x)
        emodel.forward_logits(embeddings)
        grad_in = emodel.backward(
            grad_logits=grad_logits, grad_embedding=grad_embedding
        )
        ensemble_params = dict(emodel.named_parameters())
        for index, template in enumerate(templates):
            ref_embed = template.forward_features(x[index])
            ref_logits = template.forward_logits(ref_embed)
            assert np.array_equal(embeddings[index], ref_embed)
            assert np.array_equal(logits[index], ref_logits)
            template.zero_grad()
            template.forward_features(x[index])
            template.forward_logits(ref_embed)
            ref_grad_in = template.backward(
                grad_logits=grad_logits[index],
                grad_embedding=grad_embedding[index],
            )
            assert np.array_equal(grad_in[index], ref_grad_in)
            for name, param in template.named_parameters():
                assert np.array_equal(
                    ensemble_params[name].grad[index], param.grad
                )

    def test_cross_entropy_matches_template_loss(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(K, 6, 4))
        labels = rng.integers(0, 4, size=(K, 6))
        losses, grads = ensemble_cross_entropy(logits, labels)
        for index in range(K):
            loss_fn = CrossEntropyLoss()
            ref_loss = loss_fn.forward(logits[index], labels[index])
            assert losses[index] == ref_loss
            assert np.array_equal(grads[index], loss_fn.backward())


class TestGradcheck:
    """Finite differences agree with the ensemble's analytic gradients."""

    def test_ensemble_feature_stack(self):
        model = build_cnn_model(
            (2, 4, 4), 3, np.random.default_rng(0), widths=(3, 4), embed_dim=5
        )
        emodel = ensemble_of(model, 2)
        x = np.random.default_rng(1).normal(size=(2, 2, 2, 4, 4))
        check_module_gradients(emodel.features, x)

    def test_ensemble_norm_layers(self):
        stack = Sequential(
            ensemble_of(BatchNorm2d(3), 2), ensemble_of(InstanceNorm2d(3), 2)
        )
        x = np.random.default_rng(2).normal(size=(2, 3, 3, 4, 4))
        check_module_gradients(stack, x)


# --------------------------------------------------------------------------
# Backend-level property: a K-stack == K independent loop updates, bitwise
# --------------------------------------------------------------------------


def _toy_clients(sizes, num_classes=4, image_shape=(3, 8, 8), seed=0):
    """Deterministic per-client datasets so fresh copies are identical."""
    clients = []
    for client_id, count in enumerate(sizes):
        rng = np.random.default_rng(seed * 1000 + client_id)
        clients.append(
            Client(
                client_id,
                LabeledDataset(
                    images=rng.normal(size=(count,) + image_shape),
                    labels=rng.integers(0, num_classes, size=count),
                    domain_ids=np.full(count, client_id % 3),
                ),
            )
        )
    return clients


def _run_backend(spec, strategy_factory, sizes, seed=0):
    """One round of `run_group` on fresh clients; returns (updates, clients)."""
    clients = _toy_clients(sizes, seed=seed)
    model = build_cnn_model(
        (3, 8, 8), 4, np.random.default_rng(42), widths=(4, 6), embed_dim=8
    )
    strategy = strategy_factory()
    strategy.prepare(clients, model, np.random.default_rng(7))
    wire_state = model.state_dict()
    seeds = [1000 + client.client_id for client in clients]
    updates = make_compute(spec).run_group(
        strategy, model, wire_state, clients, round_index=0, seeds=seeds
    )
    return updates, clients


def _assert_updates_bitwise_equal(got, want):
    assert [u.client_id for u in got] == [u.client_id for u in want]
    for got_update, want_update in zip(got, want):
        assert got_update.loss == want_update.loss
        assert got_update.num_samples == want_update.num_samples
        assert set(got_update.state) == set(want_update.state)
        for name in want_update.state:
            assert np.array_equal(got_update.state[name], want_update.state[name]), (
                f"client {want_update.client_id}: state {name} diverged"
            )
        assert set(got_update.payload) == set(want_update.payload)
        for key, value in want_update.payload.items():
            if isinstance(value, dict):
                assert set(got_update.payload[key]) == set(value)
                for inner, array in value.items():
                    assert np.array_equal(got_update.payload[key][inner], array)
            else:
                assert np.array_equal(got_update.payload[key], value)
        assert set(got_update.scratch_delta.updates) == set(
            want_update.scratch_delta.updates
        )
        assert got_update.scratch_delta.removed == want_update.scratch_delta.removed


STRATEGIES = {
    "fedavg": lambda: FedAvgStrategy(FAST),
    "fpl": lambda: FPLStrategy(local_config=FAST),
    "pardon": lambda: PardonStrategy(local_config=FAST),
}


class TestGroupingInvariance:
    """The tentpole's numerical contract, at the backend boundary."""

    @pytest.mark.parametrize("method", sorted(STRATEGIES))
    @pytest.mark.parametrize("spec", ["ensemble", "strict"])
    def test_stack_matches_independent_loop_runs(self, method, spec):
        # Mixed dataset sizes exercise the order-preserving sub-grouping.
        sizes = (10, 7, 10, 7, 10)
        batched, _ = _run_backend(spec, STRATEGIES[method], sizes)
        loop, _ = _run_backend("loop", STRATEGIES[method], sizes)
        _assert_updates_bitwise_equal(batched, loop)

    def test_result_independent_of_group_order(self):
        sizes = (8, 8, 8, 8)
        forward, _ = _run_backend("ensemble", STRATEGIES["fedavg"], sizes)
        loop, _ = _run_backend("loop", STRATEGIES["fedavg"], sizes)
        # Same clients presented in reverse: per-client results must not move.
        clients = _toy_clients(sizes)[::-1]
        model = build_cnn_model(
            (3, 8, 8), 4, np.random.default_rng(42), widths=(4, 6), embed_dim=8
        )
        reversed_updates = make_compute("ensemble").run_group(
            STRATEGIES["fedavg"](),
            model,
            model.state_dict(),
            clients,
            round_index=0,
            seeds=[1000 + client.client_id for client in clients],
        )
        by_id = {update.client_id: update for update in reversed_updates}
        _assert_updates_bitwise_equal(
            [by_id[update.client_id] for update in forward], loop
        )

    def test_clone_cache_reuse_is_trace_invisible(self):
        """The ensemble backend memoizes stacked clones across rounds; a
        warm cache must produce the same bytes as a fresh backend."""
        sizes = (8, 8, 8)
        backend = EnsembleBackend()
        model = build_cnn_model(
            (3, 8, 8), 4, np.random.default_rng(42), widths=(4, 6), embed_dim=8
        )
        strategy = STRATEGIES["fedavg"]()

        def run(warm_backend):
            clients = _toy_clients(sizes)
            return warm_backend.run_group(
                strategy,
                model,
                model.state_dict(),
                clients,
                round_index=0,
                seeds=[1000 + client.client_id for client in clients],
            )

        run(backend)  # populate the clone cache
        assert backend._clones
        warm = run(backend)
        fresh = run(EnsembleBackend())
        _assert_updates_bitwise_equal(warm, fresh)

    def test_empty_client_routes_through_loop_path(self):
        sizes = (6, 0, 6)
        batched, _ = _run_backend("ensemble", STRATEGIES["fedavg"], sizes)
        loop, _ = _run_backend("loop", STRATEGIES["fedavg"], sizes)
        _assert_updates_bitwise_equal(batched, loop)

    def test_scratch_deltas_stay_per_client(self):
        """PARDON's style cache: each slice touches only its own scratch."""
        sizes = (9, 9, 9)
        updates, clients = _run_backend("ensemble", STRATEGIES["pardon"], sizes)
        for update, client in zip(updates, clients):
            assert update.client_id == client.client_id
            # The cache key set this update wrote belongs to this client only.
            for key in update.scratch_delta.updates:
                assert key in client.scratch


# --------------------------------------------------------------------------
# Fallbacks: anything the ensemble path cannot fuse runs the loop, bitwise
# --------------------------------------------------------------------------


class _CustomLoopOnlyStrategy(Strategy):
    """Overrides local_update without an ensemble counterpart."""

    name = "loop-only"

    def local_update(self, client, model, round_index, rng):
        update = super().local_update(client, model, round_index, rng)
        update.payload["marker"] = np.array([client.client_id])
        return update


class _DecliningStrategy(FedAvgStrategy):
    """Claims ensemble support but declines every group at run time."""

    name = "declining"

    def ensemble_update(self, clients, emodel, round_index, rngs):
        return None


class TestFallbacks:
    def test_strategy_without_ensemble_update_uses_loop(self):
        factory = lambda: _CustomLoopOnlyStrategy(FAST)
        assert not factory().supports_ensemble()
        batched, _ = _run_backend("ensemble", factory, (6, 6))
        loop, _ = _run_backend("loop", factory, (6, 6))
        _assert_updates_bitwise_equal(batched, loop)

    def test_declined_group_reruns_through_loop(self):
        factory = lambda: _DecliningStrategy(FAST)
        assert factory().supports_ensemble()
        batched, _ = _run_backend("ensemble", factory, (6, 6, 6))
        loop, _ = _run_backend("loop", factory, (6, 6, 6))
        _assert_updates_bitwise_equal(batched, loop)

    def test_base_strategy_supports_ensemble(self):
        assert FedAvgStrategy(FAST).supports_ensemble()
        assert FPLStrategy(local_config=FAST).supports_ensemble()
        assert PardonStrategy(local_config=FAST).supports_ensemble()


def _dropout_model():
    rng = np.random.default_rng(0)
    features = Sequential(
        Flatten(), Linear(12, 8, rng=rng), Dropout(0.5, rng=rng)
    )
    return FeatureClassifierModel(features, Linear(8, 3, rng=rng), embed_dim=8)


class TestRegistry:
    def test_specs(self):
        assert set(compute_specs()) == {"loop", "ensemble", "strict"}

    def test_make_kinds(self):
        assert isinstance(make_compute("loop"), LoopBackend)
        ensemble = make_compute("ensemble")
        assert isinstance(ensemble, EnsembleBackend)
        assert ensemble.batched
        strict = make_compute("strict")
        assert isinstance(strict, EnsembleBackend)
        assert strict.max_group_size == 1

    def test_built_instance_passes_through(self):
        backend = LoopBackend()
        assert make_compute(backend) is backend

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError):
            make_compute("abacus")
        with pytest.raises(ValueError):
            resolve_compute("abacus")

    def test_auto_is_not_buildable(self):
        with pytest.raises(ValueError):
            make_compute("auto")

    def test_auto_resolution(self):
        supported = build_mlp_model((3, 8, 8), 4, np.random.default_rng(0))
        assert resolve_compute("auto") == "auto"  # configs validate early
        assert resolve_compute("auto", supported) == "ensemble"
        assert resolve_compute("auto", _dropout_model()) == "loop"
        assert resolve_compute("loop", supported) == "loop"

    def test_register_custom_backend(self):
        class _Probe(ComputeBackend):
            name = "probe"

        register_compute("probe", _Probe)
        try:
            assert "probe" in compute_specs()
            assert isinstance(make_compute("probe"), _Probe)
        finally:
            _BACKENDS.pop("probe")

    def test_dropout_model_is_unsupported(self):
        model = _dropout_model()
        assert not ensemble_supports(model)
        with pytest.raises(ValueError, match="Dropout"):
            ensemble_of(model, 2)

    def test_dropout_model_falls_back_bitwise(self):
        """The ensemble backend must *run* unsupported models via the loop."""
        clients = _toy_clients((4, 4), image_shape=(1, 2, 6))
        strategy = FedAvgStrategy(FAST)

        def run(spec):
            rng = np.random.default_rng(5)
            features = Sequential(Flatten(), Linear(12, 8, rng=rng), Dropout(0.5, rng=rng))
            model = FeatureClassifierModel(
                features, Linear(8, 4, rng=rng), embed_dim=8
            )
            for client in clients:
                client.scratch.mark_clean()
            return make_compute(spec).run_group(
                strategy, model, model.state_dict(), clients, 0, [3, 4]
            )

        _assert_updates_bitwise_equal(run("ensemble"), run("loop"))


class TestStateHelpers:
    def test_stack_then_split_round_trips(self):
        templates = _perturbed_variants(
            lambda rng: build_cnn_model((3, 8, 8), 4, rng, widths=(4, 6), embed_dim=8),
            K,
            seed=1,
        )
        emodel = ensemble_of(templates[0], K)
        states = [template.state_dict() for template in templates]
        load_state_stack(emodel, states)
        for state, recovered in zip(states, ensemble_state_dicts(emodel)):
            assert set(state) == set(recovered)
            for name in state:
                assert np.array_equal(state[name], recovered[name])

    def test_broadcast_loads_same_state_into_every_slice(self):
        model = build_cnn_model(
            (3, 8, 8), 4, np.random.default_rng(2), widths=(4, 6), embed_dim=8
        )
        emodel = ensemble_of(model, K)
        load_state_broadcast(emodel, model.state_dict(), K)
        state = model.state_dict()
        for recovered in ensemble_state_dicts(emodel):
            for name in state:
                assert np.array_equal(state[name], recovered[name])


# --------------------------------------------------------------------------
# Cross-engine traces: serial / pipe / shm x loop / ensemble / strict
# --------------------------------------------------------------------------

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)


def _server_clients(n_clients=8, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, 0.2, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def _run_server(executor, rounds=2):
    server = FederatedServer(
        strategy=FedAvgStrategy(LocalTrainingConfig(batch_size=8)),
        clients=_server_clients(),
        model=build_mlp_model(
            SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(0)
        ),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(num_rounds=rounds, clients_per_round=4, seed=0),
        executor=executor,
    )
    return server.run()


def _trace(result):
    return (
        [
            (r.round_index, r.mean_local_loss, tuple(r.participants),
             tuple(sorted(r.eval_accuracy.items())))
            for r in result.history.records
        ],
        tuple(sorted(result.final_accuracy.items())),
    )


class TestCrossEngineTraces:
    """The same run must trace bit-identically on every engine x backend."""

    def test_all_backends_all_engines_match_serial_loop(self):
        reference = _run_server(SerialExecutor(compute="loop"))
        for compute in ("ensemble", "strict", "auto"):
            serial = _run_server(SerialExecutor(compute=compute))
            assert _trace(serial) == _trace(reference), (
                f"serial/{compute} trace diverged from serial/loop"
            )
            for key in reference.final_state:
                assert np.array_equal(
                    serial.final_state[key], reference.final_state[key]
                )
        transports = ["pipe"] + (["shm"] if shm_supported() else [])
        for transport in transports:
            for compute in ("loop", "ensemble", "strict"):
                with ParallelExecutor(
                    num_workers=2, transport=transport, compute=compute
                ) as executor:
                    parallel = _run_server(executor)
                assert _trace(parallel) == _trace(reference), (
                    f"{transport}/{compute} trace diverged from serial/loop"
                )
                for key in reference.final_state:
                    assert np.array_equal(
                        parallel.final_state[key], reference.final_state[key]
                    )

    def test_executor_reports_resolved_backend(self):
        assert SerialExecutor(compute="ensemble").compute == "ensemble"
        assert SerialExecutor().compute == "auto"
        with pytest.raises(ValueError):
            SerialExecutor(compute="abacus")


# --------------------------------------------------------------------------
# im2col scratch reuse: the perf fix must never alias caller-visible arrays
# --------------------------------------------------------------------------


class TestIm2colScratch:
    def test_results_never_alias_the_reused_pad_buffer(self):
        rng = np.random.default_rng(0)
        x_first = rng.normal(size=(2, 3, 8, 8))
        cols_first, _ = im2col(x_first, kernel=3, stride=1, padding=1)
        snapshot = cols_first.copy()
        # A second same-shape call reuses the padding scratch; it must not
        # rewrite the first call's (cached by Conv2d) column matrix.
        x_second = rng.normal(size=(2, 3, 8, 8))
        cols_second, _ = im2col(x_second, kernel=3, stride=1, padding=1)
        assert not np.shares_memory(cols_first, cols_second)
        assert np.array_equal(cols_first, snapshot)

    def test_padded_path_matches_np_pad_reference(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 2, 5, 5))
        cols, shape = im2col(x, kernel=3, stride=2, padding=2)
        padded = np.pad(x, ((0, 0), (0, 0), (2, 2), (2, 2)))
        ref_cols, ref_shape = im2col(padded, kernel=3, stride=2, padding=0)
        assert shape == ref_shape
        assert np.array_equal(cols, ref_cols)

    def test_scratch_border_survives_dirty_interiors(self):
        """Repeated calls only overwrite the interior; the zero border the
        padding contract depends on must survive arbitrarily many calls."""
        rng = np.random.default_rng(2)
        for _ in range(3):
            x = rng.normal(size=(1, 2, 6, 6))
            cols, _ = im2col(x, kernel=3, stride=1, padding=1)
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref_cols, _ = im2col(padded, kernel=3, stride=1, padding=0)
        assert np.array_equal(cols, ref_cols)
