"""Tests for dataset containers and the three benchmark suite builders."""

import numpy as np
import pytest

from repro.data import (
    LabeledDataset,
    synthetic_domain_sweep,
    synthetic_iwildcam,
    synthetic_office_home,
    synthetic_pacs,
    synthetic_skew,
)


def tiny_dataset(rng, n=10, domain=0):
    return LabeledDataset(
        images=rng.normal(size=(n, 3, 8, 8)),
        labels=rng.integers(0, 3, size=n),
        domain_ids=np.full(n, domain),
    )


class TestLabeledDataset:
    def test_len_and_shape(self, rng):
        ds = tiny_dataset(rng, n=7)
        assert len(ds) == 7
        assert ds.image_shape == (3, 8, 8)

    def test_subset_copies(self, rng):
        ds = tiny_dataset(rng)
        sub = ds.subset(np.array([0, 2]))
        sub.images[0] = 999.0
        assert ds.images[0, 0, 0, 0] != 999.0

    def test_concatenate(self, rng):
        a, b = tiny_dataset(rng, n=4, domain=0), tiny_dataset(rng, n=6, domain=1)
        merged = LabeledDataset.concatenate([a, b])
        assert len(merged) == 10
        assert set(np.unique(merged.domain_ids)) == {0, 1}

    def test_concatenate_rejects_empty_list(self):
        with pytest.raises(ValueError):
            LabeledDataset.concatenate([])

    def test_class_counts(self, rng):
        ds = LabeledDataset(
            images=np.zeros((4, 3, 8, 8)),
            labels=np.array([0, 0, 2, 1]),
            domain_ids=np.zeros(4),
        )
        np.testing.assert_array_equal(ds.class_counts(4), [2, 1, 1, 0])

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            LabeledDataset(
                images=np.zeros((4, 3, 8)),
                labels=np.zeros(4),
                domain_ids=np.zeros(4),
            )
        with pytest.raises(ValueError):
            LabeledDataset(
                images=np.zeros((4, 3, 8, 8)),
                labels=np.zeros(3),
                domain_ids=np.zeros(4),
            )


class TestPacsSuite:
    def test_structure(self):
        suite = synthetic_pacs(seed=0, samples_per_class=5, image_size=8)
        assert suite.num_domains == 4
        assert suite.num_classes == 7
        assert suite.domain_names == ["photo", "art_painting", "cartoon", "sketch"]
        for dataset in suite.datasets:
            assert len(dataset) == 5 * 7

    def test_domains_have_distinct_statistics(self):
        suite = synthetic_pacs(seed=0, samples_per_class=10, image_size=8)
        means = [d.images.mean(axis=(0, 2, 3)) for d in suite.datasets]
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.linalg.norm(means[i] - means[j]) > 0.05

    def test_reproducible(self):
        a = synthetic_pacs(seed=3, samples_per_class=4, image_size=8)
        b = synthetic_pacs(seed=3, samples_per_class=4, image_size=8)
        np.testing.assert_array_equal(a.datasets[0].images, b.datasets[0].images)

    def test_different_seeds_differ(self):
        a = synthetic_pacs(seed=1, samples_per_class=4, image_size=8)
        b = synthetic_pacs(seed=2, samples_per_class=4, image_size=8)
        assert not np.allclose(a.datasets[0].images, b.datasets[0].images)

    def test_domain_lookup(self):
        suite = synthetic_pacs(seed=0, samples_per_class=2, image_size=8)
        assert suite.domain_index("sketch") == 3
        with pytest.raises(KeyError):
            suite.domain_index("nonexistent")
        by_name = suite.dataset_for("cartoon")
        by_index = suite.dataset_for(2)
        np.testing.assert_array_equal(by_name.images, by_index.images)

    def test_merged_pool(self):
        suite = synthetic_pacs(seed=0, samples_per_class=3, image_size=8)
        pool = suite.merged([0, 1])
        assert len(pool) == 2 * 3 * 7
        with pytest.raises(ValueError):
            suite.merged([])


class TestOfficeHomeSuite:
    def test_structure(self):
        suite = synthetic_office_home(seed=0, samples_per_class=2, image_size=8)
        assert suite.num_domains == 4
        assert suite.num_classes == 65
        assert len(suite.datasets[0]) == 2 * 65


class TestIWildCamSuite:
    def test_domain_split_structure(self):
        suite = synthetic_iwildcam(
            seed=0, num_train_domains=6, num_val_domains=2,
            num_test_domains=3, num_classes=10, mean_samples_per_domain=30,
            image_size=8,
        )
        assert suite.num_domains == 11
        assert len(suite.train_domains) == 6
        assert len(suite.val_domains) == 2
        assert len(suite.test_domains) == 3
        all_roles = suite.train_domains + suite.val_domains + suite.test_domains
        assert sorted(all_roles) == list(range(11))

    def test_long_tail_and_absent_classes(self):
        suite = synthetic_iwildcam(
            seed=0, num_train_domains=8, num_val_domains=2, num_test_domains=2,
            num_classes=12, mean_samples_per_domain=40, image_size=8,
        )
        # Global counts long-tailed: head class much bigger than tail class.
        total = sum(
            (d.class_counts(12) for d in suite.datasets),
            start=np.zeros(12, dtype=np.int64),
        )
        assert total[0] > 3 * max(total[-1], 1)
        # At least one camera misses at least one species.
        assert any(
            np.any(d.class_counts(12) == 0) for d in suite.datasets
        )

    def test_camera_styles_differ(self):
        suite = synthetic_iwildcam(
            seed=0, num_train_domains=4, num_val_domains=1, num_test_domains=1,
            num_classes=8, mean_samples_per_domain=40, image_size=8,
        )
        means = [d.images.mean() for d in suite.datasets if len(d)]
        assert np.std(means) > 0.01

    def test_rejects_empty_split(self):
        with pytest.raises(ValueError):
            synthetic_iwildcam(num_val_domains=0)


class TestDomainSweepSuite:
    def test_domain_count_is_a_knob(self):
        for n in (2, 5, 9):
            suite = synthetic_domain_sweep(
                seed=0, num_domains=n, num_classes=4,
                samples_per_class=3, image_size=8,
            )
            assert suite.num_domains == n
            assert len(suite.datasets) == n
            assert suite.train_domains == list(range(n))
            for dataset in suite.datasets:
                assert len(dataset) == 4 * 3

    def test_classes_balanced_per_domain(self):
        suite = synthetic_domain_sweep(
            seed=0, num_domains=3, num_classes=5,
            samples_per_class=4, image_size=8,
        )
        for dataset in suite.datasets:
            np.testing.assert_array_equal(dataset.class_counts(5), [4] * 5)

    def test_domains_have_distinct_statistics(self):
        suite = synthetic_domain_sweep(
            seed=0, num_domains=4, num_classes=4,
            samples_per_class=8, image_size=8,
        )
        means = [d.images.mean(axis=(0, 2, 3)) for d in suite.datasets]
        for i in range(4):
            for j in range(i + 1, 4):
                assert np.linalg.norm(means[i] - means[j]) > 0.05

    def test_reproducible(self):
        a = synthetic_domain_sweep(seed=3, num_domains=3, samples_per_class=2,
                                   image_size=8)
        b = synthetic_domain_sweep(seed=3, num_domains=3, samples_per_class=2,
                                   image_size=8)
        np.testing.assert_array_equal(a.datasets[0].images, b.datasets[0].images)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_domain_sweep(num_domains=1)


class TestSkewSuite:
    def test_label_skew_concentrates_class_histograms(self):
        """Larger label_skew -> peakier per-domain class histograms (the
        regime where fused per-class targets must be assembled across
        clients that each see only a class subset)."""
        def mean_top_share(label_skew):
            suite = synthetic_skew(
                seed=0, num_domains=4, num_classes=8,
                samples_per_class=10, image_size=8, label_skew=label_skew,
            )
            shares = []
            for dataset in suite.datasets:
                counts = dataset.class_counts(8)
                shares.append(counts.max() / counts.sum())
            return float(np.mean(shares))

        assert mean_top_share(20.0) > mean_top_share(0.05)

    def test_total_samples_conserved_per_domain(self):
        suite = synthetic_skew(
            seed=0, num_domains=3, num_classes=6,
            samples_per_class=5, image_size=8, label_skew=3.0,
        )
        for dataset in suite.datasets:
            assert len(dataset) == 6 * 5

    def test_reproducible(self):
        a = synthetic_skew(seed=7, num_domains=3, samples_per_class=2,
                           image_size=8)
        b = synthetic_skew(seed=7, num_domains=3, samples_per_class=2,
                           image_size=8)
        np.testing.assert_array_equal(a.datasets[1].images, b.datasets[1].images)
        np.testing.assert_array_equal(a.datasets[1].labels, b.datasets[1].labels)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_skew(num_domains=1)
        with pytest.raises(ValueError):
            synthetic_skew(label_skew=0.0)
