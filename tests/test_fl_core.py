"""Tests for the federated substrate: clients, sampling, timing, history,
and the simulation loop itself."""

import numpy as np
import pytest

from repro.data import synthetic_pacs, partition_clients
from repro.fl import (
    Client,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    RoundRecord,
    RunHistory,
    Strategy,
    UniformClientSampler,
)
from repro.fl.timing import PhaseTimer
from repro.nn import build_mlp_model

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)


def make_clients(n_clients=6, heterogeneity=0.2, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, heterogeneity, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def make_model(seed=0):
    return build_mlp_model(
        SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(seed)
    )


class TestClient:
    def test_basic_properties(self):
        clients = make_clients()
        assert all(c.num_samples == len(c.dataset) for c in clients)
        domains = clients[0].domains_present()
        assert set(domains).issubset({0, 1})

    def test_scratch_is_per_client(self):
        clients = make_clients()
        clients[0].scratch["x"] = 1
        assert "x" not in clients[1].scratch


class TestSampler:
    def test_integer_count(self, rng):
        sampler = UniformClientSampler(3)
        chosen = sampler.sample(make_clients(8), rng)
        assert len(chosen) == 3
        assert len({c.client_id for c in chosen}) == 3

    def test_fractional_participation(self, rng):
        sampler = UniformClientSampler(0.5)
        chosen = sampler.sample(make_clients(8), rng)
        assert len(chosen) == 4

    def test_never_exceeds_population(self, rng):
        sampler = UniformClientSampler(100)
        chosen = sampler.sample(make_clients(4), rng)
        assert len(chosen) == 4

    def test_at_least_one(self, rng):
        sampler = UniformClientSampler(0.01)
        chosen = sampler.sample(make_clients(5), rng)
        assert len(chosen) == 1

    def test_skips_empty_clients(self, rng):
        clients = make_clients(4)
        empty = Client(99, clients[0].dataset.subset(np.array([], dtype=int)))
        sampler = UniformClientSampler(10)
        chosen = sampler.sample(clients + [empty], rng)
        assert all(c.client_id != 99 for c in chosen)

    def test_all_empty_raises(self, rng):
        clients = make_clients(2)
        empty = [
            Client(i, clients[0].dataset.subset(np.array([], dtype=int)))
            for i in range(2)
        ]
        with pytest.raises(ValueError):
            UniformClientSampler(1).sample(empty, rng)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            UniformClientSampler(0)
        with pytest.raises(ValueError):
            UniformClientSampler(1.5)


class TestTimer:
    def test_buckets_accumulate(self):
        timer = PhaseTimer()
        with timer.one_time():
            pass
        for _ in range(3):
            with timer.local_train():
                pass
        with timer.aggregation():
            pass
        report = timer.report()
        assert report.local_train_invocations == 3
        assert report.rounds == 1
        assert report.one_time_seconds >= 0.0
        assert report.local_train_seconds_mean >= 0.0

    def test_empty_report_means(self):
        report = PhaseTimer().report()
        assert report.local_train_seconds_mean == 0.0
        assert report.aggregation_seconds_mean == 0.0


class TestHistory:
    def test_series_and_final(self):
        history = RunHistory("x")
        for r in range(3):
            history.add(
                RoundRecord(r, 1.0 - 0.1 * r, [0], {"test": 0.5 + 0.1 * r})
            )
        series = history.accuracy_series("test")
        assert series == [(0, 0.5), (1, 0.6), (2, 0.7)]
        assert history.final_accuracy("test") == 0.7
        assert history.loss_series()[0] == (0, 1.0)

    def test_missing_eval_raises(self):
        history = RunHistory("x")
        history.add(RoundRecord(0, 1.0, [0]))
        with pytest.raises(KeyError):
            history.final_accuracy("nope")


class TestFederatedServer:
    def test_runs_and_reports(self):
        clients = make_clients()
        server = FederatedServer(
            strategy=Strategy(LocalTrainingConfig(batch_size=8)),
            clients=clients,
            model=make_model(),
            eval_sets={"test": SUITE.datasets[2]},
            config=FederatedConfig(num_rounds=3, clients_per_round=2, seed=0),
        )
        result = server.run()
        assert len(result.history.records) == 3
        assert "test" in result.final_accuracy
        assert result.timing.rounds == 3
        assert result.timing.local_train_invocations == 6

    def test_deterministic_under_seed(self):
        def run_once():
            server = FederatedServer(
                strategy=Strategy(LocalTrainingConfig(batch_size=8)),
                clients=make_clients(seed=1),
                model=make_model(seed=2),
                eval_sets={"test": SUITE.datasets[2]},
                config=FederatedConfig(num_rounds=2, clients_per_round=2, seed=5),
            )
            return server.run()

        a, b = run_once(), run_once()
        for key in a.final_state:
            np.testing.assert_array_equal(a.final_state[key], b.final_state[key])
        assert a.final_accuracy == b.final_accuracy

    def test_training_improves_over_initialization(self):
        clients = make_clients(heterogeneity=1.0)
        model = make_model()
        from repro.fl.evaluation import evaluate_accuracy

        initial = evaluate_accuracy(model, SUITE.datasets[0])
        server = FederatedServer(
            strategy=Strategy(LocalTrainingConfig(batch_size=8, local_epochs=2)),
            clients=clients,
            model=model,
            eval_sets={"train_domain": SUITE.datasets[0]},
            config=FederatedConfig(num_rounds=8, clients_per_round=4, seed=0),
        )
        result = server.run()
        assert result.final_accuracy["train_domain"] > initial + 0.1

    def test_eval_every_controls_cadence(self):
        server = FederatedServer(
            strategy=Strategy(LocalTrainingConfig(batch_size=8)),
            clients=make_clients(),
            model=make_model(),
            eval_sets={"test": SUITE.datasets[2]},
            config=FederatedConfig(
                num_rounds=4, clients_per_round=2, eval_every=2, seed=0
            ),
        )
        result = server.run()
        evaluated = [r.round_index for r in result.history.records if r.eval_accuracy]
        assert evaluated == [1, 3]

    def test_rejects_empty_client_list(self):
        with pytest.raises(ValueError):
            FederatedServer(
                strategy=Strategy(),
                clients=[],
                model=make_model(),
                eval_sets={},
                config=FederatedConfig(),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(num_rounds=0)
        with pytest.raises(ValueError):
            FederatedConfig(eval_every=0)

    def test_config_rejects_non_positive_participation(self):
        for bad in (0, -1, 0.0, -0.5):
            with pytest.raises(ValueError):
                FederatedConfig(clients_per_round=bad)

    def test_config_rejects_fraction_above_one(self):
        with pytest.raises(ValueError):
            FederatedConfig(clients_per_round=1.5)
        with pytest.raises(ValueError):
            FederatedConfig(clients_per_round=2.0)

    def test_config_rejects_non_numeric_participation(self):
        with pytest.raises(TypeError):
            FederatedConfig(clients_per_round="3")
        with pytest.raises(TypeError):
            FederatedConfig(clients_per_round=True)

    def test_config_accepts_counts_and_fractions(self):
        assert FederatedConfig(clients_per_round=1).clients_per_round == 1
        assert FederatedConfig(clients_per_round=7).clients_per_round == 7
        assert FederatedConfig(clients_per_round=0.5).clients_per_round == 0.5
        assert FederatedConfig(clients_per_round=1.0).clients_per_round == 1.0

    def test_config_accepts_numpy_scalars(self):
        """Counts from numpy sweep grids are first-class citizens."""
        assert FederatedConfig(clients_per_round=np.int64(5)).clients_per_round == 5
        config = FederatedConfig(clients_per_round=np.float64(0.25))
        assert config.clients_per_round == 0.25
        with pytest.raises(ValueError):
            FederatedConfig(clients_per_round=np.int64(0))
        with pytest.raises(ValueError):
            FederatedConfig(clients_per_round=np.float64(1.5))

    def test_sampler_treats_numpy_float_as_fraction(self):
        sampler = UniformClientSampler(np.float32(0.5))
        assert sampler.round_size(8) == 4

    def test_full_participation_fraction_selects_everyone(self):
        """A float is always a fraction: 1.0 means all clients, not one."""
        sampler = UniformClientSampler(1.0)
        assert sampler.round_size(8) == 8

    def test_client_dropout_mid_training_is_tolerated(self):
        """A client whose data vanishes between rounds is simply skipped by
        the sampler (failure injection)."""
        clients = make_clients(4)
        server = FederatedServer(
            strategy=Strategy(LocalTrainingConfig(batch_size=8)),
            clients=clients,
            model=make_model(),
            eval_sets={},
            config=FederatedConfig(num_rounds=2, clients_per_round=4, seed=0),
        )
        # Empty one client's data after construction.
        clients[0].dataset = clients[0].dataset.subset(np.array([], dtype=int))
        result = server.run()
        for record in result.history.records:
            assert clients[0].client_id not in record.participants
