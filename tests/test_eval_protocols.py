"""Tests for evaluation protocols and the loss-landscape tooling."""

import numpy as np
import pytest

from repro.baselines import FedAvgStrategy
from repro.data import synthetic_iwildcam, synthetic_pacs
from repro.eval import (
    ExperimentSetting,
    client_minima_divergence,
    loss_landscape_slice,
    run_fixed_split_protocol,
    run_lodo_protocol,
    run_ltdo_protocol,
    run_split_experiment,
)
from repro.eval.landscape import LandscapeSlice
from repro.fl import LocalTrainingConfig
from repro.nn import build_mlp_model

SUITE = synthetic_pacs(seed=0, samples_per_class=6, image_size=8)
FAST = ExperimentSetting(
    num_clients=4, clients_per_round=2, heterogeneity=0.2,
    num_rounds=2, eval_every=2, seed=0, model_widths=(4, 8), embed_dim=16,
)


class TestSplitExperiment:
    def test_returns_both_accuracies(self):
        out = run_split_experiment(
            SUITE, {"train": [0, 1], "val": [2], "test": [3]},
            FedAvgStrategy(LocalTrainingConfig(batch_size=8)), FAST,
        )
        assert 0.0 <= out.val_accuracy <= 1.0
        assert 0.0 <= out.test_accuracy <= 1.0
        assert out.val_domains == ["cartoon"]
        assert out.test_domains == ["sketch"]

    def test_same_setting_same_clients_across_methods(self):
        """Two methods see the identical partition — the fairness guarantee
        behind every table."""
        from repro.eval.protocols import make_clients

        a = make_clients(SUITE, [0, 1], FAST, seed_label=(0, 1))
        b = make_clients(SUITE, [0, 1], FAST, seed_label=(0, 1))
        for ca, cb in zip(a, b):
            np.testing.assert_array_equal(ca.dataset.images, cb.dataset.images)


class TestProtocols:
    def test_lodo_covers_every_domain(self):
        outcomes = run_lodo_protocol(
            SUITE, lambda: FedAvgStrategy(LocalTrainingConfig(batch_size=8)), FAST
        )
        assert sorted(outcomes) == sorted(SUITE.domain_names)
        for name, outcome in outcomes.items():
            assert outcome.val_domains == [name]
            assert outcome.test_domains == [name]

    def test_ltdo_assigns_distinct_val_test(self):
        outcomes = run_ltdo_protocol(
            SUITE, lambda: FedAvgStrategy(LocalTrainingConfig(batch_size=8)), FAST
        )
        assert sorted(outcomes) == sorted(SUITE.domain_names)
        for name, outcome in outcomes.items():
            assert outcome.val_domains == [name]
            assert outcome.test_domains != outcome.val_domains

    def test_fixed_split_protocol_uses_suite_roles(self):
        wild = synthetic_iwildcam(
            seed=0, num_train_domains=4, num_val_domains=2, num_test_domains=2,
            num_classes=6, mean_samples_per_domain=20, image_size=8,
        )
        out = run_fixed_split_protocol(
            wild, FedAvgStrategy(LocalTrainingConfig(batch_size=8)), FAST
        )
        assert 0.0 <= out.test_accuracy <= 1.0

    def test_fixed_split_requires_roles(self):
        with pytest.raises(ValueError):
            run_fixed_split_protocol(SUITE, FedAvgStrategy(), FAST)


class TestLandscape:
    def test_slice_geometry(self, rng):
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng,
                                hidden_dim=8, embed_dim=8)
        state = model.state_dict()
        landscape = loss_landscape_slice(
            model, state, SUITE.datasets[0], rng, radius=0.3, grid_points=5
        )
        assert landscape.losses.shape == (5, 5)
        assert np.all(np.isfinite(landscape.losses))
        # Weights must be restored afterwards.
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, state[key])

    def test_center_loss_is_grid_center(self, rng):
        losses = np.arange(25, dtype=float).reshape(5, 5)
        s = LandscapeSlice(np.linspace(-1, 1, 5), np.linspace(-1, 1, 5), losses)
        assert s.center_loss() == losses[2, 2]

    def test_minimum_position(self):
        losses = np.full((3, 3), 5.0)
        losses[0, 2] = 0.1
        s = LandscapeSlice(np.array([-1.0, 0.0, 1.0]), np.array([-1.0, 0.0, 1.0]), losses)
        assert s.minimum_position() == (-1.0, 1.0)

    def test_divergence_of_identical_minima_is_zero(self):
        losses = np.full((3, 3), 1.0)
        losses[1, 1] = 0.0
        s = LandscapeSlice(np.array([-1.0, 0.0, 1.0]), np.array([-1.0, 0.0, 1.0]), losses)
        assert client_minima_divergence([s, s]) == 0.0

    def test_grid_validation(self, rng):
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        with pytest.raises(ValueError):
            loss_landscape_slice(
                model, model.state_dict(), SUITE.datasets[0], rng, grid_points=4
            )

    def test_divergence_needs_two(self):
        s = LandscapeSlice(np.zeros(3), np.zeros(3), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            client_minima_divergence([s])


class TestUtils:
    def test_seed_tree_independence(self):
        from repro.utils.rng import SeedTree

        tree = SeedTree(7)
        a = tree.generator("x").random(5)
        b = tree.generator("y").random(5)
        assert not np.allclose(a, b)
        again = SeedTree(7).generator("x").random(5)
        np.testing.assert_array_equal(a, again)

    def test_format_table_alignment(self):
        from repro.utils.tables import format_table, format_percent

        table = format_table(["a", "bb"], [["x", 1.0], ["yyyy", 2.5]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "yyyy" in table
        assert format_percent(0.7363) == "73.63%"

    def test_stable_hash_is_stable(self):
        from repro.utils.rng import stable_hash

        assert stable_hash("a", 1) == stable_hash("a", 1)
        assert stable_hash("a", 1) != stable_hash("a", 2)


class TestSurfaceDivergence:
    def test_identical_surfaces_zero(self):
        from repro.eval.landscape import surface_divergence

        losses = np.arange(9, dtype=float).reshape(3, 3)
        s = LandscapeSlice(np.zeros(3), np.zeros(3), losses)
        assert surface_divergence([s, s]) == 0.0

    def test_offset_surfaces_still_zero(self):
        """A constant loss offset between clients is not misalignment —
        surfaces are centred on their own origin before comparison."""
        from repro.eval.landscape import surface_divergence

        losses = np.arange(9, dtype=float).reshape(3, 3)
        a = LandscapeSlice(np.zeros(3), np.zeros(3), losses)
        b = LandscapeSlice(np.zeros(3), np.zeros(3), losses + 5.0)
        assert surface_divergence([a, b]) < 1e-12

    def test_differently_bent_surfaces_positive(self):
        from repro.eval.landscape import surface_divergence

        a = LandscapeSlice(np.zeros(3), np.zeros(3),
                           np.arange(9, dtype=float).reshape(3, 3))
        b = LandscapeSlice(np.zeros(3), np.zeros(3),
                           np.arange(9, dtype=float).reshape(3, 3)[::-1].copy())
        assert surface_divergence([a, b]) > 0.0

    def test_needs_two(self):
        from repro.eval.landscape import surface_divergence

        s = LandscapeSlice(np.zeros(3), np.zeros(3), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            surface_divergence([s])
