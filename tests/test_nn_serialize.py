"""Tests for state-dict arithmetic (the FL wire format), incl. properties."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.serialize import (
    average_states,
    decode_payload,
    encode_payload,
    flatten_state,
    state_add,
    state_allclose,
    state_scale,
    state_sub,
    unflatten_state,
    zeros_like_state,
)


def make_state(rng, offset=0.0):
    return {
        "a.weight": rng.normal(size=(3, 2)) + offset,
        "a.bias": rng.normal(size=(2,)) + offset,
        "b.weight": rng.normal(size=(4,)) + offset,
    }


class TestAverageStates:
    def test_uniform_average(self, rng):
        s1, s2 = make_state(rng), make_state(rng)
        avg = average_states([s1, s2])
        for key in s1:
            np.testing.assert_allclose(avg[key], (s1[key] + s2[key]) / 2)

    def test_weighted_by_dataset_size(self, rng):
        s1, s2 = make_state(rng), make_state(rng)
        avg = average_states([s1, s2], weights=[30, 10])
        for key in s1:
            np.testing.assert_allclose(avg[key], 0.75 * s1[key] + 0.25 * s2[key])

    def test_single_state_identity(self, rng):
        s = make_state(rng)
        assert state_allclose(average_states([s]), s)

    def test_rejects_key_mismatch(self, rng):
        s1 = make_state(rng)
        s2 = make_state(rng)
        s2.pop("a.bias")
        with pytest.raises(KeyError):
            average_states([s1, s2])

    def test_rejects_zero_total_weight(self, rng):
        with pytest.raises(ValueError):
            average_states([make_state(rng)], weights=[0.0])

    def test_rejects_negative_weight(self, rng):
        with pytest.raises(ValueError):
            average_states([make_state(rng), make_state(rng)], weights=[1.0, -1.0])

    def test_average_of_identical_states_is_identity(self, rng):
        s = make_state(rng)
        avg = average_states([s, s, s], weights=[5, 1, 2])
        assert state_allclose(avg, s)


class TestStateArithmetic:
    def test_add_sub_round_trip(self, rng):
        s1, s2 = make_state(rng), make_state(rng)
        delta = state_sub(s1, s2)
        back = state_add(s2, delta)
        assert state_allclose(back, s1)

    def test_scale(self, rng):
        s = make_state(rng)
        doubled = state_scale(s, 2.0)
        for key in s:
            np.testing.assert_allclose(doubled[key], 2 * s[key])

    def test_zeros_like(self, rng):
        zeros = zeros_like_state(make_state(rng))
        assert all(np.all(v == 0) for v in zeros.values())


class TestFlatten:
    def test_round_trip(self, rng):
        s = make_state(rng)
        vector = flatten_state(s)
        assert vector.shape == (3 * 2 + 2 + 4,)
        restored = unflatten_state(vector, s)
        assert state_allclose(restored, s)

    def test_rejects_wrong_length(self, rng):
        s = make_state(rng)
        with pytest.raises(ValueError):
            unflatten_state(np.zeros(3), s)
        with pytest.raises(ValueError):
            unflatten_state(np.zeros(1000), s)

    def test_key_order_is_stable(self, rng):
        s = make_state(rng)
        reordered = {k: s[k] for k in reversed(list(s))}
        np.testing.assert_array_equal(flatten_state(s), flatten_state(reordered))


@st.composite
def state_lists(draw):
    """Random lists of compatible state dicts plus positive weights."""
    n_states = draw(st.integers(min_value=1, max_value=4))
    shapes = [(2, 3), (4,)]
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    states = [
        {f"k{i}": rng.normal(size=shape) for i, shape in enumerate(shapes)}
        for _ in range(n_states)
    ]
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=n_states,
            max_size=n_states,
        )
    )
    return states, weights


class TestAveragingProperties:
    @given(state_lists())
    @settings(max_examples=30, deadline=None)
    def test_average_within_componentwise_bounds(self, states_weights):
        """A convex combination never escapes the componentwise min/max."""
        states, weights = states_weights
        avg = average_states(states, weights)
        for key in states[0]:
            stack = np.stack([s[key] for s in states])
            assert np.all(avg[key] <= stack.max(axis=0) + 1e-9)
            assert np.all(avg[key] >= stack.min(axis=0) - 1e-9)

    @given(state_lists(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_weight_scale_invariance(self, states_weights, factor):
        """Scaling all weights by a constant leaves the average unchanged."""
        states, weights = states_weights
        base = average_states(states, weights)
        scaled = average_states(states, [w * factor for w in weights])
        assert state_allclose(base, scaled, atol=1e-8)

    @given(state_lists())
    @settings(max_examples=30, deadline=None)
    def test_flatten_round_trip_property(self, states_weights):
        states, _ = states_weights
        for state in states:
            assert state_allclose(
                unflatten_state(flatten_state(state), state), state
            )


class TestAverageStatesInPlace:
    """The vectorized accumulation must be bit-identical to a scalar
    reimplementation of the canonical reduction (compensated
    double-double TwoSum folds, one divide at the end)."""

    @staticmethod
    def naive(states, weights=None):
        if weights is None:
            weights = [1.0] * len(states)

        def two_sum(a, b):
            s = a + b
            bb = s - a
            return s, (a - (s - bb)) + (b - bb)

        w_hi, w_lo = 0.0, 0.0
        for w in weights:
            w_hi, err = two_sum(w_hi, float(w))
            w_lo += err
        total = w_hi + w_lo
        out = {}
        for key in sorted(states[0]):
            shape = np.shape(states[0][key])
            result = np.empty(shape, dtype=np.float64)
            for idx in np.ndindex(shape):
                hi, lo = 0.0, 0.0
                for w, state in zip(weights, states):
                    hi, err = two_sum(
                        hi, float(state[key][idx]) * float(w)
                    )
                    lo += err
                result[idx] = (hi + lo) / total
            out[key] = result
        return out

    def test_bit_identical_to_naive_sum(self, rng):
        states = [make_state(rng, offset=i * 0.3) for i in range(5)]
        weights = [3.0, 0.0, 1.5, 7.0, 2.0]
        fast = average_states(states, weights)
        for key, value in self.naive(states, weights).items():
            np.testing.assert_array_equal(fast[key], value)

    def test_bit_identical_with_uniform_weights(self, rng):
        states = [make_state(rng) for _ in range(3)]
        fast = average_states(states)
        for key, value in self.naive(states).items():
            np.testing.assert_array_equal(fast[key], value)

    def test_accepts_readonly_inputs_and_returns_writable(self, rng):
        states = [make_state(rng) for _ in range(2)]
        for state in states:
            for value in state.values():
                value.setflags(write=False)
        avg = average_states(states)
        assert all(value.flags.writeable for value in avg.values())

    def test_does_not_mutate_inputs(self, rng):
        states = [make_state(rng) for _ in range(3)]
        originals = [{k: v.copy() for k, v in s.items()} for s in states]
        average_states(states, weights=[1.0, 2.0, 3.0])
        for state, original in zip(states, originals):
            for key in state:
                np.testing.assert_array_equal(state[key], original[key])


class TestPayloadCodec:
    """encode/decode round trips, incl. the protocol-5 StateDict fast path."""

    def test_state_dict_takes_out_of_band_fast_path(self, rng):
        state = make_state(rng)
        blob = encode_payload(state)
        assert blob[:4] == b"RPB5"
        decoded = decode_payload(blob)
        assert sorted(decoded) == sorted(state)
        for key in state:
            np.testing.assert_array_equal(decoded[key], state[key])

    def test_fast_path_decodes_zero_copy_readonly(self, rng):
        """Documented contract: fast-path arrays are read-only views into
        the blob; consumers copy before mutating."""
        decoded = decode_payload(encode_payload(make_state(rng)))
        assert all(not value.flags.writeable for value in decoded.values())

    def test_fast_path_handles_noncontiguous_arrays(self, rng):
        state = {"t": np.asarray(rng.normal(size=(6, 4))).T}  # F-contiguous
        decoded = decode_payload(encode_payload(state))
        np.testing.assert_array_equal(decoded["t"], state["t"])

    def test_non_state_dicts_use_the_plain_pickle_path(self):
        for payload in ([1, 2, 3], {"mixed": 1}, {}, "text"):
            blob = encode_payload(payload)
            assert blob[:4] != b"RPB5"
            assert decode_payload(blob) == payload
        # Non-string keys disqualify a dict from the StateDict fast path.
        int_keyed = {1: np.zeros(2)}
        blob = encode_payload(int_keyed)
        assert blob[:4] != b"RPB5"
        np.testing.assert_array_equal(decode_payload(blob)[1], int_keyed[1])

    def test_legacy_plain_pickle_blobs_still_decode(self, rng):
        state = make_state(rng)
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        decoded = decode_payload(blob)
        for key in state:
            np.testing.assert_array_equal(decoded[key], state[key])

    def test_unserializable_payload_names_the_offender(self):
        with pytest.raises(TypeError, match="generator"):
            encode_payload((x for x in range(3)))


class TestBareArrayFastPath:
    """Satellite: bare ndarrays and ``__wire_oob__`` opt-ins take the
    protocol-5 out-of-band path too (FPL's prototype arrays ride inside a
    ``__wire_oob__`` ClientUpdate and previously paid in-band pickling)."""

    def test_bare_array_takes_the_fast_path(self, rng):
        array = rng.normal(size=(32, 8))
        blob = encode_payload(array)
        assert blob[:4] == b"RPB5"
        np.testing.assert_array_equal(decode_payload(blob), array)

    def test_bare_array_decodes_zero_copy(self, rng):
        """Zero-copy contract: the decoded array is a read-only view
        backed by the received blob, not a fresh allocation."""
        array = rng.normal(size=(16, 4))
        blob = encode_payload(array)
        decoded = decode_payload(blob)
        assert not decoded.flags.writeable
        assert np.shares_memory(
            decoded, np.frombuffer(blob, dtype=np.uint8)
        )

    def test_wire_oob_opt_in_carries_nested_arrays_out_of_band(self, rng):
        """An opted-in record (here: the executor's ClientUpdate) puts every
        nested array — including non-state-dict payload entries like FPL's
        integer-keyed prototypes — out of band, decoded zero-copy."""
        from repro.fl.executor import ClientUpdate

        update = ClientUpdate(
            client_id=3,
            num_samples=10,
            state={"w": rng.normal(size=(8, 2))},
            loss=0.5,
            payload={"prototypes": {0: rng.normal(size=4), 1: rng.normal(size=4)}},
        )
        blob = encode_payload(update)
        assert blob[:4] == b"RPB5"
        decoded = decode_payload(blob)
        np.testing.assert_array_equal(decoded.state["w"], update.state["w"])
        for label, proto in update.payload["prototypes"].items():
            clone = decoded.payload["prototypes"][label]
            np.testing.assert_array_equal(clone, proto)
            assert not clone.flags.writeable  # out-of-band view, not a copy

    def test_non_contiguous_bare_array_round_trips(self, rng):
        array = np.asarray(rng.normal(size=(6, 4))).T  # F-contiguous
        np.testing.assert_array_equal(decode_payload(encode_payload(array)), array)
