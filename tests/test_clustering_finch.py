"""Tests for FINCH clustering, including partition-validity properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    cosine_similarity_matrix,
    finch,
    first_neighbours,
)


def gaussian_blobs(rng, centers, per_blob=10, scale=0.05):
    """Well-separated blobs: the canonical easy clustering case."""
    points, truth = [], []
    for index, center in enumerate(centers):
        points.append(center + scale * rng.normal(size=(per_blob, len(center))))
        truth.extend([index] * per_blob)
    return np.concatenate(points), np.array(truth)


class TestCosineSimilarity:
    def test_self_similarity_is_one(self, rng):
        x = rng.normal(size=(5, 3))
        sim = cosine_similarity_matrix(x)
        np.testing.assert_allclose(np.diag(sim), 1.0)

    def test_zero_vectors_orthogonal_to_all(self, rng):
        x = rng.normal(size=(4, 3))
        x[1] = 0.0
        sim = cosine_similarity_matrix(x)
        assert np.all(sim[1] == 0) and np.all(sim[:, 1] == 0)

    def test_opposite_vectors(self):
        x = np.array([[1.0, 0.0], [-1.0, 0.0]])
        sim = cosine_similarity_matrix(x)
        np.testing.assert_allclose(sim[0, 1], -1.0)


class TestFirstNeighbours:
    def test_finds_nearest(self):
        x = np.array([[1.0, 0.0], [0.9, 0.1], [-1.0, 0.0], [-0.9, -0.1]])
        nn = first_neighbours(x, metric="cosine")
        assert nn[0] == 1 and nn[1] == 0
        assert nn[2] == 3 and nn[3] == 2

    def test_euclidean_metric(self):
        x = np.array([[0.0], [1.0], [10.0]])
        nn = first_neighbours(x, metric="euclidean")
        assert nn[0] == 1 and nn[1] == 0 and nn[2] == 1

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            first_neighbours(np.zeros((1, 3)))

    def test_rejects_unknown_metric(self, rng):
        with pytest.raises(ValueError):
            first_neighbours(rng.normal(size=(3, 2)), metric="manhattan")


class TestFinch:
    def test_recovers_separated_blobs(self, rng):
        centers = [np.array([10.0, 0.0]), np.array([0.0, 10.0]),
                   np.array([-10.0, -10.0])]
        points, truth = gaussian_blobs(rng, centers)
        result = finch(points, metric="euclidean")
        labels = result.last
        # Every true blob maps to exactly one predicted cluster.
        for blob in range(3):
            blob_labels = labels[truth == blob]
            assert len(np.unique(blob_labels)) == 1
        assert result.num_clusters[-1] == 3

    def test_hierarchy_strictly_coarsens(self, rng):
        points = rng.normal(size=(40, 6))
        result = finch(points)
        for a, b in zip(result.num_clusters, result.num_clusters[1:]):
            assert b < a

    def test_partition_valid_cover(self, rng):
        points = rng.normal(size=(25, 4))
        result = finch(points)
        for labels, count in zip(result.partitions, result.num_clusters):
            assert labels.shape == (25,)
            assert set(np.unique(labels)) == set(range(count))

    def test_coarser_levels_nest(self, rng):
        """If two points share a cluster at level k they share one at k+1."""
        points = rng.normal(size=(30, 5))
        result = finch(points)
        for fine, coarse in zip(result.partitions, result.partitions[1:]):
            for cluster in np.unique(fine):
                members = coarse[fine == cluster]
                assert len(np.unique(members)) == 1

    def test_single_point(self):
        result = finch(np.zeros((1, 4)))
        assert result.num_clusters == [1]
        np.testing.assert_array_equal(result.last, [0])

    def test_two_points(self, rng):
        result = finch(rng.normal(size=(2, 3)))
        assert result.num_clusters[-1] == 1
        assert result.levels == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            finch(np.zeros((0, 3)))

    def test_never_returns_trivial_partition_after_level_one(self, rng):
        """Beyond the first level the all-in-one partition is never kept."""
        points = rng.normal(size=(50, 3))
        result = finch(points)
        for count in result.num_clusters[1:]:
            assert count >= 2

    def test_clusters_at(self, rng):
        points = rng.normal(size=(12, 3))
        result = finch(points)
        clusters = result.clusters_at(0)
        recovered = np.concatenate(clusters)
        assert sorted(recovered) == list(range(12))

    def test_min_clusters_stops_early(self, rng):
        centers = [np.array([float(i * 5), 0.0]) for i in range(8)]
        points, _ = gaussian_blobs(rng, centers, per_blob=5)
        full = finch(points, metric="euclidean", min_clusters=1)
        limited = finch(points, metric="euclidean", min_clusters=full.num_clusters[0])
        assert limited.levels == 1

    @given(seed=st.integers(min_value=0, max_value=500),
           n=st.integers(min_value=2, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_property_partitions_always_valid(self, seed, n):
        """Arbitrary data: labels always form a valid, coarsening partition."""
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, 4))
        result = finch(points)
        assert result.levels >= 1
        for labels, count in zip(result.partitions, result.num_clusters):
            assert labels.min() == 0 and labels.max() == count - 1
        for fine, coarse in zip(result.partitions, result.partitions[1:]):
            for cluster in np.unique(fine):
                assert len(np.unique(coarse[fine == cluster])) == 1

    def test_style_clusters_group_same_domain(self, rng):
        """End-to-end with the style stack: per-sample style vectors from two
        very different domains cluster by domain."""
        from repro.data import DomainStyle, render_images
        from repro.style import InvertibleEncoder, per_sample_style_stats

        content = rng.normal(size=(20, 8, 8))
        style_a = DomainStyle("a", (1.0,) * 3, (2.0, 0.5, 1.0), (0.5, -0.5, 0.0),
                              noise_std=0.01)
        style_b = DomainStyle("b", (1.0,) * 3, (0.4, 1.8, 0.9), (-0.6, 0.6, 0.3),
                              noise_std=0.01)
        imgs_a = render_images(content[:10], style_a, rng)
        imgs_b = render_images(content[10:], style_b, rng)
        encoder = InvertibleEncoder(levels=1, seed=7)
        mu, sigma = per_sample_style_stats(
            encoder.encode(np.concatenate([imgs_a, imgs_b]))
        )
        vectors = np.concatenate([mu, sigma], axis=1)
        result = finch(vectors)
        labels = result.last
        # Majority label purity within each domain.
        purity_a = np.mean(labels[:10] == np.bincount(labels[:10]).argmax())
        purity_b = np.mean(labels[10:] == np.bincount(labels[10:]).argmax())
        assert purity_a > 0.8 and purity_b > 0.8
