"""Tests for optimizers, the module system, and model builders."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def quadratic_params(rng):
    """A parameter whose optimum under f(w) = ||w - target||^2 is `target`."""
    target = rng.normal(size=(6,))
    param = Parameter(np.zeros(6), name="w")
    return param, target


class TestSGD:
    def test_converges_on_quadratic(self, rng):
        param, target = quadratic_params(rng)
        optimizer = nn.SGD([param], lr=0.1)
        for _ in range(200):
            param.zero_grad()
            param.grad += 2 * (param.data - target)
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-6)

    def test_momentum_accelerates(self, rng):
        results = {}
        for momentum in (0.0, 0.9):
            param, target = quadratic_params(np.random.default_rng(7))
            optimizer = nn.SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                param.zero_grad()
                param.grad += 2 * (param.data - target)
                optimizer.step()
            results[momentum] = np.linalg.norm(param.data - target)
        assert results[0.9] < results[0.0]

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.ones(4) * 10.0)
        optimizer = nn.SGD([param], lr=0.1, weight_decay=0.5)
        for _ in range(100):
            param.zero_grad()  # zero loss gradient: only decay acts
            optimizer.step()
        assert np.all(np.abs(param.data) < 1.0)

    def test_rejects_bad_hyperparameters(self):
        param = Parameter(np.zeros(2))
        with pytest.raises(ValueError):
            nn.SGD([param], lr=0.0)
        with pytest.raises(ValueError):
            nn.SGD([param], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self, rng):
        param, target = quadratic_params(rng)
        optimizer = nn.Adam([param], lr=0.05)
        for _ in range(500):
            param.zero_grad()
            param.grad += 2 * (param.data - target)
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=1e-4)


class TestModuleSystem:
    def test_named_parameters_depth_first(self, rng):
        model = nn.Sequential(nn.Linear(3, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))
        names = [name for name, _ in model.named_parameters()]
        assert names == [
            "layers.0.weight",
            "layers.0.bias",
            "layers.2.weight",
            "layers.2.bias",
        ]

    def test_state_dict_round_trip(self, rng):
        model = nn.build_mlp_model((3, 4, 4), num_classes=5, rng=rng)
        state = model.state_dict()
        clone = nn.build_mlp_model((3, 4, 4), num_classes=5, rng=np.random.default_rng(99))
        clone.load_state_dict(state)
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(model.forward(x), clone.forward(x))

    def test_state_dict_is_a_copy(self, rng):
        model = nn.build_mlp_model((3, 4, 4), num_classes=2, rng=rng)
        state = model.state_dict()
        first_key = next(iter(state))
        state[first_key] += 100.0
        assert not np.allclose(model.state_dict()[first_key], state[first_key])

    def test_load_rejects_missing_keys(self, rng):
        model = nn.build_mlp_model((3, 4, 4), num_classes=2, rng=rng)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError, match="missing"):
            model.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self, rng):
        model = nn.build_mlp_model((3, 4, 4), num_classes=2, rng=rng)
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        model = nn.Sequential(nn.Dropout(0.5, rng=rng), nn.Linear(4, 2, rng=rng))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_num_parameters(self, rng):
        layer = nn.Linear(10, 5, rng=rng)
        assert layer.num_parameters() == 10 * 5 + 5


class TestModels:
    def test_cnn_shapes(self, rng):
        model = nn.build_cnn_model((3, 16, 16), num_classes=7, rng=rng)
        x = rng.normal(size=(4, 3, 16, 16))
        z = model.forward_features(x)
        assert z.shape == (4, model.embed_dim)
        logits = model.forward_logits(z)
        assert logits.shape == (4, 7)

    def test_cnn_rejects_indivisible_sides(self, rng):
        with pytest.raises(ValueError):
            nn.build_cnn_model((3, 15, 16), num_classes=2, rng=rng)

    def test_backward_requires_some_gradient(self, rng):
        model = nn.build_mlp_model((3, 4, 4), num_classes=3, rng=rng)
        model.forward(rng.normal(size=(2, 3, 4, 4)))
        with pytest.raises(ValueError):
            model.backward()

    def test_split_gradient_entry_points_agree(self, rng):
        """Feeding the CE gradient via grad_logits equals the chain rule by hand."""
        model = nn.build_mlp_model((3, 4, 4), num_classes=3, rng=rng)
        x = rng.normal(size=(2, 3, 4, 4))
        labels = np.array([0, 2])
        criterion = nn.CrossEntropyLoss()

        model.zero_grad()
        logits = model.forward(x)
        criterion.forward(logits, labels)
        model.backward(grad_logits=criterion.backward())
        grads_via_model = {
            name: p.grad.copy() for name, p in model.named_parameters()
        }

        # Same computation, manual chaining.
        model.zero_grad()
        z = model.forward_features(x)
        logits = model.forward_logits(z)
        criterion.forward(logits, labels)
        grad_z = model.classifier.backward(criterion.backward())
        model.features.backward(grad_z)
        for name, param in model.named_parameters():
            np.testing.assert_allclose(param.grad, grads_via_model[name])

    def test_embedding_gradient_entry_point(self, rng):
        """grad_embedding alone reaches feature weights but not the classifier."""
        model = nn.build_mlp_model((3, 4, 4), num_classes=3, rng=rng)
        x = rng.normal(size=(2, 3, 4, 4))
        model.zero_grad()
        z = model.forward_features(x)
        model.forward_logits(z)
        model.backward(grad_embedding=np.ones_like(z))
        feature_grads = [p.grad for _, p in model.features.named_parameters()]
        assert any(np.any(g != 0) for g in feature_grads)
        classifier_grads = [p.grad for _, p in model.classifier.named_parameters()]
        assert all(np.all(g == 0) for g in classifier_grads)

    def test_predict_logits_batches_consistently(self, rng):
        model = nn.build_cnn_model((3, 16, 16), num_classes=4, rng=rng)
        x = rng.normal(size=(10, 3, 16, 16))
        full = model.predict_logits(x, batch_size=3)
        single = model.predict_logits(x, batch_size=100)
        np.testing.assert_allclose(full, single)

    def test_training_reduces_loss(self, rng):
        """End-to-end sanity: a few SGD steps on a separable toy problem."""
        model = nn.build_mlp_model((1, 4, 4), num_classes=2, rng=rng, hidden_dim=16)
        x = rng.normal(size=(64, 1, 4, 4))
        labels = (x.mean(axis=(1, 2, 3)) > 0).astype(int)
        criterion = nn.CrossEntropyLoss()
        optimizer = nn.SGD(model.parameters(), lr=0.5)
        first_loss = None
        for _ in range(60):
            model.zero_grad()
            logits = model.forward(x)
            loss = criterion.forward(logits, labels)
            if first_loss is None:
                first_loss = loss
            model.backward(grad_logits=criterion.backward())
            optimizer.step()
        assert loss < first_loss * 0.5
