"""Tests for the five FedDG baselines (+ FedAvg)."""

import numpy as np
import pytest

from repro.baselines import (
    CCSTStrategy,
    FedAlignStrategy,
    FedAvgStrategy,
    FedCCRLStrategy,
    FedDGGAStrategy,
    FedGMAStrategy,
    FedSRStrategy,
    FPLStrategy,
)
from repro.data import synthetic_pacs, partition_clients
from repro.fl import (
    Client,
    ClientUpdate,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
)
from repro.nn import build_mlp_model
from repro.nn.serialize import state_allclose, state_sub

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
FAST = LocalTrainingConfig(batch_size=8)


def make_clients(n_clients=6, heterogeneity=0.2, seed=0):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, heterogeneity, np.random.default_rng(seed)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


def make_model(seed=0):
    return build_mlp_model(
        SUITE.image_shape, SUITE.num_classes, rng=np.random.default_rng(seed)
    )


def run_strategy(strategy, rounds=3, n_clients=6):
    server = FederatedServer(
        strategy=strategy,
        clients=make_clients(n_clients),
        model=make_model(),
        eval_sets={"test": SUITE.datasets[2]},
        config=FederatedConfig(num_rounds=rounds, clients_per_round=3, seed=0),
    )
    return server.run()


ALL_STRATEGIES = [
    lambda: FedAvgStrategy(FAST),
    lambda: FedSRStrategy(local_config=FAST),
    lambda: FedGMAStrategy(local_config=FAST),
    lambda: FPLStrategy(local_config=FAST),
    lambda: FedDGGAStrategy(local_config=FAST),
    lambda: CCSTStrategy(local_config=FAST),
    lambda: FedAlignStrategy(local_config=FAST),
    lambda: FedCCRLStrategy(local_config=FAST),
]
STRATEGY_IDS = [
    "fedavg", "fedsr", "fedgma", "fpl", "feddg_ga", "ccst",
    "fedalign", "fedccrl",
]


class TestAllStrategiesRun:
    @pytest.mark.parametrize("factory", ALL_STRATEGIES, ids=STRATEGY_IDS)
    def test_completes_and_stays_finite(self, factory):
        result = run_strategy(factory())
        assert len(result.history.records) == 3
        for value in result.final_state.values():
            assert np.all(np.isfinite(value))

    @pytest.mark.parametrize("factory", ALL_STRATEGIES, ids=STRATEGY_IDS)
    def test_deterministic(self, factory):
        a = run_strategy(factory(), rounds=2)
        b = run_strategy(factory(), rounds=2)
        assert state_allclose(a.final_state, b.final_state)


class TestFedSR:
    def test_regularizers_shrink_embeddings(self):
        """Stronger FedSR regularization yields smaller embedding norms —
        the mechanism behind its collapse in the paper's tables."""
        def mean_embedding_norm(l2_weight):
            strategy = FedSRStrategy(
                l2_weight=l2_weight, cmi_weight=0.0, local_config=FAST
            )
            result = run_strategy(strategy, rounds=4)
            model = make_model()
            model.load_state_dict(result.final_state)
            z = model.forward_features(SUITE.datasets[0].images[:32])
            return float(np.linalg.norm(z, axis=1).mean())

        assert mean_embedding_norm(2.0) < mean_embedding_norm(0.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            FedSRStrategy(l2_weight=-1.0)


class TestFedGMA:
    def test_full_agreement_equals_fedavg(self, rng):
        """When every client sends the same update, masking changes nothing."""
        strategy = FedGMAStrategy(agreement_threshold=0.8, local_config=FAST)
        model = make_model()
        global_state = model.state_dict()
        shared_update = {
            key: value + 0.5 for key, value in global_state.items()
        }
        clients = make_clients(3)
        updates = [
            ClientUpdate.from_client(
                c, {k: v.copy() for k, v in shared_update.items()}, 0.0
            )
            for c in clients
        ]
        merged = strategy.aggregate(global_state, updates, 0)
        assert state_allclose(merged, shared_update)

    def test_disagreement_attenuates_update(self, rng):
        """Two clients pushing in opposite directions: masked update is
        (much) smaller than either delta."""
        strategy = FedGMAStrategy(agreement_threshold=0.8, local_config=FAST)
        model = make_model()
        global_state = model.state_dict()
        up = {k: v + 1.0 for k, v in global_state.items()}
        down = {k: v - 1.0 for k, v in global_state.items()}
        clients = make_clients(2)
        # Force equal weights by giving both clients the same dataset.
        clients[1].dataset = clients[0].dataset
        merged = strategy.aggregate(
            global_state,
            [
                ClientUpdate.from_client(clients[0], up, 0.0),
                ClientUpdate.from_client(clients[1], down, 0.0),
            ],
            0,
        )
        delta = state_sub(merged, global_state)
        max_change = max(np.max(np.abs(v)) for v in delta.values())
        assert max_change < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            FedGMAStrategy(agreement_threshold=1.5)
        with pytest.raises(ValueError):
            FedGMAStrategy(server_lr=0.0)


class TestFPL:
    def test_prototypes_populated_after_round(self):
        strategy = FPLStrategy(local_config=FAST)
        run_strategy(strategy, rounds=2)
        assert strategy.global_prototypes
        dim = make_model().embed_dim
        for proto in strategy.global_prototypes.values():
            assert proto.shape == (dim,)
            assert np.all(np.isfinite(proto))

    def test_prototype_gradient_skips_unknown_classes(self, rng):
        strategy = FPLStrategy(local_config=FAST)
        z = rng.normal(size=(4, 8))
        loss, grad = strategy._prototype_gradient(z, np.array([0, 1, 2, 3]))
        assert loss == 0.0
        assert np.all(grad == 0)

    def test_prototype_gradient_is_finite_at_scale(self, rng):
        strategy = FPLStrategy(local_config=FAST)
        strategy.global_prototypes = {0: rng.normal(size=8), 1: rng.normal(size=8)}
        z = rng.normal(size=(6, 8)) * 1e4  # extreme embeddings
        loss, grad = strategy._prototype_gradient(z, np.array([0, 1, 0, 1, 0, 1]))
        assert np.isfinite(loss)
        assert np.all(np.isfinite(grad))

    def test_validation(self):
        with pytest.raises(ValueError):
            FPLStrategy(proto_weight=-0.1)
        with pytest.raises(ValueError):
            FPLStrategy(temperature=0.0)


class TestFedAlign:
    def test_targets_populated_after_round(self):
        strategy = FedAlignStrategy(local_config=FAST)
        run_strategy(strategy, rounds=2)
        assert strategy.global_targets
        dim = make_model().embed_dim
        for target in strategy.global_targets.values():
            assert target.shape == (dim,)
            assert np.all(np.isfinite(target))

    def test_fusion_is_count_weighted(self):
        strategy = FedAlignStrategy(local_config=FAST)
        clients = make_clients(2)
        a = np.zeros(4)
        b = np.ones(4)
        updates = [
            ClientUpdate.from_client(
                clients[0],
                make_model().state_dict(),
                0.0,
                payload={"feature_stats": {0: (a, 1)}},
            ),
            ClientUpdate.from_client(
                clients[1],
                make_model().state_dict(),
                0.0,
                payload={"feature_stats": {0: (b, 3)}},
            ),
        ]
        strategy.fuse_payloads(updates, 0)
        assert np.allclose(strategy.global_targets[0], 0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            FedAlignStrategy(align_weight=-0.1)


class TestFedCCRL:
    def test_targets_and_spread_populated(self):
        strategy = FedCCRLStrategy(local_config=FAST)
        run_strategy(strategy, rounds=2)
        assert strategy.global_targets
        spread = strategy.target_spread()
        assert set(spread) == set(strategy.global_targets)
        for value in spread.values():
            assert np.isfinite(value)
            assert value >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FedCCRLStrategy(consistency_weight=-1.0)
        with pytest.raises(ValueError):
            FedCCRLStrategy(align_weight=-1.0)


class TestFedDGGA:
    def test_gap_adjustment_covers_registered_subset(self):
        """A participant unknown to the prepare()-time registry keeps its
        weight, but the known participants are still gap-adjusted."""
        strategy = FedDGGAStrategy(step_size=0.5, momentum=0.0, local_config=FAST)
        clients = make_clients(3)
        model = make_model()
        strategy.prepare(clients[:2], model, np.random.default_rng(0))
        global_state = model.state_dict()
        updates = [
            ClientUpdate.from_client(
                c, {k: v + 0.1 for k, v in global_state.items()}, 0.0
            )
            for c in clients  # includes the unregistered clients[2]
        ]
        strategy.aggregate(global_state, updates, 0)
        assert set(strategy._gap_trace) == {
            clients[0].client_id,
            clients[1].client_id,
        }

    def test_weights_shift_toward_high_loss_clients(self):
        strategy = FedDGGAStrategy(step_size=0.5, momentum=0.0, local_config=FAST)
        result = run_strategy(strategy, rounds=3)
        assert result is not None
        weights = strategy.client_weights
        assert weights  # populated
        assert all(w >= strategy.weight_floor for w in weights.values())
        # After rounds with heterogeneous clients, weights differentiate.
        assert np.std(list(weights.values())) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FedDGGAStrategy(momentum=1.0)
        with pytest.raises(ValueError):
            FedDGGAStrategy(weight_floor=0.0)


class TestCCST:
    def test_style_bank_built_in_prepare(self, rng):
        strategy = CCSTStrategy(local_config=FAST)
        clients = make_clients(5)
        strategy.prepare(clients, make_model(), rng)
        assert len(strategy.style_bank) == sum(1 for c in clients if c.num_samples)

    def test_sample_mode_banks_multiple_styles_per_client(self, rng):
        strategy = CCSTStrategy(mode="sample", styles_per_client=3, local_config=FAST)
        clients = make_clients(4)
        strategy.prepare(clients, make_model(), rng)
        nonempty = sum(1 for c in clients if c.num_samples)
        assert len(strategy.style_bank) > nonempty

    def test_foreign_styles_exclude_own(self, rng):
        strategy = CCSTStrategy(local_config=FAST)
        clients = make_clients(4)
        strategy.prepare(clients, make_model(), rng)
        own_excluded = strategy._foreign_styles(clients[0].client_id)
        assert len(own_excluded) == len(strategy.style_bank) - 1

    def test_bank_exposes_client_statistics(self, rng):
        """The privacy-relevant property: CCST's bank carries per-client
        statistics that third parties can read."""
        strategy = CCSTStrategy(local_config=FAST)
        clients = make_clients(4)
        strategy.prepare(clients, make_model(), rng)
        entry = strategy.style_bank[0]
        assert entry.client_id == clients[0].client_id
        assert np.all(np.isfinite(entry.style.to_array()))

    def test_validation(self):
        with pytest.raises(ValueError):
            CCSTStrategy(mode="nope")
        with pytest.raises(ValueError):
            CCSTStrategy(styles_per_client=0)
        with pytest.raises(ValueError):
            CCSTStrategy(augment_per_batch=0)
