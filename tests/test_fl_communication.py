"""Tests for the per-method communication-cost model (`repro.fl.communication`)."""

import numpy as np
import pytest

from repro.fl import CommunicationModel, method_communication
from repro.nn import build_mlp_model

MODEL = build_mlp_model((3, 8, 8), 7, rng=np.random.default_rng(0))
BYTES = 8  # float64 scalars throughout the library
WEIGHTS = MODEL.num_parameters() * BYTES


class TestTotalArithmetic:
    def test_total_combines_per_round_and_one_time(self):
        model = CommunicationModel(
            method="x",
            per_round_up=10,
            per_round_down=20,
            one_time_up=3,
            one_time_down=4,
        )
        # (10+20) bytes * 5 participants * 7 rounds + (3+4) * 12 clients
        assert model.total(rounds=7, participants_per_round=5, num_clients=12) == (
            30 * 5 * 7 + 7 * 12
        )

    def test_zero_rounds_leaves_only_one_time_cost(self):
        model = CommunicationModel(
            method="x", per_round_up=10, per_round_down=20, one_time_up=5
        )
        assert model.total(rounds=0, participants_per_round=4, num_clients=3) == 15

    def test_no_one_time_defaults(self):
        model = CommunicationModel(method="x", per_round_up=1, per_round_down=1)
        assert model.one_time_up == 0
        assert model.one_time_down == 0
        assert model.total(rounds=2, participants_per_round=3, num_clients=99) == 12


class TestMethodPayloads:
    def test_weight_only_methods(self):
        for method in ("fedavg", "fedsr", "fedgma", "feddg_ga"):
            comm = method_communication(method, MODEL)
            assert comm.per_round_up == WEIGHTS
            assert comm.per_round_down == WEIGHTS
            assert comm.one_time_up == 0
            assert comm.one_time_down == 0

    def test_fpl_ships_prototypes_both_ways(self):
        comm = method_communication("fpl", MODEL, num_classes=7)
        prototypes = MODEL.embed_dim * 7 * BYTES
        assert comm.per_round_up == WEIGHTS + prototypes
        assert comm.per_round_down == WEIGHTS + prototypes

    def test_pardon_one_time_style_only(self):
        comm = method_communication("pardon", MODEL, style_dim=24)
        assert comm.one_time_up == 24 * BYTES
        assert comm.one_time_down == 24 * BYTES
        assert comm.per_round_up == WEIGHTS

    def test_ccst_bank_scales_with_clients(self):
        comm = method_communication(
            "ccst", MODEL, style_dim=24, num_clients=20, styles_per_client=1
        )
        assert comm.one_time_up == 24 * BYTES
        assert comm.one_time_down == 24 * BYTES * 20

    def test_ccst_multiple_styles_per_client(self):
        """Sample-mode CCST uploads k styles and downloads k * N of them."""
        comm = method_communication(
            "ccst", MODEL, style_dim=24, num_clients=10, styles_per_client=4
        )
        assert comm.one_time_up == 24 * BYTES * 4
        assert comm.one_time_down == 24 * BYTES * 4 * 10
        # Per-round traffic stays weights-only: the bank ships once.
        assert comm.per_round_up == WEIGHTS
        assert comm.per_round_down == WEIGHTS

    def test_pardon_cheaper_than_ccst_in_total(self):
        pardon = method_communication("pardon", MODEL, num_clients=20)
        ccst = method_communication(
            "ccst", MODEL, num_clients=20, styles_per_client=4
        )
        assert pardon.total(10, 5, 20) < ccst.total(10, 5, 20)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            method_communication("gossip", MODEL)
