"""Finite-difference gradient checking used by the nn layer tests.

Each layer's hand-derived backward pass is compared against central
differences of its forward pass, for both input gradients and parameter
gradients.  This is the ground-truth oracle that lets the rest of the library
trust the substrate.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module

__all__ = ["check_module_gradients", "numeric_gradient"]


def numeric_gradient(
    func: Callable[[], float], array: np.ndarray, epsilon: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``func()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = func()
        flat[index] = original - epsilon
        minus = func()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_module_gradients(
    module: Module,
    x: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    downstream_seed: int = 0,
) -> None:
    """Assert analytic gradients of ``module`` match finite differences.

    A fixed random downstream gradient ``g`` defines the scalar objective
    ``L = sum(forward(x) * g)``, whose exact input/parameter gradients the
    module's ``backward`` must produce.
    """
    rng = np.random.default_rng(downstream_seed)
    out = module.forward(x)
    downstream = rng.normal(size=out.shape)

    def objective() -> float:
        return float(np.sum(module.forward(x) * downstream))

    module.zero_grad()
    module.forward(x)
    grad_input = module.backward(downstream)

    numeric_input = numeric_gradient(objective, x)
    np.testing.assert_allclose(
        grad_input, numeric_input, rtol=rtol, atol=atol,
        err_msg=f"{type(module).__name__}: input gradient mismatch",
    )

    for name, param in module.named_parameters():
        numeric_param = numeric_gradient(objective, param.data)
        np.testing.assert_allclose(
            param.grad, numeric_param, rtol=rtol, atol=atol,
            err_msg=f"{type(module).__name__}: gradient mismatch for {name}",
        )
