"""Tests for the PARDON method: style pipeline, contrastive step, strategy,
and the Table-V ablation switches."""

import numpy as np
import pytest

from repro.core import (
    PardonConfig,
    PardonStrategy,
    cluster_client_styles,
    cluster_styles_of_features,
    compute_client_style,
    extract_interpolation_style,
    pardon_batch_step,
)
from repro.data import DomainStyle, render_images, synthetic_pacs, partition_clients
from repro.fl import Client, LocalTrainingConfig
from repro.nn import SGD, build_mlp_model
from repro.style import InvertibleEncoder, StyleVector

SUITE = synthetic_pacs(seed=0, samples_per_class=8, image_size=8)
ENCODER = InvertibleEncoder(levels=1, seed=7)


def two_domain_images(rng, per_domain=8):
    content = rng.normal(size=(2 * per_domain, 8, 8))
    style_a = DomainStyle("a", (1.0,) * 3, (2.0, 0.5, 1.0), (0.5, -0.5, 0.0),
                          noise_std=0.01)
    style_b = DomainStyle("b", (1.0,) * 3, (0.4, 1.8, 0.9), (-0.6, 0.6, 0.3),
                          noise_std=0.01)
    return np.concatenate([
        render_images(content[:per_domain], style_a, rng),
        render_images(content[per_domain:], style_b, rng),
    ])


class TestConfig:
    def test_variant_switches(self):
        assert not PardonConfig.v1().local_clustering
        assert not PardonConfig.v2().global_clustering
        assert not PardonConfig.v3().contrastive
        v4 = PardonConfig.v4()
        assert not v4.local_clustering and not v4.global_clustering
        assert not v4.style_positives
        v5 = PardonConfig.v5()
        assert v5.local_clustering and v5.global_clustering and v5.contrastive

    def test_validation(self):
        with pytest.raises(ValueError):
            PardonConfig(gamma_triplet=-1.0)
        with pytest.raises(ValueError):
            PardonConfig(margin=-0.1)

    def test_with_overrides(self):
        cfg = PardonConfig().with_overrides(gamma_triplet=9.0)
        assert cfg.gamma_triplet == 9.0
        assert cfg.local_clustering  # untouched


class TestLocalStyle:
    def test_cluster_styles_separate_domains(self, rng):
        images = two_domain_images(rng)
        styles = cluster_styles_of_features(ENCODER.encode(images))
        # Two visually distinct domains should produce at least 2 clusters.
        assert len(styles) >= 2

    def test_client_style_shape(self, rng):
        images = two_domain_images(rng)
        style = compute_client_style(images, ENCODER)
        assert style.dim == ENCODER.out_channels

    def test_clustered_style_resists_domain_imbalance(self, rng):
        """The point of local clustering (paper Eq. 1-2): when 80% of a
        client's data comes from one domain, averaging *cluster* styles sits
        closer to the balanced two-domain midpoint than the sample-weighted
        pooled average does.  Each domain renders through two sub-styles so
        the minority domain has internal cluster structure (a lone singleton
        cluster is unavoidably absorbed by FINCH's next level)."""
        content = rng.normal(size=(60, 8, 8))
        a1 = DomainStyle("a1", (1.0,) * 3, (3.0, 0.3, 1.0), (1.0, -1.0, 0.0),
                         noise_std=0.01)
        a2 = DomainStyle("a2", (1.0,) * 3, (2.5, 0.4, 1.2), (1.2, -0.8, 0.1),
                         noise_std=0.01)
        b1 = DomainStyle("b1", (1.0,) * 3, (0.3, 3.0, 1.0), (-1.0, 1.0, 0.0),
                         noise_std=0.01)
        b2 = DomainStyle("b2", (1.0,) * 3, (0.4, 2.5, 0.8), (-1.2, 0.8, -0.1),
                         noise_std=0.01)
        imbalanced = np.concatenate([
            render_images(content[:16], a1, rng),
            render_images(content[16:32], a2, rng),
            render_images(content[32:36], b1, rng),
            render_images(content[36:40], b2, rng),
        ])
        pure_a = compute_client_style(
            np.concatenate([
                render_images(content[40:50], a1, rng),
                render_images(content[50:60], a2, rng),
            ]), ENCODER, use_local_clustering=False,
        )
        pure_b = compute_client_style(
            np.concatenate([
                render_images(content[40:50], b1, rng),
                render_images(content[50:60], b2, rng),
            ]), ENCODER, use_local_clustering=False,
        )
        midpoint = (pure_a.to_array() + pure_b.to_array()) / 2
        clustered = compute_client_style(imbalanced, ENCODER, use_local_clustering=True)
        pooled = compute_client_style(imbalanced, ENCODER, use_local_clustering=False)
        dist_clustered = np.linalg.norm(clustered.to_array() - midpoint)
        dist_pooled = np.linalg.norm(pooled.to_array() - midpoint)
        assert dist_clustered < dist_pooled

    def test_single_image_client(self, rng):
        images = two_domain_images(rng)[:1]
        style = compute_client_style(images, ENCODER)
        assert np.all(np.isfinite(style.to_array()))

    def test_empty_client_rejected(self):
        with pytest.raises(ValueError):
            compute_client_style(np.zeros((0, 3, 8, 8)), ENCODER)


class TestInterpolation:
    def make_styles(self, rng, n, offset=0.0):
        return [
            StyleVector(
                mu=rng.normal(size=4) + offset,
                sigma=np.abs(rng.normal(size=4)) + 0.1,
            )
            for _ in range(n)
        ]

    def test_single_client(self, rng):
        styles = self.make_styles(rng, 1)
        out = extract_interpolation_style(styles)
        np.testing.assert_array_equal(out.to_array(), styles[0].to_array())

    def test_simple_average_mode(self, rng):
        styles = self.make_styles(rng, 5)
        out = extract_interpolation_style(styles, use_global_clustering=False)
        matrix = np.stack([s.to_array() for s in styles])
        np.testing.assert_allclose(out.to_array(), matrix.mean(axis=0))

    def test_median_resists_dominant_cluster(self, rng):
        """Eq. 5's rationale: 8 clients share one style, 2 clients each hold
        two other styles.  The clustered median lands near the middle style
        region; the plain mean is dragged toward the dominant group."""
        dominant = [
            StyleVector(mu=np.full(4, 10.0) + 0.01 * rng.normal(size=4),
                        sigma=np.ones(4))
            for _ in range(8)
        ]
        minority_low = [
            StyleVector(mu=np.full(4, -10.0) + 0.01 * rng.normal(size=4),
                        sigma=np.ones(4))
            for _ in range(2)
        ]
        minority_mid = [
            StyleVector(mu=np.zeros(4) + 0.01 * rng.normal(size=4),
                        sigma=np.ones(4))
            for _ in range(2)
        ]
        styles = dominant + minority_low + minority_mid
        clustered = extract_interpolation_style(styles, use_global_clustering=True)
        plain = extract_interpolation_style(styles, use_global_clustering=False)
        # Plain mean ≈ (8*10 - 2*10 + 0)/12 = 5; clustered median of cluster
        # centres {10, -10, 0} = 0.
        assert abs(clustered.mu.mean()) < abs(plain.mu.mean())

    def test_permutation_invariance(self, rng):
        styles = self.make_styles(rng, 6)
        forward = extract_interpolation_style(styles)
        backward = extract_interpolation_style(list(reversed(styles)))
        np.testing.assert_allclose(forward.to_array(), backward.to_array())

    def test_dimension_mismatch_rejected(self, rng):
        styles = [
            StyleVector(mu=np.zeros(4), sigma=np.ones(4)),
            StyleVector(mu=np.zeros(6), sigma=np.ones(6)),
        ]
        with pytest.raises(ValueError):
            extract_interpolation_style(styles)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            extract_interpolation_style([])

    def test_cluster_client_styles_groups_similar(self, rng):
        styles = self.make_styles(rng, 4, offset=0.0) + self.make_styles(
            rng, 4, offset=50.0
        )
        clusters = cluster_client_styles(styles)
        assert 2 <= len(clusters) <= 4


class TestBatchStep:
    def test_step_reduces_composite_loss(self, rng):
        model = build_mlp_model((3, 8, 8), num_classes=3, rng=rng)
        optimizer = SGD(model.parameters(), lr=0.05)
        images = rng.normal(size=(12, 3, 8, 8))
        transferred = images + 0.1 * rng.normal(size=images.shape)
        labels = rng.integers(0, 3, size=12)
        config = PardonConfig()
        first = pardon_batch_step(model, images, transferred, labels, config, optimizer)
        for _ in range(20):
            last = pardon_batch_step(
                model, images, transferred, labels, config, optimizer
            )
        assert last.cross_entropy < first.cross_entropy

    def test_empty_batch_is_noop(self, rng):
        model = build_mlp_model((3, 8, 8), num_classes=3, rng=rng)
        optimizer = SGD(model.parameters(), lr=0.05)
        result = pardon_batch_step(
            model,
            np.zeros((0, 3, 8, 8)),
            np.zeros((0, 3, 8, 8)),
            np.zeros(0, dtype=int),
            PardonConfig(),
            optimizer,
        )
        assert result.total == 0.0

    def test_shape_mismatch_rejected(self, rng):
        model = build_mlp_model((3, 8, 8), num_classes=3, rng=rng)
        optimizer = SGD(model.parameters(), lr=0.05)
        with pytest.raises(ValueError):
            pardon_batch_step(
                model,
                np.zeros((4, 3, 8, 8)),
                np.zeros((3, 3, 8, 8)),
                np.zeros(4, dtype=int),
                PardonConfig(),
                optimizer,
            )

    def test_v3_disables_triplet(self, rng):
        model = build_mlp_model((3, 8, 8), num_classes=3, rng=rng)
        optimizer = SGD(model.parameters(), lr=0.05)
        images = rng.normal(size=(6, 3, 8, 8))
        result = pardon_batch_step(
            model, images, images.copy(), rng.integers(0, 3, size=6),
            PardonConfig.v3(), optimizer,
        )
        assert result.triplet == 0.0
        assert result.cross_entropy > 0.0


def make_pardon_clients(n_clients=6, heterogeneity=0.2):
    partition = partition_clients(
        SUITE, [0, 1], n_clients, heterogeneity, np.random.default_rng(0)
    )
    return [Client(i, d) for i, d in enumerate(partition.client_datasets)]


class TestPardonStrategy:
    def test_prepare_extracts_global_style(self, rng):
        strategy = PardonStrategy()
        clients = make_pardon_clients()
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        strategy.prepare(clients, model, rng)
        assert strategy.interpolation_style is not None
        assert len(strategy.client_styles) == sum(
            1 for c in clients if c.num_samples
        )

    def test_local_update_before_prepare_raises(self, rng):
        strategy = PardonStrategy()
        clients = make_pardon_clients()
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        with pytest.raises(RuntimeError):
            strategy.local_update(clients[0], model, 0, rng)

    def test_transfer_cache_reused(self, rng):
        strategy = PardonStrategy()
        clients = make_pardon_clients()
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        strategy.prepare(clients, model, rng)
        first = strategy._transferred_images(clients[0], rng)
        second = strategy._transferred_images(clients[0], rng)
        assert first is second  # cached object identity

    def test_v4_augmentation_positives_fresh_each_round(self, rng):
        strategy = PardonStrategy(PardonConfig.v4())
        clients = make_pardon_clients()
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        strategy.prepare(clients, model, rng)
        first = strategy._transferred_images(clients[0], rng)
        second = strategy._transferred_images(clients[0], rng)
        assert not np.array_equal(first, second)

    def test_local_update_changes_weights_and_returns_loss(self, rng):
        strategy = PardonStrategy(
            local_config=LocalTrainingConfig(batch_size=8)
        )
        clients = make_pardon_clients()
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        strategy.prepare(clients, model, rng)
        before = model.state_dict()
        update = strategy.local_update(clients[0], model, 0, rng)
        assert update.loss > 0
        assert update.client_id == clients[0].client_id
        changed = any(
            not np.allclose(before[key], update.state[key]) for key in before
        )
        assert changed

    def test_transferred_images_carry_interpolation_style(self, rng):
        strategy = PardonStrategy()
        clients = make_pardon_clients()
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        strategy.prepare(clients, model, rng)
        transferred = strategy._transferred_images(clients[0], rng)
        feats = strategy.encoder.encode(transferred)
        target = strategy.interpolation_style
        np.testing.assert_allclose(
            feats.mean(axis=(2, 3)).mean(axis=0), target.mu, atol=0.15
        )

    def test_empty_client_update_is_noop(self, rng):
        strategy = PardonStrategy()
        clients = make_pardon_clients()
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        strategy.prepare(clients, model, rng)
        empty = Client(99, clients[0].dataset.subset(np.array([], dtype=int)))
        update = strategy.local_update(empty, model, 0, rng)
        assert update.loss == 0.0
        assert update.num_samples == 0

    def test_prepare_with_all_empty_clients_raises(self, rng):
        strategy = PardonStrategy()
        clients = make_pardon_clients()
        empty = [
            Client(i, clients[0].dataset.subset(np.array([], dtype=int)))
            for i in range(2)
        ]
        model = build_mlp_model(SUITE.image_shape, SUITE.num_classes, rng=rng)
        with pytest.raises(ValueError):
            strategy.prepare(empty, model, rng)
