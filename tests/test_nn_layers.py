"""Gradient and behaviour tests for dense/elementwise layers."""

import numpy as np
import pytest

from repro import nn
from tests.gradcheck import check_module_gradients


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_gradients(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        check_module_gradients(layer, rng.normal(size=(5, 4)))

    def test_no_bias(self, rng):
        layer = nn.Linear(4, 3, rng=rng, bias=False)
        assert layer.bias is None
        check_module_gradients(layer, rng.normal(size=(2, 4)))

    def test_rejects_wrong_input_width(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        with pytest.raises(ValueError, match="expected"):
            layer.forward(rng.normal(size=(5, 7)))

    def test_backward_before_forward_raises(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((5, 3)))


class TestActivations:
    @pytest.mark.parametrize(
        "layer_factory",
        [nn.ReLU, lambda: nn.LeakyReLU(0.2), nn.Tanh, nn.Sigmoid],
        ids=["relu", "leaky_relu", "tanh", "sigmoid"],
    )
    def test_gradients(self, layer_factory, rng):
        layer = layer_factory()
        # Keep values away from the ReLU kink where FD is ill-defined.
        x = rng.normal(size=(4, 6))
        x[np.abs(x) < 1e-3] = 0.5
        check_module_gradients(layer, x)

    def test_relu_zeroes_negatives(self, rng):
        out = nn.ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_leaky_relu_scales_negatives(self):
        out = nn.LeakyReLU(0.1).forward(np.array([[-2.0, 3.0]]))
        np.testing.assert_allclose(out, [[-0.2, 3.0]])

    def test_sigmoid_extreme_values_stable(self):
        out = nn.Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)


class TestFlatten:
    def test_round_trip_shapes(self, rng):
        layer = nn.Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        out = layer.forward(x)
        assert out.shape == (3, 32)
        grad = layer.backward(out)
        assert grad.shape == x.shape

    def test_gradients(self, rng):
        check_module_gradients(nn.Flatten(), rng.normal(size=(2, 3, 4, 4)))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(8, 8))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_training_mode_scales_survivors(self, rng):
        layer = nn.Dropout(0.5, rng=rng)
        x = np.ones((1000, 10))
        out = layer.forward(x)
        survivors = out[out != 0]
        np.testing.assert_allclose(survivors, 2.0)
        # Expected survival rate ~50%.
        assert 0.4 < (out != 0).mean() < 0.6

    def test_backward_uses_same_mask(self, rng):
        layer = nn.Dropout(0.3, rng=rng)
        x = np.ones((20, 20))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad != 0, out != 0)

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            nn.Dropout(1.0, rng=rng)


class TestSequential:
    def test_chains_forward_and_backward(self, rng):
        model = nn.Sequential(
            nn.Linear(6, 5, rng=rng), nn.Tanh(), nn.Linear(5, 2, rng=rng)
        )
        check_module_gradients(model, rng.normal(size=(3, 6)))

    def test_indexing_and_len(self, rng):
        model = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert len(model) == 2
        assert isinstance(model[1], nn.Tanh)

    def test_append(self, rng):
        model = nn.Sequential()
        model.append(nn.Linear(3, 3, rng=rng))
        assert len(model) == 1
        assert len(model.parameters()) == 2
