"""Setuptools shim.

The sandbox this reproduction targets has no network access and no ``wheel``
package, so PEP 517/660 builds (which need an isolated environment or
``bdist_wheel``) cannot run.  Keeping a classic ``setup.py`` alongside
``pyproject.toml`` lets ``pip install -e . --no-use-pep517`` perform a legacy
develop install with only the locally available setuptools.
"""

from setuptools import setup

setup()
