"""Multi-hospital federation with domain-heterogeneous clients.

The paper's motivating scenario (§I): hospitals hold medical images whose
appearance varies with the acquisition site (scanner vendor, calibration,
protocol), and a model trained across hospitals must generalize to a *new*
hospital never seen in training.  Privacy rules forbid pooling the images.

This example models four imaging sites as style domains, distributes three
of them across 15 hospital clients (each hospital may aggregate data from
several sites — domain-based heterogeneity), and evaluates every FedDG
method on the held-out site.  It also prints what each hospital actually
uploads under PARDON: one 2d-dimensional style-statistics vector.

Run:  python examples/hospital_federation.py
"""

import numpy as np

from repro import (
    CCSTStrategy,
    ExperimentSetting,
    FedAvgStrategy,
    FedGMAStrategy,
    PardonStrategy,
    run_split_experiment,
    synthetic_office_home,
)
from repro.core import compute_client_style
from repro.data import partition_clients
from repro.style import InvertibleEncoder


def main() -> None:
    # Office-Home's structure (4 domains, many classes, few samples per
    # class) matches the multi-site medical setting: many conditions, few
    # examples per condition per site.
    suite = synthetic_office_home(seed=7, samples_per_class=8)
    site_names = ["site_A(art)", "site_B(clipart)", "site_C(product)",
                  "site_D(real_world)"]

    # Hold site D out: a hospital joining after deployment.
    split = {"train": [0, 1, 2], "val": [3], "test": [3]}
    setting = ExperimentSetting(
        num_clients=15,
        clients_per_round=0.3,
        heterogeneity=0.2,   # hospitals aggregate data from multiple sites
        num_rounds=25,
        eval_every=25,
        seed=7,
    )

    print("Scenario: 15 hospitals, data from 3 imaging sites, tested on a 4th")
    print(f"Unseen site: {site_names[3]}")
    print()
    for name, strategy in (
        ("FedAvg ", FedAvgStrategy()),
        ("FedGMA ", FedGMAStrategy()),
        ("CCST   ", CCSTStrategy()),
        ("PARDON ", PardonStrategy()),
    ):
        outcome = run_split_experiment(suite, split, strategy, setting)
        print(f"{name} accuracy on unseen site: {outcome.test_accuracy:.1%}")

    # What leaves a hospital under PARDON: a single statistics vector.
    print()
    partition = partition_clients(
        suite, [0, 1, 2], 15, 0.2, np.random.default_rng(7)
    )
    encoder = InvertibleEncoder(levels=1, seed=7)
    style = compute_client_style(partition.client_datasets[0].images, encoder)
    print(
        f"Hospital 0 uploads exactly one vector in R^{2 * style.dim} "
        f"(channel means + stds); first entries: "
        f"{np.round(style.to_array()[:4], 3)}"
    )
    print("No image, gradient, or per-patient statistic is shared.")


if __name__ == "__main__":
    main()
