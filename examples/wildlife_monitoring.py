"""Wildlife camera-trap monitoring at scale (the IWildCam scenario).

Each camera trap is its own domain: fixed background, lighting, vegetation,
and sensor character.  New cameras come online constantly, so the deployed
model must classify species *from cameras it never trained on*, and only a
small fraction of camera sites can check in (train) during any round.

This example builds a many-domain suite (20 training cameras, 4 validation,
6 test cameras, long-tail species distribution), runs PARDON under 25%
client sampling at two heterogeneity levels, and reports the degradation —
the paper's Table III robustness story in miniature.

Run:  python examples/wildlife_monitoring.py
"""

from repro import (
    ExperimentSetting,
    FedAvgStrategy,
    PardonStrategy,
    run_fixed_split_protocol,
    synthetic_iwildcam,
)


def main() -> None:
    suite = synthetic_iwildcam(
        seed=3,
        num_train_domains=20,
        num_val_domains=4,
        num_test_domains=6,
        num_classes=20,
        mean_samples_per_domain=50,
    )
    counts = suite.merged(suite.train_domains).class_counts(suite.num_classes)
    print(
        f"{len(suite.train_domains)} training cameras, "
        f"{len(suite.test_domains)} unseen test cameras, "
        f"{suite.num_classes} species "
        f"(head class {counts.max()} images, tail class {counts[counts > 0].min()})"
    )
    print()

    for lam in (0.0, 1.0):
        regime = "domain-separated" if lam == 0.0 else "homogeneous"
        print(f"heterogeneity lambda={lam} ({regime} cameras per client):")
        for name, strategy in (
            ("FedAvg", FedAvgStrategy()),
            ("PARDON", PardonStrategy()),
        ):
            setting = ExperimentSetting(
                num_clients=20,
                clients_per_round=0.25,
                heterogeneity=lam,
                num_rounds=15,
                eval_every=15,
                seed=3,
            )
            outcome = run_fixed_split_protocol(suite, strategy, setting)
            print(
                f"  {name:8s} val={outcome.val_accuracy:.1%} "
                f"test(unseen cameras)={outcome.test_accuracy:.1%}"
            )
        print()


if __name__ == "__main__":
    main()
