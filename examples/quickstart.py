"""Quickstart: train PARDON on the synthetic PACS benchmark.

Builds a 4-domain suite, holds two domains out, federates the other two
across 12 clients with domain-based heterogeneity, and compares PARDON
against plain FedAvg on the unseen domains.

Run:  python examples/quickstart.py
"""

from repro import (
    ExperimentSetting,
    FedAvgStrategy,
    PardonStrategy,
    run_split_experiment,
    synthetic_pacs,
)


def main() -> None:
    # A PACS-like suite: photo / art_painting / cartoon / sketch, 7 classes.
    suite = synthetic_pacs(seed=0, samples_per_class=40)

    # Train on photo + art_painting; cartoon validates, sketch is the
    # headline unseen test domain (the hardest style shift).
    split = {"train": [0, 1], "val": [2], "test": [3]}

    setting = ExperimentSetting(
        num_clients=12,          # N
        clients_per_round=0.25,  # 25% client sampling per round
        heterogeneity=0.1,       # lambda: domain-based client heterogeneity
        num_rounds=30,
        eval_every=10,
        seed=0,
    )

    print(f"train domains: {[suite.domain_names[d] for d in split['train']]}")
    print(f"unseen domains: val={suite.domain_names[2]}, test={suite.domain_names[3]}")
    print()

    for name, strategy in (
        ("FedAvg", FedAvgStrategy()),
        ("PARDON", PardonStrategy()),
    ):
        outcome = run_split_experiment(suite, split, strategy, setting)
        timing = outcome.result.timing
        print(
            f"{name:8s} val={outcome.val_accuracy:.1%} "
            f"test={outcome.test_accuracy:.1%} "
            f"(one-time cost {timing.one_time_seconds:.2f}s, "
            f"{timing.local_train_seconds_mean * 1000:.0f} ms/client/round)"
        )


if __name__ == "__main__":
    main()
