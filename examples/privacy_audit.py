"""Privacy audit: what can an attacker reconstruct from shared styles?

Runs the paper's two reconstruction attacks (§IV-B-3) against both sharing
granularities:

* sample-level style vectors — what CCST-style cross-client sharing
  exposes; and
* client-level aggregated vectors — the only thing a PARDON client uploads.

An attacker trains a style-inversion decoder (the GAN stand-in) and we
score the reconstructions with FID (higher = farther from the private
data = safer) and paired PSNR.

Run:  python examples/privacy_audit.py
"""

import numpy as np

from repro.data import synthetic_pacs
from repro.nn import SGD, CrossEntropyLoss, build_cnn_model
from repro.privacy import run_reconstruction_attack
from repro.style import InvertibleEncoder


def train_judge(suite):
    """Small classifier used by the inception-score-style metric."""
    pool = suite.merged(list(range(suite.num_domains)))
    model = build_cnn_model(
        suite.image_shape, suite.num_classes, rng=np.random.default_rng(1)
    )
    criterion = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=0.02, momentum=0.9)
    shuffle = np.random.default_rng(0)
    for _ in range(4):
        order = shuffle.permutation(len(pool))
        for start in range(0, len(pool), 32):
            idx = order[start : start + 32]
            model.zero_grad()
            criterion.forward(model.forward(pool.images[idx]), pool.labels[idx])
            model.backward(grad_logits=criterion.backward())
            optimizer.step()
    return model


def main() -> None:
    victim_suite = synthetic_pacs(seed=0, samples_per_class=20)
    surrogate = synthetic_pacs(seed=777, samples_per_class=20)  # "public data"
    encoder = InvertibleEncoder(levels=1, seed=7)
    judge = train_judge(victim_suite)

    victim = victim_suite.dataset_for("photo")
    chunks = np.array_split(np.arange(len(victim)), 5)
    client_data = [victim.images[c] for c in chunks]

    print("Attack (i): third party trains the inverter on public data\n")
    for mode, label in (
        ("sample", "sample-level styles (CCST exposure)"),
        ("client", "client-level styles (PARDON exposure)"),
    ):
        report = run_reconstruction_attack(
            attacker_images=surrogate.merged([0, 1, 2, 3]).images,
            victim_images=victim.images,
            victim_client_datasets=client_data,
            mode=mode,
            encoder=encoder,
            judge=judge,
            rng=np.random.default_rng(5),
            epochs=30,
        )
        print(
            f"  {label}\n"
            f"    reconstructions: {report.num_reconstructions}"
            f" | FID vs private data: {report.fid:8.2f}"
            f" | IS-like score: {report.inception_score:.3f}"
        )
    print()
    print(
        "Reading: client-level reconstructions have far higher FID (they\n"
        "carry no per-image content — a client uploads ONE averaged vector)\n"
        "while sample-level styles let the attacker approximate individual\n"
        "images. This is the paper's Table IV / Figs. 6-7 conclusion."
    )


if __name__ == "__main__":
    main()
