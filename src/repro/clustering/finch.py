"""FINCH: parameter-free first-neighbour clustering (Sarfraz et al., CVPR'19).

PARDON uses FINCH twice (paper Eq. 1 and Eq. 3): on each client, to group
local samples by style so a dominant domain cannot bias the client's style
summary; and on the server, to group client style vectors before the median
interpolation.  FINCH needs no cluster count or threshold, which is exactly
why the paper picks it — each client holds an *unknown* number of domains.

Algorithm: link every point to its first (nearest) neighbour; the connected
components of the resulting graph (i is linked to j if ``j = nn(i)``,
``i = nn(j)``, or ``nn(i) = nn(j)``) form the first partition.  Recurse on
cluster means until everything merges, returning the full hierarchy
``L = {Gamma_1, ..., Gamma_L}`` with strictly decreasing cluster counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FinchResult", "finch", "first_neighbours", "cosine_similarity_matrix"]


def cosine_similarity_matrix(x: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity; zero vectors are treated as orthogonal."""
    if x.ndim != 2:
        raise ValueError(f"expected (n, d) matrix, got shape {x.shape}")
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    safe = np.where(norms > 0, norms, 1.0)
    unit = x / safe
    similarity = unit @ unit.T
    # A zero vector has no direction: force similarity 0 against everything.
    zero_rows = (norms[:, 0] == 0).nonzero()[0]
    similarity[zero_rows, :] = 0.0
    similarity[:, zero_rows] = 0.0
    return similarity


def first_neighbours(x: np.ndarray, metric: str = "cosine") -> np.ndarray:
    """Index of each row's nearest other row under ``metric``.

    ``metric`` is ``"cosine"`` (the paper's choice for style vectors) or
    ``"euclidean"``.
    """
    n = x.shape[0]
    if n < 2:
        raise ValueError("first neighbours require at least 2 points")
    if metric == "cosine":
        affinity = cosine_similarity_matrix(x)
    elif metric == "euclidean":
        sq_norms = np.sum(x**2, axis=1)
        distances = sq_norms[:, None] + sq_norms[None, :] - 2.0 * (x @ x.T)
        affinity = -distances
    else:
        raise ValueError(f"unknown metric {metric!r}")
    np.fill_diagonal(affinity, -np.inf)
    return np.argmax(affinity, axis=1)


class _UnionFind:
    """Standard disjoint-set with path compression and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, i: int, j: int) -> None:
        root_i, root_j = self.find(i), self.find(j)
        if root_i == root_j:
            return
        if self.size[root_i] < self.size[root_j]:
            root_i, root_j = root_j, root_i
        self.parent[root_j] = root_i
        self.size[root_i] += self.size[root_j]

    def labels(self) -> np.ndarray:
        roots = np.array([self.find(i) for i in range(len(self.parent))])
        _, labels = np.unique(roots, return_inverse=True)
        return labels


def _first_neighbour_partition(x: np.ndarray, metric: str) -> np.ndarray:
    """One FINCH round: components of the first-neighbour graph."""
    n = x.shape[0]
    neighbours = first_neighbours(x, metric=metric)
    uf = _UnionFind(n)
    for i in range(n):
        uf.union(i, int(neighbours[i]))
        # nn(i) == nn(j) linkage is implied transitively by i -- nn(i) unions.
    return uf.labels()


def _cluster_means(x: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Mean of the rows of ``x`` per cluster label (labels must be 0..k-1)."""
    k = int(labels.max()) + 1
    sums = np.zeros((k, x.shape[1]))
    np.add.at(sums, labels, x)
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    return sums / counts[:, None]


@dataclass
class FinchResult:
    """The FINCH hierarchy.

    ``partitions[i]`` assigns every input row a cluster id; successive
    partitions are strictly coarser.  ``num_clusters[i]`` is the cluster
    count of partition ``i``.
    """

    partitions: list[np.ndarray]
    num_clusters: list[int]

    @property
    def levels(self) -> int:
        return len(self.partitions)

    @property
    def last(self) -> np.ndarray:
        """The coarsest partition ``Gamma_L`` (smallest cluster count > 1
        when the data supports it) — the one PARDON consumes."""
        return self.partitions[-1]

    def clusters_at(self, level: int) -> list[np.ndarray]:
        """Member indices of each cluster at ``level``."""
        labels = self.partitions[level]
        return [np.nonzero(labels == c)[0] for c in range(self.num_clusters[level])]


def finch(x: np.ndarray, metric: str = "cosine", min_clusters: int = 1) -> FinchResult:
    """Run FINCH on the rows of ``x``.

    Parameters
    ----------
    x:
        ``(n, d)`` data matrix.  ``n == 1`` returns the trivial singleton
        partition; ``n == 0`` raises.
    metric:
        ``"cosine"`` or ``"euclidean"``.
    min_clusters:
        Stop recursing once a partition reaches this many clusters or fewer
        (the partition that crossed the threshold is kept).  The default 1
        returns the complete hierarchy.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected (n, d) matrix, got shape {x.shape}")
    n = x.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty set")
    if n == 1:
        return FinchResult(partitions=[np.zeros(1, dtype=np.int64)], num_clusters=[1])

    partitions: list[np.ndarray] = []
    num_clusters: list[int] = []
    labels = _first_neighbour_partition(x, metric)
    partitions.append(labels)
    num_clusters.append(int(labels.max()) + 1)

    while num_clusters[-1] > max(min_clusters, 2):
        means = _cluster_means(x, partitions[-1])
        meta_labels = _first_neighbour_partition(means, metric)
        merged = meta_labels[partitions[-1]]
        count = int(merged.max()) + 1
        if count >= num_clusters[-1] or count < 2:
            # Either no merging happened or everything collapsed into the
            # trivial single cluster; the reference implementation keeps
            # neither, so the hierarchy ends here.
            break
        partitions.append(merged.astype(np.int64))
        num_clusters.append(count)
    return FinchResult(partitions=partitions, num_clusters=num_clusters)
