"""``repro.clustering`` — FINCH first-neighbour clustering.

The parameter-free clustering PARDON applies at both the client (sample
styles) and server (client styles) levels.
"""

from repro.clustering.finch import (
    FinchResult,
    cosine_similarity_matrix,
    finch,
    first_neighbours,
)

__all__ = [
    "FinchResult",
    "finch",
    "first_neighbours",
    "cosine_similarity_matrix",
]
