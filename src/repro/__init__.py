"""PARDON: Privacy-Aware and Robust Federated Domain Generalization —
a full reproduction (ICDCS 2025, arXiv:2410.22622).

Public API tour
---------------
>>> from repro import (
...     synthetic_pacs, ExperimentSetting, PardonStrategy,
...     run_lodo_protocol,
... )
>>> suite = synthetic_pacs(seed=0)
>>> setting = ExperimentSetting(num_clients=10, num_rounds=5)
>>> outcomes = run_lodo_protocol(suite, PardonStrategy, setting)

Subpackages:

* ``repro.core`` — PARDON itself (style pipeline + contrastive training);
* ``repro.baselines`` — FedAvg, FedSR, FedGMA, FPL, FedDG-GA, CCST;
* ``repro.fl`` — the federated simulation substrate;
* ``repro.data`` — synthetic PACS / Office-Home / IWildCam stand-ins;
* ``repro.style`` — frozen encoders + AdaIN;
* ``repro.clustering`` — FINCH;
* ``repro.privacy`` — style-inversion attacks and reconstruction metrics;
* ``repro.eval`` — LODO/LTDO protocols, metrics, loss landscapes;
* ``repro.nn`` — the from-scratch numpy NN framework everything trains on.
"""

from repro.core import PardonConfig, PardonStrategy
from repro.baselines import (
    CCSTStrategy,
    FedAvgStrategy,
    FedDGGAStrategy,
    FedGMAStrategy,
    FedSRStrategy,
    FPLStrategy,
)
from repro.data import (
    synthetic_iwildcam,
    synthetic_office_home,
    synthetic_pacs,
)
from repro.eval import (
    ExperimentSetting,
    run_fixed_split_protocol,
    run_lodo_protocol,
    run_ltdo_protocol,
    run_split_experiment,
)
from repro.fl import (
    Client,
    ClientUpdate,
    FederatedConfig,
    FederatedServer,
    LocalTrainingConfig,
    ParallelExecutor,
    SerialExecutor,
    Strategy,
    make_executor,
)

__version__ = "1.0.0"

__all__ = [
    "PardonConfig",
    "PardonStrategy",
    "FedAvgStrategy",
    "FedSRStrategy",
    "FedGMAStrategy",
    "FPLStrategy",
    "FedDGGAStrategy",
    "CCSTStrategy",
    "synthetic_pacs",
    "synthetic_office_home",
    "synthetic_iwildcam",
    "ExperimentSetting",
    "run_lodo_protocol",
    "run_ltdo_protocol",
    "run_fixed_split_protocol",
    "run_split_experiment",
    "Client",
    "ClientUpdate",
    "FederatedConfig",
    "FederatedServer",
    "LocalTrainingConfig",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "Strategy",
    "__version__",
]
