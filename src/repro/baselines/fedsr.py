"""FedSR (Nguyen et al., NeurIPS 2022): simple representation regularization.

FedSR adds two representation-space regularizers to local training: an L2
bound on the embedding norm (limit how much the representation can encode)
and a conditional alignment term pulling each embedding toward its class's
reference point (a tractable surrogate of FedSR's conditional-mutual-
information bound; we use the in-batch class mean with stop-gradient as the
reference, which preserves the regularizer's geometry without FedSR's
probabilistic encoder).

The paper's Tables I–III show FedSR collapsing to chance accuracy when data
per client is small — the regularizers overwhelm the scarce task signal —
and this implementation reproduces that failure mode.
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client
from repro.fl.executor import ClientUpdate
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import FeatureClassifierModel

__all__ = ["FedSRStrategy"]


class FedSRStrategy(Strategy):
    """FedSR: CE + L2 embedding norm + class-conditional alignment."""

    name = "fedsr"

    def __init__(
        self,
        l2_weight: float = 0.1,
        cmi_weight: float = 0.2,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        super().__init__(local_config)
        if l2_weight < 0 or cmi_weight < 0:
            raise ValueError("regularizer weights must be non-negative")
        self.l2_weight = l2_weight
        self.cmi_weight = cmi_weight

    def local_update(
        self,
        client: Client,
        model: FeatureClassifierModel,
        round_index: int,
        rng: np.random.Generator,
    ) -> ClientUpdate:
        if client.num_samples == 0:
            return ClientUpdate.from_client(client, model.state_dict(), 0.0)
        images = client.dataset.images
        labels = client.dataset.labels
        model.train()
        optimizer = self.local_config.make_optimizer(model)
        criterion = CrossEntropyLoss()
        losses: list[float] = []
        n = images.shape[0]
        for _ in range(self.local_config.local_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.local_config.batch_size):
                idx = order[start : start + self.local_config.batch_size]
                batch_images, batch_labels = images[idx], labels[idx]
                batch = batch_images.shape[0]

                model.zero_grad()
                embeddings = model.forward_features(batch_images)
                logits = model.forward_logits(embeddings)
                ce_loss = criterion.forward(logits, batch_labels)
                grad_logits = criterion.backward()

                grad_embedding = np.zeros_like(embeddings)
                reg_loss = 0.0
                if self.l2_weight > 0:
                    reg_loss += self.l2_weight * float(
                        np.mean(np.sum(embeddings**2, axis=1))
                    )
                    grad_embedding += self.l2_weight * 2.0 * embeddings / batch
                if self.cmi_weight > 0:
                    # Class-conditional alignment to the in-batch class mean
                    # (reference treated as constant).
                    references = np.empty_like(embeddings)
                    for label in np.unique(batch_labels):
                        mask = batch_labels == label
                        references[mask] = embeddings[mask].mean(axis=0)
                    deviation = embeddings - references
                    reg_loss += self.cmi_weight * float(
                        np.mean(np.sum(deviation**2, axis=1))
                    )
                    grad_embedding += self.cmi_weight * 2.0 * deviation / batch

                model.backward(
                    grad_logits=grad_logits, grad_embedding=grad_embedding
                )
                optimizer.step()
                losses.append(ce_loss + reg_loss)
        return ClientUpdate.from_client(
            client,
            model.state_dict(),
            float(np.mean(losses)) if losses else 0.0,
        )
