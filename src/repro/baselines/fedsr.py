"""FedSR (Nguyen et al., NeurIPS 2022): simple representation regularization.

FedSR adds two representation-space regularizers to local training: an L2
bound on the embedding norm (limit how much the representation can encode)
and a conditional alignment term pulling each embedding toward its class's
reference point (a tractable surrogate of FedSR's conditional-mutual-
information bound; we use the in-batch class mean with stop-gradient as the
reference, which preserves the regularizer's geometry without FedSR's
probabilistic encoder).

Both regularizers live in the objective registry (``embed_l2`` /
``class_align`` in :mod:`repro.nn.objective`), so FedSR's whole client step
is its term list — the generic runners supply the loop, and the ensemble
compute backend applies for free.

The paper's Tables I–III show FedSR collapsing to chance accuracy when data
per client is small — the regularizers overwhelm the scarce task signal —
and this implementation reproduces that failure mode.
"""

from __future__ import annotations

from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.objective import CompositeObjective

__all__ = ["FedSRStrategy"]


class FedSRStrategy(Strategy):
    """FedSR: CE + L2 embedding norm + class-conditional alignment."""

    name = "fedsr"

    def __init__(
        self,
        l2_weight: float = 0.1,
        cmi_weight: float = 0.2,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        super().__init__(local_config)
        if l2_weight < 0 or cmi_weight < 0:
            raise ValueError("regularizer weights must be non-negative")
        self.l2_weight = l2_weight
        self.cmi_weight = cmi_weight
        self.objective = CompositeObjective(
            [
                ("ce", 1.0),
                ("embed_l2", l2_weight),
                ("class_align", cmi_weight),
            ]
        )
