"""FedGMA (Tenison et al., TMLR 2023): gradient-masked averaging.

The server inspects the *sign agreement* of client updates element-wise.
Where clients agree on the update direction (agreement above a threshold),
the averaged update passes through at full strength; where they disagree —
which under domain shift marks domain-specific parameters — the update is
attenuated by its agreement score.  This is a pure aggregation-side method:
local training is plain cross-entropy.
"""

from __future__ import annotations

import numpy as np

from repro.fl.executor import ClientUpdate
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.serialize import StateDict, state_sub

__all__ = ["FedGMAStrategy"]


class FedGMAStrategy(Strategy):
    """FedGMA: agreement-masked server aggregation over update deltas."""

    name = "fedgma"

    def __init__(
        self,
        agreement_threshold: float = 0.8,
        server_lr: float = 1.0,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        super().__init__(local_config)
        if not 0.0 <= agreement_threshold <= 1.0:
            raise ValueError(
                f"agreement_threshold must be in [0, 1], got {agreement_threshold}"
            )
        if server_lr <= 0:
            raise ValueError(f"server_lr must be positive, got {server_lr}")
        self.agreement_threshold = agreement_threshold
        self.server_lr = server_lr

    def aggregate(
        self,
        global_state: StateDict,
        updates: list[ClientUpdate],
        round_index: int,
    ) -> StateDict:
        if not updates:
            return global_state
        weights = np.array(
            [max(float(update.num_samples), 1.0) for update in updates]
        )
        weights = weights / weights.sum()
        deltas = [state_sub(update.state, global_state) for update in updates]

        new_state: StateDict = {}
        for key in global_state:
            stacked = np.stack([delta[key] for delta in deltas])
            signs = np.sign(stacked)
            agreement = np.abs(
                np.tensordot(weights, signs, axes=(0, 0))
            )  # in [0, 1] element-wise
            mean_delta = np.tensordot(weights, stacked, axes=(0, 0))
            mask = np.where(agreement >= self.agreement_threshold, 1.0, agreement)
            new_state[key] = global_state[key] + self.server_lr * mask * mean_delta
        return new_state
