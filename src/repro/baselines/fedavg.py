"""FedAvg (McMahan et al., 2017): the plain federated baseline.

Local cross-entropy training plus data-size-weighted averaging — exactly the
:class:`repro.fl.Strategy` defaults, named here so benchmarks can include it
as the no-DG reference point.
"""

from __future__ import annotations

from repro.fl.strategy import Strategy

__all__ = ["FedAvgStrategy"]


class FedAvgStrategy(Strategy):
    """Plain FedAvg; inherits default local update and aggregation."""

    name = "fedavg"
