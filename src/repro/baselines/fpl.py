"""FPL (Huang et al., CVPR 2023): federated prototype learning under domain
shift.

Clients upload per-class embedding prototypes alongside their weights.  The
server builds *unbiased* class prototypes by clustering each class's client
prototypes (so one dominant domain cannot own the class centre) and
averaging at the cluster level.  Clients then regularize local training by
a prototype-contrastive term: each embedding is pulled toward its class's
global prototype and pushed from the others via an InfoNCE head over
negative squared distances (prototypes treated as constants).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.finch import finch
from repro.fl.client import Client
from repro.fl.executor import ClientUpdate
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.ensemble import ensemble_cross_entropy, ensemble_state_dicts
from repro.nn.functional import softmax
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import FeatureClassifierModel
from repro.nn.module import Module
from repro.nn.serialize import StateDict

__all__ = ["FPLStrategy"]


class FPLStrategy(Strategy):
    """FPL: unbiased cluster prototypes + prototype-contrastive regularizer."""

    name = "fpl"

    def __init__(
        self,
        proto_weight: float = 0.5,
        temperature: float = 0.5,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        super().__init__(local_config)
        if proto_weight < 0:
            raise ValueError(f"proto_weight must be >= 0, got {proto_weight}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.proto_weight = proto_weight
        self.temperature = temperature
        # class id -> (embed_dim,) unbiased global prototype
        self.global_prototypes: dict[int, np.ndarray] = {}

    # -- client side ----------------------------------------------------------

    def _prototype_gradient(
        self, embeddings: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """InfoNCE over cosine similarities to the global prototypes.

        Embeddings and prototypes are L2-normalized before the similarity —
        FPL's contrastive head operates on the unit sphere, which also keeps
        the regularizer bounded and numerically stable.  Returns
        ``(loss, grad_wrt_embeddings)``.  Classes without a global prototype
        yet (first round, or absent everywhere) are skipped.
        """
        known = sorted(self.global_prototypes)
        if not known:
            return 0.0, np.zeros_like(embeddings)
        usable = np.isin(labels, known)
        if not np.any(usable):
            return 0.0, np.zeros_like(embeddings)
        proto_matrix = np.stack([self.global_prototypes[c] for c in known])
        proto_norms = np.linalg.norm(proto_matrix, axis=1, keepdims=True)
        proto_unit = proto_matrix / np.maximum(proto_norms, 1e-12)
        class_to_column = {c: i for i, c in enumerate(known)}

        z = embeddings[usable]
        y = np.array([class_to_column[int(label)] for label in labels[usable]])
        z_norms = np.linalg.norm(z, axis=1, keepdims=True)
        z_unit = z / np.maximum(z_norms, 1e-12)
        logits = z_unit @ proto_unit.T / self.temperature
        probs = softmax(logits, axis=1)
        count = z.shape[0]
        loss = float(-np.mean(np.log(probs[np.arange(count), y] + 1e-12)))
        grad_logits = probs.copy()
        grad_logits[np.arange(count), y] -= 1.0
        grad_logits /= count
        # Chain through the normalization: d z_unit / d z projects out the
        # radial component.
        grad_unit = grad_logits @ proto_unit / self.temperature
        radial = np.sum(grad_unit * z_unit, axis=1, keepdims=True)
        grad_z = (grad_unit - radial * z_unit) / np.maximum(z_norms, 1e-12)
        full_grad = np.zeros_like(embeddings)
        full_grad[usable] = grad_z
        return loss, full_grad

    def local_update(
        self,
        client: Client,
        model: FeatureClassifierModel,
        round_index: int,
        rng: np.random.Generator,
    ) -> ClientUpdate:
        if client.num_samples == 0:
            return ClientUpdate.from_client(client, model.state_dict(), 0.0)
        images = client.dataset.images
        labels = client.dataset.labels
        model.train()
        optimizer = self.local_config.make_optimizer(model)
        criterion = CrossEntropyLoss()
        losses: list[float] = []
        n = images.shape[0]
        for _ in range(self.local_config.local_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.local_config.batch_size):
                idx = order[start : start + self.local_config.batch_size]
                model.zero_grad()
                embeddings = model.forward_features(images[idx])
                logits = model.forward_logits(embeddings)
                ce_loss = criterion.forward(logits, labels[idx])
                proto_loss, proto_grad = self._prototype_gradient(
                    embeddings, labels[idx]
                )
                model.backward(
                    grad_logits=criterion.backward(),
                    grad_embedding=self.proto_weight * proto_grad,
                )
                optimizer.step()
                losses.append(ce_loss + self.proto_weight * proto_loss)

        # Upload this client's per-class prototypes alongside the weights —
        # explicit payload, never strategy mutation, so the update is valid
        # under any execution engine.
        model.eval()
        all_embeddings = []
        for start in range(0, n, 256):
            all_embeddings.append(
                model.forward_features(images[start : start + 256])
            )
        embeddings = np.concatenate(all_embeddings, axis=0)
        prototypes = {
            int(label): embeddings[labels == label].mean(axis=0)
            for label in np.unique(labels)
        }
        model.train()
        return ClientUpdate.from_client(
            client,
            model.state_dict(),
            float(np.mean(losses)) if losses else 0.0,
            payload={"prototypes": prototypes},
        )

    def ensemble_update(
        self,
        clients: list[Client],
        emodel: Module,
        round_index: int,
        rngs: list[np.random.Generator],
    ) -> list[ClientUpdate] | None:
        """:meth:`local_update` over a ``(K, ...)`` client stack.

        The model forward/backward — where virtually all the flops are —
        runs fused over the stack.  The InfoNCE head stays per-slice: it
        *compacts* each batch to the rows whose class has a global
        prototype, and matching that compaction bitwise means running the
        scalar head on each slice's embeddings (it is O(batch * classes *
        embed_dim), noise next to one conv layer).  Randomness is consumed
        in the loop path's order: one permutation per client per epoch.
        """
        config = self.local_config
        stack = len(clients)
        count = clients[0].num_samples
        images = np.stack([client.dataset.images for client in clients])
        labels = np.stack([client.dataset.labels for client in clients])
        emodel.train()
        optimizer = config.make_optimizer(emodel)
        rows = np.arange(stack)[:, None]
        batch_totals: list[np.ndarray] = []
        for _ in range(config.local_epochs):
            orders = np.stack([rng.permutation(count) for rng in rngs])
            for start in range(0, count, config.batch_size):
                indices = orders[:, start : start + config.batch_size]
                batch_labels = labels[rows, indices]
                emodel.zero_grad()
                embeddings = emodel.forward_features(images[rows, indices])
                logits = emodel.forward_logits(embeddings)
                ce_losses, ce_grad = ensemble_cross_entropy(logits, batch_labels)
                proto_losses = np.zeros(stack)
                grad_embedding = np.zeros_like(embeddings)
                for k in range(stack):
                    proto_loss, proto_grad = self._prototype_gradient(
                        embeddings[k], batch_labels[k]
                    )
                    proto_losses[k] = proto_loss
                    grad_embedding[k] = self.proto_weight * proto_grad
                emodel.backward(grad_logits=ce_grad, grad_embedding=grad_embedding)
                optimizer.step()
                batch_totals.append(ce_losses + self.proto_weight * proto_losses)

        # Per-slice prototype extraction, mirroring the loop path's chunked
        # eval-mode sweep (chunk boundaries line up because every client in
        # the group holds the same number of samples).
        emodel.eval()
        all_embeddings = []
        for start in range(0, count, 256):
            all_embeddings.append(
                emodel.forward_features(images[:, start : start + 256])
            )
        embeddings = np.concatenate(all_embeddings, axis=1)
        payloads = []
        for k in range(stack):
            payloads.append(
                {
                    "prototypes": {
                        int(label): embeddings[k][labels[k] == label].mean(axis=0)
                        for label in np.unique(labels[k])
                    }
                }
            )
        emodel.train()
        if batch_totals:
            mean_losses = np.mean(np.stack(batch_totals, axis=1), axis=1)
        else:
            mean_losses = np.zeros(stack)
        states = ensemble_state_dicts(emodel)
        return [
            ClientUpdate.from_client(client, state, float(loss), payload=payload)
            for client, state, loss, payload in zip(
                clients, states, mean_losses, payloads
            )
        ]

    # -- server side ------------------------------------------------------------

    def aggregate(
        self,
        global_state: StateDict,
        updates: list[ClientUpdate],
        round_index: int,
    ) -> StateDict:
        new_state = super().aggregate(global_state, updates, round_index)
        # Unbiased prototype fusion: cluster each class's client prototypes
        # (uploaded in the round's payloads), average inside clusters, then
        # average the cluster centres.
        round_prototypes: dict[int, list[np.ndarray]] = {}
        for update in updates:
            for label, prototype in update.payload.get("prototypes", {}).items():
                round_prototypes.setdefault(int(label), []).append(prototype)
        for label, prototypes in round_prototypes.items():
            self.global_prototypes[label] = self._fuse_prototypes(
                np.stack(prototypes)
            )
        return new_state

    def _fuse_prototypes(self, matrix: np.ndarray) -> np.ndarray:
        """Fuse one class's ``(clients, dim)`` prototype matrix.

        The historical FINCH path assumes every row is honest; under a
        Byzantine-robust aggregation rule a poisoned prototype would drag
        its whole cluster, so the rule's coordinate-wise robust reduction
        (:meth:`repro.fl.aggregate.Aggregator.reduce_vectors`) replaces
        clustering — prototypes get the same breakdown point as weights.
        """
        if self.aggregator.robust:
            return self.aggregator.reduce_vectors(matrix)
        if matrix.shape[0] >= 3:
            labels = finch(matrix, metric="cosine").last
            cluster_means = np.stack(
                [
                    matrix[labels == cluster].mean(axis=0)
                    for cluster in range(int(labels.max()) + 1)
                ]
            )
            return cluster_means.mean(axis=0)
        return matrix.mean(axis=0)
