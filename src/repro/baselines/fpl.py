"""FPL (Huang et al., CVPR 2023): federated prototype learning under domain
shift.

Clients upload per-class embedding prototypes alongside their weights.  The
server builds *unbiased* class prototypes by clustering each class's client
prototypes (so one dominant domain cannot own the class centre) and
averaging at the cluster level.  Clients then regularize local training by
a prototype-contrastive term: each embedding is pulled toward its class's
global prototype and pushed from the others via an InfoNCE head over
negative squared distances (prototypes treated as constants).

The client step is declarative: the ``proto_nce`` objective term
(:func:`repro.nn.objective.prototype_nce`) reads the fused prototypes from
the step context, the generic payload sweep distills per-class means, and
:meth:`FPLStrategy.fuse_payloads` merges them server-side — which also
means FPL now streams (it no longer overrides ``aggregate``; payloads
survive the streaming fold, only upload states are freed).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.finch import finch
from repro.fl.client import Client
from repro.fl.executor import ClientUpdate
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.objective import CompositeObjective, ProtoNCETerm, prototype_nce

__all__ = ["FPLStrategy"]


class FPLStrategy(Strategy):
    """FPL: unbiased cluster prototypes + prototype-contrastive regularizer."""

    name = "fpl"

    def __init__(
        self,
        proto_weight: float = 0.5,
        temperature: float = 0.5,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        super().__init__(local_config)
        if proto_weight < 0:
            raise ValueError(f"proto_weight must be >= 0, got {proto_weight}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.proto_weight = proto_weight
        self.temperature = temperature
        # class id -> (embed_dim,) unbiased global prototype
        self.global_prototypes: dict[int, np.ndarray] = {}
        self.objective = CompositeObjective(
            [
                ("ce", 1.0),
                ("proto_nce", proto_weight, ProtoNCETerm(temperature)),
            ]
        )

    # -- client side ----------------------------------------------------------

    def _prototype_gradient(
        self, embeddings: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """The InfoNCE head against the current global prototypes
        (kept as a method for direct inspection; the training loop runs
        the same math through the ``proto_nce`` objective term)."""
        return prototype_nce(
            embeddings, labels, self.global_prototypes, self.temperature
        )

    def objective_context(self, client: Client) -> dict:
        return {"prototypes": self.global_prototypes}

    def payload_from_embeddings(
        self, client: Client, embeddings: np.ndarray, labels: np.ndarray
    ) -> dict:
        # Upload this client's per-class prototypes alongside the weights —
        # explicit payload, never strategy mutation, so the update is valid
        # under any execution engine.
        return {
            "prototypes": {
                int(label): embeddings[labels == label].mean(axis=0)
                for label in np.unique(labels)
            }
        }

    # -- server side ------------------------------------------------------------

    def fuse_payloads(self, updates: list[ClientUpdate], round_index: int) -> None:
        # Unbiased prototype fusion: cluster each class's client prototypes
        # (uploaded in the round's payloads), average inside clusters, then
        # average the cluster centres.
        round_prototypes: dict[int, list[np.ndarray]] = {}
        for update in updates:
            for label, prototype in update.payload.get("prototypes", {}).items():
                round_prototypes.setdefault(int(label), []).append(prototype)
        for label, prototypes in round_prototypes.items():
            self.global_prototypes[label] = self._fuse_prototypes(
                np.stack(prototypes)
            )

    def _fuse_prototypes(self, matrix: np.ndarray) -> np.ndarray:
        """Fuse one class's ``(clients, dim)`` prototype matrix.

        The historical FINCH path assumes every row is honest; under a
        Byzantine-robust aggregation rule a poisoned prototype would drag
        its whole cluster, so the rule's coordinate-wise robust reduction
        (:meth:`repro.fl.aggregate.Aggregator.reduce_vectors`) replaces
        clustering — prototypes get the same breakdown point as weights.
        """
        if self.aggregator.robust:
            return self.aggregator.reduce_vectors(matrix)
        if matrix.shape[0] >= 3:
            labels = finch(matrix, metric="cosine").last
            cluster_means = np.stack(
                [
                    matrix[labels == cluster].mean(axis=0)
                    for cluster in range(int(labels.max()) + 1)
                ]
            )
            return cluster_means.mean(axis=0)
        return matrix.mean(axis=0)
