"""FedAlign: cross-client feature alignment (per PAPERS.md's sibling-method
survey).

Each participant distills its post-training representation into per-class
feature statistics — ``(mean, count)`` pairs over its local embeddings —
and uploads them in ``ClientUpdate.payload`` alongside the weights.  The
server fuses the statistics across clients into one alignment target per
class (count-weighted mean; the configured aggregation rule's robust
vector reduction when it is Byzantine-robust) and re-broadcasts the
targets with the strategy.  From round 2 on, local training adds the
``align`` objective term: every embedding is pulled toward its class's
*global* target, shrinking the representation drift between domains that
plain FedAvg lets grow.

Where FPL's prototypes feed a contrastive InfoNCE head, FedAlign's targets
act through a plain quadratic penalty — the same payload wire contract
carrying a geometrically different regularizer.
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client
from repro.fl.executor import ClientUpdate
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.objective import CompositeObjective, FeatureAlignTerm

__all__ = ["FedAlignStrategy"]


class FedAlignStrategy(Strategy):
    """FedAlign: CE + quadratic pull toward fused per-class feature means."""

    name = "fedalign"

    def __init__(
        self,
        align_weight: float = 0.5,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        super().__init__(local_config)
        if align_weight < 0:
            raise ValueError(f"align_weight must be >= 0, got {align_weight}")
        self.align_weight = align_weight
        # class id -> (embed_dim,) fused alignment target, broadcast with
        # the strategy each round (empty before the first fusion).
        self.global_targets: dict[int, np.ndarray] = {}
        self.objective = CompositeObjective(
            [
                ("ce", 1.0),
                ("align", align_weight, FeatureAlignTerm("align_targets")),
            ]
        )

    # -- client side ----------------------------------------------------------

    def objective_context(self, client: Client) -> dict:
        return {"align_targets": self.global_targets}

    def payload_from_embeddings(
        self, client: Client, embeddings: np.ndarray, labels: np.ndarray
    ) -> dict:
        stats = {}
        for label in np.unique(labels):
            mask = labels == label
            stats[int(label)] = (
                embeddings[mask].mean(axis=0),
                int(np.sum(mask)),
            )
        return {"feature_stats": stats}

    # -- server side ----------------------------------------------------------

    def fuse_payloads(self, updates: list[ClientUpdate], round_index: int) -> None:
        per_class: dict[int, list[tuple[np.ndarray, int]]] = {}
        for update in updates:
            for label, stat in update.payload.get("feature_stats", {}).items():
                per_class.setdefault(int(label), []).append(stat)
        for label, stats in per_class.items():
            matrix = np.stack([mean for mean, _ in stats])
            if self.aggregator.robust:
                # A poisoned mean with an inflated count would dominate a
                # weighted average; under a robust rule the counts are
                # ignored and the rule's breakdown point carries over.
                self.global_targets[label] = self.aggregator.reduce_vectors(
                    matrix
                )
            else:
                counts = np.array([count for _, count in stats], dtype=float)
                self.global_targets[label] = np.average(
                    matrix, axis=0, weights=counts
                )
