"""FedDG-GA (Zhang et al., CVPR 2023): generalization adjustment.

A pure aggregation-side method: the server maintains a per-client
aggregation weight and, after each round, nudges weights toward clients on
which the *new global model* still has a high generalization gap (loss), so
hard clients — often those holding domains the current model handles
poorly — gain influence.  Weights are smoothed with momentum, floored, and
renormalized.
"""

from __future__ import annotations

import numpy as np

from repro.fl.evaluation import evaluate_loss
from repro.fl.client import Client
from repro.fl.executor import ClientUpdate
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.models import FeatureClassifierModel
from repro.nn.serialize import StateDict, average_states

__all__ = ["FedDGGAStrategy"]


class FedDGGAStrategy(Strategy):
    """FedDG-GA: generalization-gap-adjusted aggregation weights."""

    name = "feddg_ga"

    # The workspace-model handle and the client registry exist purely for
    # server-side gap evaluation inside aggregate(); they must not ship to
    # local-update workers (the registry would drag every dataset along).
    _server_only_state = ("_model_ref", "_clients_by_id")

    def __init__(
        self,
        step_size: float = 0.2,
        momentum: float = 0.5,
        weight_floor: float = 0.05,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        super().__init__(local_config)
        if step_size < 0:
            raise ValueError(f"step_size must be >= 0, got {step_size}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_floor <= 0:
            raise ValueError(f"weight_floor must be positive, got {weight_floor}")
        self.step_size = step_size
        self.momentum = momentum
        self.weight_floor = weight_floor
        self.client_weights: dict[int, float] = {}
        self._gap_trace: dict[int, float] = {}
        self._model_ref: FeatureClassifierModel | None = None
        self._clients_by_id: dict[int, Client] | None = None

    def prepare(
        self,
        clients: list[Client],
        model: FeatureClassifierModel,
        rng: np.random.Generator,
    ) -> None:
        # Keep a handle on the workspace model for gap evaluation; the
        # simulation core reloads its weights before every use, so mutating
        # them inside aggregate() is safe.  The client registry lets
        # aggregate() find a participant's dataset from its upload id.
        self._model_ref = model
        self._clients_by_id = {client.client_id: client for client in clients}
        for client in clients:
            self.client_weights.setdefault(client.client_id, 1.0)

    def aggregate(
        self,
        global_state: StateDict,
        updates: list[ClientUpdate],
        round_index: int,
    ) -> StateDict:
        if not updates:
            return global_state
        # Aggregate with the adjusted weights (renormalized over this
        # round's participants).
        raw = np.array(
            [
                self.client_weights.get(update.client_id, 1.0)
                for update in updates
            ]
        )
        new_state = average_states([update.state for update in updates], raw)

        # Measure the generalization gap of the new global model on each
        # participant and adjust weights for future rounds.  Participants
        # missing from the registry (e.g. clients added after prepare())
        # simply keep their current weight — gap evaluation needs a dataset.
        registry = self._clients_by_id or {}
        participants = [
            registry[update.client_id]
            for update in updates
            if update.client_id in registry
        ]
        if self._model_ref is not None and self.step_size > 0 and participants:
            self._model_ref.load_state_dict(new_state)
            gaps = np.array(
                [
                    evaluate_loss(self._model_ref, client.dataset)
                    for client in participants
                ]
            )
            self._gap_trace = {
                client.client_id: float(gap)
                for client, gap in zip(participants, gaps)
            }
            centered = gaps - gaps.mean()
            scale = np.max(np.abs(centered))
            if scale > 0:
                adjustment = self.step_size * centered / scale
                for client, delta in zip(participants, adjustment):
                    old = self.client_weights.get(client.client_id, 1.0)
                    updated = (
                        self.momentum * old
                        + (1.0 - self.momentum) * (old + float(delta))
                    )
                    self.client_weights[client.client_id] = max(
                        updated, self.weight_floor
                    )
        return new_state
