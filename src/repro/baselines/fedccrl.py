"""FedCCRL: federated cross-client representation learning (per PAPERS.md's
sibling-method survey).

FedCCRL combines two representation-level pressures on top of supervised
training:

* **augmentation consistency** — each batch runs a second, generically
  augmented view (noise + circular shifts, the same pipeline PARDON's v4
  ablation uses) through the shared feature extractor in one concatenated
  forward, and a quadratic consistency term pulls the two views' embeddings
  together, with cross-entropy supervising *both* views;
* **cross-client alignment** — clients upload per-class representation
  statistics ``(mean, mean-of-squares, count)`` in ``ClientUpdate.payload``;
  the server fuses them into global per-class targets (count-weighted, or
  the aggregation rule's robust vector reduction) and re-broadcasts, and the
  ``align`` term pulls embeddings of both views toward their class target.

The second moment rides along so the server can report per-class
representation spread (:meth:`FedCCRLStrategy.target_spread`) — the
quantity FedCCRL's alignment is meant to shrink — without another upload
channel.
"""

from __future__ import annotations

import numpy as np

from repro.data.transforms import standard_augmentation
from repro.fl.client import Client
from repro.fl.executor import ClientUpdate
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.objective import (
    CompositeObjective,
    CrossEntropyTerm,
    FeatureAlignTerm,
)

__all__ = ["FedCCRLStrategy"]


class FedCCRLStrategy(Strategy):
    """FedCCRL: two-view CE + augmentation consistency + global alignment."""

    name = "fedccrl"

    def __init__(
        self,
        consistency_weight: float = 0.5,
        align_weight: float = 0.25,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        super().__init__(local_config)
        if consistency_weight < 0 or align_weight < 0:
            raise ValueError("term weights must be non-negative")
        self.consistency_weight = consistency_weight
        self.align_weight = align_weight
        # class id -> (embed_dim,) fused representation target; second
        # moments and counts ride along for spread reporting.
        self.global_targets: dict[int, np.ndarray] = {}
        self.global_sqmeans: dict[int, np.ndarray] = {}
        self.objective = CompositeObjective(
            [
                ("ce", 1.0, CrossEntropyTerm(all_views=True)),
                ("consistency", consistency_weight),
                ("align", align_weight, FeatureAlignTerm("align_targets")),
            ]
        )

    # -- client side ----------------------------------------------------------

    def local_views(
        self, client: Client, rng: np.random.Generator
    ) -> np.ndarray:
        # Drawn fresh each round, before any batch permutation — the same
        # randomness discipline as PARDON's v4 augmentation positives.
        return standard_augmentation()(client.dataset.images, rng)

    def objective_context(self, client: Client) -> dict:
        return {"align_targets": self.global_targets}

    def payload_from_embeddings(
        self, client: Client, embeddings: np.ndarray, labels: np.ndarray
    ) -> dict:
        stats = {}
        for label in np.unique(labels):
            rows = embeddings[labels == label]
            stats[int(label)] = (
                rows.mean(axis=0),
                np.mean(rows**2, axis=0),
                int(rows.shape[0]),
            )
        return {"repr_stats": stats}

    # -- server side ----------------------------------------------------------

    def fuse_payloads(self, updates: list[ClientUpdate], round_index: int) -> None:
        per_class: dict[int, list[tuple[np.ndarray, np.ndarray, int]]] = {}
        for update in updates:
            for label, stat in update.payload.get("repr_stats", {}).items():
                per_class.setdefault(int(label), []).append(stat)
        for label, stats in per_class.items():
            means = np.stack([mean for mean, _, _ in stats])
            sqmeans = np.stack([sq for _, sq, _ in stats])
            if self.aggregator.robust:
                self.global_targets[label] = self.aggregator.reduce_vectors(
                    means
                )
                self.global_sqmeans[label] = self.aggregator.reduce_vectors(
                    sqmeans
                )
            else:
                counts = np.array(
                    [count for _, _, count in stats], dtype=float
                )
                self.global_targets[label] = np.average(
                    means, axis=0, weights=counts
                )
                self.global_sqmeans[label] = np.average(
                    sqmeans, axis=0, weights=counts
                )

    def target_spread(self) -> dict[int, float]:
        """Mean per-class representation variance implied by the fused
        first and second moments (``E[x^2] - E[x]^2``, clipped at zero)."""
        return {
            label: float(
                np.mean(
                    np.maximum(
                        self.global_sqmeans[label] - target**2, 0.0
                    )
                )
            )
            for label, target in self.global_targets.items()
            if label in self.global_sqmeans
        }
