"""CCST (Chen et al., WACV 2023): cross-client style transfer.

Clients publish their style statistics to a server-side *style bank*; every
client then augments its local data by AdaIN-transferring it to other
clients' styles before plain cross-entropy training.  Two sharing
granularities exist:

* ``"overall"`` — one pooled style per client (the paper's default CCST);
* ``"sample"`` — per-image style vectors enter the bank.  Strictly stronger
  augmentation but the privacy disaster analysed in the paper's §IV-B-3:
  a sample-level style is enough to reconstruct the image's content.

Either way the bank is visible to all participants — the cross-sharing
design PARDON's interpolation style deliberately avoids.  The privacy
benchmarks (Table IV, Figs. 6–8) compare exactly these two sharing modes
against PARDON's single aggregated style.
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client
from repro.fl.executor import ClientUpdate
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import FeatureClassifierModel
from repro.style.adain import (
    StyleVector,
    apply_style_to_images,
    per_sample_style_stats,
    pooled_style,
)
from repro.style.encoder import InvertibleEncoder

__all__ = ["CCSTStrategy", "StyleBankEntry"]


class StyleBankEntry:
    """One published style: who it came from and the statistics themselves."""

    def __init__(self, client_id: int, style: StyleVector) -> None:
        self.client_id = client_id
        self.style = style


class CCSTStrategy(Strategy):
    """CCST: style-bank augmentation + plain FedAvg."""

    name = "ccst"

    def __init__(
        self,
        mode: str = "overall",
        styles_per_client: int = 4,
        augment_per_batch: int = 1,
        encoder: InvertibleEncoder | None = None,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        super().__init__(local_config)
        if mode not in ("overall", "sample"):
            raise ValueError(f"mode must be 'overall' or 'sample', got {mode!r}")
        if styles_per_client < 1:
            raise ValueError("styles_per_client must be >= 1")
        if augment_per_batch < 1:
            raise ValueError("augment_per_batch must be >= 1")
        self.mode = mode
        self.styles_per_client = styles_per_client
        self.augment_per_batch = augment_per_batch
        self.encoder = encoder or InvertibleEncoder(levels=2, seed=7)
        self.style_bank: list[StyleBankEntry] = []

    def prepare(
        self,
        clients: list[Client],
        model: FeatureClassifierModel,
        rng: np.random.Generator,
    ) -> None:
        """Publish every client's style statistics into the shared bank."""
        self.style_bank = []
        for client in clients:
            if client.num_samples == 0:
                continue
            features = self.encoder.encode(client.dataset.images)
            if self.mode == "overall":
                self.style_bank.append(
                    StyleBankEntry(client.client_id, pooled_style(features))
                )
            else:
                mu, sigma = per_sample_style_stats(features)
                count = min(self.styles_per_client, mu.shape[0])
                chosen = rng.choice(mu.shape[0], size=count, replace=False)
                for index in chosen:
                    self.style_bank.append(
                        StyleBankEntry(
                            client.client_id,
                            StyleVector(mu=mu[index], sigma=sigma[index]),
                        )
                    )

    def _foreign_styles(self, client_id: int) -> list[StyleVector]:
        return [
            entry.style
            for entry in self.style_bank
            if entry.client_id != client_id
        ]

    def train_client(
        self,
        client: Client,
        model: FeatureClassifierModel,
        round_index: int,
        rng: np.random.Generator,
    ) -> ClientUpdate:
        images = client.dataset.images
        labels = client.dataset.labels
        foreign = self._foreign_styles(client.client_id)

        model.train()
        optimizer = self.local_config.make_optimizer(model)
        criterion = CrossEntropyLoss()
        losses: list[float] = []
        n = images.shape[0]
        for _ in range(self.local_config.local_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.local_config.batch_size):
                idx = order[start : start + self.local_config.batch_size]
                batch_images = images[idx]
                batch_labels = labels[idx]
                if foreign:
                    parts = [batch_images]
                    label_parts = [batch_labels]
                    for _ in range(self.augment_per_batch):
                        style = foreign[int(rng.integers(len(foreign)))]
                        parts.append(
                            apply_style_to_images(
                                batch_images, style, self.encoder
                            )
                        )
                        label_parts.append(batch_labels)
                    batch_images = np.concatenate(parts, axis=0)
                    batch_labels = np.concatenate(label_parts, axis=0)
                model.zero_grad()
                logits = model.forward(batch_images)
                loss = criterion.forward(logits, batch_labels)
                model.backward(grad_logits=criterion.backward())
                optimizer.step()
                losses.append(loss)
        return ClientUpdate.from_client(
            client,
            model.state_dict(),
            float(np.mean(losses)) if losses else 0.0,
        )
