"""``repro.baselines`` — the SOTA FedDG baselines the paper compares
against, plus plain FedAvg and the sibling methods from PAPERS.md's survey
(FedAlign, FedCCRL) that stress the ``ClientUpdate`` payload path beyond
FPL's prototypes.

Each is a :class:`repro.fl.Strategy`, so any of them drops into the same
simulation loop and benchmark harness as PARDON.
"""

from repro.baselines.fedavg import FedAvgStrategy
from repro.baselines.fedsr import FedSRStrategy
from repro.baselines.fedgma import FedGMAStrategy
from repro.baselines.fpl import FPLStrategy
from repro.baselines.feddg_ga import FedDGGAStrategy
from repro.baselines.ccst import CCSTStrategy, StyleBankEntry
from repro.baselines.mixstyle import MixStyleStrategy
from repro.baselines.fedalign import FedAlignStrategy
from repro.baselines.fedccrl import FedCCRLStrategy

__all__ = [
    "FedAvgStrategy",
    "FedSRStrategy",
    "FedGMAStrategy",
    "FPLStrategy",
    "FedDGGAStrategy",
    "CCSTStrategy",
    "StyleBankEntry",
    "MixStyleStrategy",
    "FedAlignStrategy",
    "FedCCRLStrategy",
]
