"""MixStyle adapted to federated learning (Zhou et al., ICLR 2021).

The paper's related-work section singles MixStyle out as a centralized DG
method that "can be adapted for federated learning with minor adjustments"
but "offers minimal improvement ... due to constrained intra-client and
differing inter-client distributions" (citing Bai et al.).  We include it
so that claim is testable: during local training each batch is augmented by
mixing every sample's style statistics with a random *same-client* sample's
statistics (convex combination with Beta-distributed weight), in the frozen
encoder's feature space.

Because mixing partners come from the same client, the method can only
interpolate styles the client already holds — exactly the limitation the
paper describes, and the reason PARDON's cross-client interpolation style
outperforms it under domain-separated clients.
"""

from __future__ import annotations

import numpy as np

from repro.fl.client import Client
from repro.fl.executor import ClientUpdate
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import FeatureClassifierModel
from repro.style.adain import per_sample_style_stats
from repro.style.encoder import InvertibleEncoder

__all__ = ["MixStyleStrategy"]


class MixStyleStrategy(Strategy):
    """Within-client style mixing + plain FedAvg."""

    name = "mixstyle"

    def __init__(
        self,
        alpha: float = 0.3,
        mix_probability: float = 0.5,
        encoder: InvertibleEncoder | None = None,
        local_config: LocalTrainingConfig | None = None,
    ) -> None:
        super().__init__(local_config)
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0.0 <= mix_probability <= 1.0:
            raise ValueError(
                f"mix_probability must be in [0, 1], got {mix_probability}"
            )
        self.alpha = alpha
        self.mix_probability = mix_probability
        self.encoder = encoder or InvertibleEncoder(levels=1, seed=7)

    def _mix_batch(
        self, images: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """MixStyle: re-normalize each sample to a convex mix of its own and
        a shuffled partner's channel statistics."""
        if images.shape[0] < 2 or rng.random() > self.mix_probability:
            return images
        features = self.encoder.encode(images)
        mu, sigma = per_sample_style_stats(features)
        partner = rng.permutation(images.shape[0])
        lam = rng.beta(self.alpha, self.alpha, size=(images.shape[0], 1))
        mixed_mu = lam * mu + (1.0 - lam) * mu[partner]
        mixed_sigma = lam * sigma + (1.0 - lam) * sigma[partner]
        own_mu = mu[:, :, None, None]
        own_sigma = sigma[:, :, None, None]
        normalized = (features - own_mu) / (own_sigma + 1e-6)
        restyled = (
            normalized * mixed_sigma[:, :, None, None]
            + mixed_mu[:, :, None, None]
        )
        return self.encoder.decode(restyled)

    def train_client(
        self,
        client: Client,
        model: FeatureClassifierModel,
        round_index: int,
        rng: np.random.Generator,
    ) -> ClientUpdate:
        images = client.dataset.images
        labels = client.dataset.labels
        model.train()
        optimizer = self.local_config.make_optimizer(model)
        criterion = CrossEntropyLoss()
        losses: list[float] = []
        n = images.shape[0]
        for _ in range(self.local_config.local_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.local_config.batch_size):
                idx = order[start : start + self.local_config.batch_size]
                batch = self._mix_batch(images[idx], rng)
                model.zero_grad()
                logits = model.forward(batch)
                loss = criterion.forward(logits, labels[idx])
                model.backward(grad_logits=criterion.backward())
                optimizer.step()
                losses.append(loss)
        return ClientUpdate.from_client(
            client,
            model.state_dict(),
            float(np.mean(losses)) if losses else 0.0,
        )
