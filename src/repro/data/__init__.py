"""``repro.data`` — synthetic multi-domain datasets and FL partitioning.

Substitutes for PACS / Office-Home / IWildCam (no dataset downloads in the
sandbox; see DESIGN.md §2): shared class content rendered through per-domain
styles, plus the domain-based client-heterogeneity partitioner of Bai et al.
that the paper's experiments are built on.
"""

from repro.data.content import ContentBank, smooth_noise
from repro.data.styles import DomainStyle, render_images
from repro.data.synthetic import (
    DomainSuite,
    LabeledDataset,
    generate_domain_dataset,
)
from repro.data.registry import (
    OFFICE_HOME_DOMAINS,
    PACS_DOMAINS,
    synthetic_domain_sweep,
    synthetic_iwildcam,
    synthetic_office_home,
    synthetic_pacs,
    synthetic_skew,
)
from repro.data.partition import (
    ClientPartition,
    lodo_splits,
    ltdo_splits,
    partition_clients,
)
from repro.data.loader import Batcher

__all__ = [
    "ContentBank",
    "smooth_noise",
    "DomainStyle",
    "render_images",
    "DomainSuite",
    "LabeledDataset",
    "generate_domain_dataset",
    "synthetic_pacs",
    "synthetic_office_home",
    "synthetic_iwildcam",
    "synthetic_domain_sweep",
    "synthetic_skew",
    "PACS_DOMAINS",
    "OFFICE_HOME_DOMAINS",
    "ClientPartition",
    "partition_clients",
    "lodo_splits",
    "ltdo_splits",
    "Batcher",
]
