"""Image augmentations.

PARDON's v4 ablation replaces interpolation-style positives with "standard
contrastive learning with augmentation"; CCST-style pipelines likewise lean
on generic augmentation.  This module collects the augmentations in one
seeded, composable place so every method draws from the same definitions.

All transforms take and return NCHW batches and are pure functions of the
input plus an explicit generator.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "random_shift",
    "horizontal_flip",
    "gaussian_noise",
    "channel_jitter",
    "cutout",
    "compose",
    "standard_augmentation",
]

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def _check_batch(images: np.ndarray) -> None:
    if images.ndim != 4:
        raise ValueError(f"expected NCHW batch, got shape {images.shape}")


def random_shift(max_pixels: int = 2) -> Transform:
    """Circular spatial shift by up to ``max_pixels`` in each direction."""
    if max_pixels < 0:
        raise ValueError(f"max_pixels must be >= 0, got {max_pixels}")

    def apply(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _check_batch(images)
        dy = int(rng.integers(-max_pixels, max_pixels + 1))
        dx = int(rng.integers(-max_pixels, max_pixels + 1))
        return np.roll(images, (dy, dx), axis=(2, 3))

    return apply


def horizontal_flip(probability: float = 0.5) -> Transform:
    """Flip the whole batch left-right with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")

    def apply(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _check_batch(images)
        if rng.random() < probability:
            return images[:, :, :, ::-1].copy()
        return images

    return apply


def gaussian_noise(std: float = 0.1) -> Transform:
    """Additive white noise."""
    if std < 0:
        raise ValueError(f"std must be >= 0, got {std}")

    def apply(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _check_batch(images)
        if std == 0:
            return images
        return images + rng.normal(0.0, std, size=images.shape)

    return apply


def channel_jitter(gain_spread: float = 0.1, bias_spread: float = 0.1) -> Transform:
    """Per-channel affine jitter — a weak, label-preserving style wobble."""
    if gain_spread < 0 or bias_spread < 0:
        raise ValueError("spreads must be >= 0")

    def apply(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _check_batch(images)
        channels = images.shape[1]
        gains = np.exp(rng.uniform(-gain_spread, gain_spread, size=channels))
        biases = rng.uniform(-bias_spread, bias_spread, size=channels)
        return images * gains[None, :, None, None] + biases[None, :, None, None]

    return apply


def cutout(size: int = 4) -> Transform:
    """Zero a random square patch per batch (regularizing occlusion)."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")

    def apply(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        _check_batch(images)
        _, _, height, width = images.shape
        if size >= height or size >= width:
            raise ValueError(f"cutout size {size} too large for {height}x{width}")
        top = int(rng.integers(0, height - size + 1))
        left = int(rng.integers(0, width - size + 1))
        out = images.copy()
        out[:, :, top : top + size, left : left + size] = 0.0
        return out

    return apply


def compose(transforms: Sequence[Transform]) -> Transform:
    """Apply transforms left-to-right."""

    def apply(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in transforms:
            images = transform(images, rng)
        return images

    return apply


def standard_augmentation() -> Transform:
    """The v4-ablation recipe: small shift + noise (paper §IV-B-4)."""
    return compose([random_shift(2), gaussian_noise(0.1)])
