"""Minibatch iteration with seeded shuffling."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.synthetic import LabeledDataset

__all__ = ["Batcher"]


class Batcher:
    """Iterate a dataset in shuffled minibatches, reproducibly.

    Each call to :meth:`epoch` reshuffles with the generator handed in at
    construction, so a client's local epochs are deterministic under a fixed
    seed tree while still varying round to round.
    """

    def __init__(
        self,
        dataset: LabeledDataset,
        batch_size: int,
        rng: np.random.Generator,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.drop_last = drop_last
        self._rng = rng

    def __len__(self) -> int:
        """Number of batches per epoch."""
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def epoch(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(images, labels)`` minibatches for one shuffled epoch."""
        n = len(self.dataset)
        if n == 0:
            return
        order = self._rng.permutation(n)
        limit = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, limit, self.batch_size):
            indices = order[start : start + self.batch_size]
            yield self.dataset.images[indices], self.dataset.labels[indices]
