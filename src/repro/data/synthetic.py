"""Dataset containers and domain-suite generation.

:class:`LabeledDataset` is the in-memory unit every other subsystem consumes
(clients hold one; evaluation protocols hold one per held-out domain).
:class:`DomainSuite` bundles the per-domain datasets of one benchmark plus
its metadata and the train/val/test domain split (IWildCam-style suites hold
disjoint domain sets for the three roles, matching WILDS).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.content import ContentBank
from repro.data.styles import DomainStyle, render_images

__all__ = ["LabeledDataset", "DomainSuite", "generate_domain_dataset"]


@dataclass
class LabeledDataset:
    """Images with integer labels and the originating domain index per sample.

    ``images`` is NCHW float64; ``labels`` and ``domain_ids`` are 1-D int64.
    """

    images: np.ndarray
    labels: np.ndarray
    domain_ids: np.ndarray

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.domain_ids = np.asarray(self.domain_ids, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {self.images.shape}")
        n = self.images.shape[0]
        if self.labels.shape != (n,) or self.domain_ids.shape != (n,):
            raise ValueError(
                f"labels/domain_ids must both have shape ({n},); got "
                f"{self.labels.shape} and {self.domain_ids.shape}"
            )

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def subset(self, indices: np.ndarray) -> "LabeledDataset":
        """A new dataset containing the rows at ``indices`` (copies)."""
        indices = np.asarray(indices, dtype=np.int64)
        return LabeledDataset(
            images=self.images[indices].copy(),
            labels=self.labels[indices].copy(),
            domain_ids=self.domain_ids[indices].copy(),
        )

    @staticmethod
    def concatenate(datasets: list["LabeledDataset"]) -> "LabeledDataset":
        """Stack several datasets into one."""
        datasets = [d for d in datasets if len(d) > 0]
        if not datasets:
            raise ValueError("cannot concatenate zero non-empty datasets")
        return LabeledDataset(
            images=np.concatenate([d.images for d in datasets], axis=0),
            labels=np.concatenate([d.labels for d in datasets], axis=0),
            domain_ids=np.concatenate([d.domain_ids for d in datasets], axis=0),
        )

    def class_counts(self, num_classes: int) -> np.ndarray:
        """Histogram of labels over ``num_classes`` bins."""
        return np.bincount(self.labels, minlength=num_classes)


def generate_domain_dataset(
    content_bank: ContentBank,
    style: DomainStyle,
    domain_id: int,
    samples_per_class: np.ndarray | int,
    rng: np.random.Generator,
) -> LabeledDataset:
    """Render one domain: every class drawn through the domain's style.

    ``samples_per_class`` may be a scalar (balanced) or a per-class vector
    (long-tail domains, absent classes encoded as 0 — the IWildCam stand-in
    relies on this).
    """
    num_classes = content_bank.num_classes
    if np.isscalar(samples_per_class):
        counts = np.full(num_classes, int(samples_per_class), dtype=np.int64)
    else:
        counts = np.asarray(samples_per_class, dtype=np.int64)
        if counts.shape != (num_classes,):
            raise ValueError(
                f"samples_per_class must have {num_classes} entries, "
                f"got shape {counts.shape}"
            )
    if np.any(counts < 0):
        raise ValueError("samples_per_class must be non-negative")

    images_parts: list[np.ndarray] = []
    labels_parts: list[np.ndarray] = []
    for class_id, count in enumerate(counts):
        if count == 0:
            continue
        content = content_bank.sample(class_id, int(count), rng)
        images_parts.append(render_images(content, style, rng))
        labels_parts.append(np.full(int(count), class_id, dtype=np.int64))
    if not images_parts:
        size = content_bank.image_size
        return LabeledDataset(
            images=np.zeros((0, 3, size, size)),
            labels=np.zeros(0, dtype=np.int64),
            domain_ids=np.zeros(0, dtype=np.int64),
        )
    images = np.concatenate(images_parts, axis=0)
    labels = np.concatenate(labels_parts, axis=0)
    domain_ids = np.full(labels.shape[0], domain_id, dtype=np.int64)
    return LabeledDataset(images=images, labels=labels, domain_ids=domain_ids)


@dataclass
class DomainSuite:
    """A complete multi-domain benchmark.

    Attributes
    ----------
    name:
        Suite name (``synthetic_pacs`` etc.).
    num_classes / image_shape:
        Shared across all domains.
    domain_names:
        Index-aligned names for every domain in the suite.
    datasets:
        One :class:`LabeledDataset` per domain, aligned with ``domain_names``.
    train_domains / val_domains / test_domains:
        Role assignment by domain *index*.  PACS/Office-Home-style suites put
        every domain in ``train_domains`` and leave the split to the LODO /
        LTDO protocol; the IWildCam-style suite fixes disjoint sets.
    """

    name: str
    num_classes: int
    image_shape: tuple[int, int, int]
    domain_names: list[str]
    datasets: list[LabeledDataset]
    train_domains: list[int] = field(default_factory=list)
    val_domains: list[int] = field(default_factory=list)
    test_domains: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.domain_names) != len(self.datasets):
            raise ValueError("domain_names and datasets must align")
        for name, dataset in zip(self.domain_names, self.datasets):
            if len(dataset) and dataset.image_shape != self.image_shape:
                raise ValueError(
                    f"domain {name} has image shape {dataset.image_shape}, "
                    f"suite expects {self.image_shape}"
                )

    @property
    def num_domains(self) -> int:
        return len(self.domain_names)

    def domain_index(self, name: str) -> int:
        """Index of the domain called ``name``."""
        try:
            return self.domain_names.index(name)
        except ValueError:
            raise KeyError(
                f"unknown domain {name!r}; have {self.domain_names}"
            ) from None

    def dataset_for(self, name_or_index: str | int) -> LabeledDataset:
        """Dataset of one domain by name or index."""
        if isinstance(name_or_index, str):
            return self.datasets[self.domain_index(name_or_index)]
        return self.datasets[int(name_or_index)]

    def merged(self, domain_indices: list[int]) -> LabeledDataset:
        """Union of several domains' data (e.g. the LODO training pool)."""
        if not domain_indices:
            raise ValueError("domain_indices must not be empty")
        return LabeledDataset.concatenate(
            [self.datasets[i] for i in domain_indices]
        )
