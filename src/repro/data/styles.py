"""Domain *style* model: how a domain renders shared content into RGB images.

A :class:`DomainStyle` is a parametric rendering: colourization of the
grayscale content into three channels, per-channel gain/bias, a contrast
exponent, a domain-specific periodic texture, and sensor noise.  All of these
shift the per-channel feature statistics — exactly the kind of covariate
shift AdaIN-based style transfer (paper §III-B) is designed to capture and
neutralize — while leaving the spatial content that defines the label intact.

``DomainStyle.random`` draws a style from a seeded generator; the registry
uses hand-shaped priors per dataset (e.g. the "sketch" domain of the PACS
stand-in is desaturated and high-contrast, "photo" is neutral).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DomainStyle", "render_images"]


@dataclass(frozen=True)
class DomainStyle:
    """Parameters of one domain's rendering pipeline.

    Attributes
    ----------
    name:
        Domain name (e.g. ``"art_painting"``).
    color_weights:
        Shape ``(3,)`` — how strongly the content map drives each channel.
    channel_gain / channel_bias:
        Shape ``(3,)`` — per-channel affine applied after colourization; the
        dominant source of style shift.
    contrast:
        Exponent applied to normalized magnitude (1.0 = linear).
    texture_amp / texture_freq / texture_angle:
        Additive oriented sinusoidal texture (amplitude, spatial frequency in
        cycles per image, orientation in radians).
    noise_std:
        Per-pixel Gaussian sensor noise.
    """

    name: str
    color_weights: tuple[float, float, float]
    channel_gain: tuple[float, float, float]
    channel_bias: tuple[float, float, float]
    contrast: float = 1.0
    texture_amp: float = 0.0
    texture_freq: float = 0.0
    texture_angle: float = 0.0
    noise_std: float = 0.05

    def __post_init__(self) -> None:
        if len(self.color_weights) != 3:
            raise ValueError("color_weights must have 3 entries")
        if len(self.channel_gain) != 3 or len(self.channel_bias) != 3:
            raise ValueError("channel_gain/channel_bias must have 3 entries")
        if self.contrast <= 0:
            raise ValueError(f"contrast must be positive, got {self.contrast}")
        if self.noise_std < 0:
            raise ValueError(f"noise_std must be >= 0, got {self.noise_std}")

    @staticmethod
    def random(
        name: str,
        rng: np.random.Generator,
        gain_spread: float = 0.6,
        bias_spread: float = 0.5,
        texture_max: float = 0.3,
    ) -> "DomainStyle":
        """Draw a random style; spreads control how far domains sit apart."""
        gains = np.exp(rng.uniform(-gain_spread, gain_spread, size=3))
        biases = rng.uniform(-bias_spread, bias_spread, size=3)
        colors = rng.uniform(0.4, 1.0, size=3)
        return DomainStyle(
            name=name,
            color_weights=tuple(float(c) for c in colors),
            channel_gain=tuple(float(g) for g in gains),
            channel_bias=tuple(float(b) for b in biases),
            contrast=float(np.exp(rng.uniform(-0.3, 0.3))),
            texture_amp=float(rng.uniform(0.0, texture_max)),
            texture_freq=float(rng.uniform(1.0, 4.0)),
            texture_angle=float(rng.uniform(0.0, np.pi)),
            noise_std=float(rng.uniform(0.02, 0.08)),
        )

    def texture_field(self, height: int, width: int) -> np.ndarray:
        """The domain's oriented sinusoidal texture, shape ``(height, width)``."""
        if self.texture_amp == 0.0:
            return np.zeros((height, width))
        ys, xs = np.mgrid[0:height, 0:width]
        ys = ys / height
        xs = xs / width
        projection = xs * np.cos(self.texture_angle) + ys * np.sin(self.texture_angle)
        return self.texture_amp * np.sin(2.0 * np.pi * self.texture_freq * projection)


def render_images(
    content: np.ndarray, style: DomainStyle, rng: np.random.Generator
) -> np.ndarray:
    """Render content maps ``(n, H, W)`` into styled RGB images ``(n, 3, H, W)``.

    Pipeline per sample: contrast-warp the content, colourize into three
    channels, apply the per-channel affine, add the domain texture, add
    sensor noise.
    """
    if content.ndim != 3:
        raise ValueError(f"content must be (n, H, W), got shape {content.shape}")
    count, height, width = content.shape
    warped = np.sign(content) * np.abs(content) ** style.contrast
    color = np.asarray(style.color_weights)[None, :, None, None]
    gain = np.asarray(style.channel_gain)[None, :, None, None]
    bias = np.asarray(style.channel_bias)[None, :, None, None]
    images = warped[:, None, :, :] * color
    images = images * gain + bias
    images = images + style.texture_field(height, width)[None, None, :, :]
    if style.noise_std > 0:
        images = images + rng.normal(0.0, style.noise_std, size=images.shape)
    return images
