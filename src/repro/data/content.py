"""Class *content* generation for the synthetic multi-domain datasets.

Domain generalization assumes every domain shares the same label-defining
content while rendering it in a different style (paper Definition 3: the
conditional feature distribution ``P(x|y)`` shifts across domains while the
content semantics stay fixed).  This module produces the content half of that
factorization: each class owns a smooth spatial *prototype pattern*, and each
sample is the prototype plus bounded content jitter (shifts and smooth noise),
rendered as a single-channel map in roughly ``[-1, 1]``.

The style half — how a domain colours, textures, and exposes that content —
lives in :mod:`repro.data.styles`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ContentBank", "smooth_noise"]


def smooth_noise(
    height: int, width: int, rng: np.random.Generator, cutoff: int = 3
) -> np.ndarray:
    """Low-frequency random field in roughly [-1, 1].

    Built from a handful of random Fourier components below ``cutoff`` so the
    result is smooth at any resolution — a cheap stand-in for natural-image
    content statistics.
    """
    ys = np.linspace(0.0, 2.0 * np.pi, height, endpoint=False)
    xs = np.linspace(0.0, 2.0 * np.pi, width, endpoint=False)
    grid_y, grid_x = np.meshgrid(ys, xs, indexing="ij")
    field = np.zeros((height, width))
    for fy in range(cutoff):
        for fx in range(cutoff):
            if fy == 0 and fx == 0:
                continue
            amplitude = rng.normal() / (1.0 + fy + fx)
            phase = rng.uniform(0.0, 2.0 * np.pi)
            field += amplitude * np.cos(fy * grid_y + fx * grid_x + phase)
    peak = np.max(np.abs(field))
    if peak > 0:
        field /= peak
    return field


class ContentBank:
    """Per-class content prototypes plus a sampler for jittered instances.

    Parameters
    ----------
    num_classes:
        Number of classes; each gets an independent prototype.
    image_size:
        Side length of the square content map.
    rng:
        Generator that fixes the prototypes; two banks built from equal seeds
        are identical, which is how every federated client (and the unseen
        test domains) share one ground-truth content space.
    jitter:
        Standard deviation of the smooth additive content noise.
    """

    def __init__(
        self,
        num_classes: int,
        image_size: int,
        rng: np.random.Generator,
        jitter: float = 0.25,
    ) -> None:
        if num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {num_classes}")
        if image_size < 4:
            raise ValueError(f"image_size must be >= 4, got {image_size}")
        self.num_classes = num_classes
        self.image_size = image_size
        self.jitter = jitter
        self.prototypes = np.stack(
            [
                self._make_prototype(class_id, rng)
                for class_id in range(num_classes)
            ]
        )

    def _make_prototype(self, class_id: int, rng: np.random.Generator) -> np.ndarray:
        """One class prototype: smooth field plus a class-keyed geometric cue.

        The geometric cue (an oriented bar whose angle/offset is derived from
        the class index) guarantees prototypes stay discriminable even when
        many classes share similar smooth components — important for the
        65-class Office-Home and long-tail IWildCam stand-ins.
        """
        size = self.image_size
        base = smooth_noise(size, size, rng)
        ys, xs = np.mgrid[0:size, 0:size]
        ys = (ys - size / 2.0) / size
        xs = (xs - size / 2.0) / size
        angle = 2.0 * np.pi * class_id / max(self.num_classes, 1)
        offset = 0.35 * np.sin(3.0 * angle)
        bar = np.exp(
            -(((xs * np.cos(angle) + ys * np.sin(angle)) - offset) ** 2) / 0.02
        )
        blob_x = 0.3 * np.cos(angle * 2.0)
        blob_y = 0.3 * np.sin(angle * 2.0)
        blob = np.exp(-((xs - blob_x) ** 2 + (ys - blob_y) ** 2) / 0.03)
        pattern = 0.5 * base + 1.2 * bar + 0.9 * blob
        peak = np.max(np.abs(pattern))
        return pattern / peak if peak > 0 else pattern

    def sample(
        self, class_id: int, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``count`` jittered content maps for ``class_id``.

        Jitter consists of a circular shift of up to 1/8 of the image (small
        translations preserve class identity) and a smooth additive field.
        Output shape is ``(count, image_size, image_size)``.
        """
        if not 0 <= class_id < self.num_classes:
            raise ValueError(
                f"class_id {class_id} out of range [0, {self.num_classes})"
            )
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        prototype = self.prototypes[class_id]
        max_shift = max(self.image_size // 8, 1)
        samples = np.empty((count, self.image_size, self.image_size))
        for index in range(count):
            shift_y = int(rng.integers(-max_shift, max_shift + 1))
            shift_x = int(rng.integers(-max_shift, max_shift + 1))
            shifted = np.roll(prototype, (shift_y, shift_x), axis=(0, 1))
            noise = smooth_noise(self.image_size, self.image_size, rng)
            samples[index] = shifted + self.jitter * noise
        return samples
