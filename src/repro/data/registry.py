"""Builders for the three benchmark suites used in the paper's evaluation.

Each builder mirrors the structure of the real dataset (domain count, class
count, split roles) at a scale a numpy training stack can handle; DESIGN.md §2
documents the substitution.  Styles are *hand-shaped* per suite so the
domains carry the qualitative character of their namesakes (e.g. the PACS
"sketch" stand-in is desaturated and high-contrast, "photo" is neutral), and
every builder accepts a seed so experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.data.content import ContentBank
from repro.data.styles import DomainStyle
from repro.data.synthetic import DomainSuite, LabeledDataset, generate_domain_dataset
from repro.utils.rng import SeedTree

__all__ = [
    "synthetic_pacs",
    "synthetic_office_home",
    "synthetic_iwildcam",
    "synthetic_domain_sweep",
    "synthetic_skew",
    "PACS_DOMAINS",
    "OFFICE_HOME_DOMAINS",
]

PACS_DOMAINS = ["photo", "art_painting", "cartoon", "sketch"]
OFFICE_HOME_DOMAINS = ["art", "clipart", "product", "real_world"]

# Hand-shaped styles: large, *qualitatively distinct* channel statistics per
# domain.  These numbers are the domain gap; tests assert they differ.
_PACS_STYLES = {
    "photo": DomainStyle(
        name="photo",
        color_weights=(0.9, 0.85, 0.8),
        channel_gain=(1.0, 1.0, 1.0),
        channel_bias=(0.0, 0.0, 0.0),
        contrast=1.0,
        texture_amp=0.05,
        texture_freq=2.0,
        texture_angle=0.3,
        noise_std=0.05,
    ),
    "art_painting": DomainStyle(
        name="art_painting",
        color_weights=(1.0, 0.6, 0.9),
        channel_gain=(1.5, 0.8, 1.2),
        channel_bias=(0.3, -0.1, 0.2),
        contrast=0.8,
        texture_amp=0.25,
        texture_freq=3.0,
        texture_angle=1.1,
        noise_std=0.06,
    ),
    "cartoon": DomainStyle(
        name="cartoon",
        color_weights=(0.7, 1.0, 0.5),
        channel_gain=(0.7, 1.6, 0.9),
        channel_bias=(-0.3, 0.4, -0.2),
        contrast=1.6,
        texture_amp=0.1,
        texture_freq=1.0,
        texture_angle=2.2,
        noise_std=0.03,
    ),
    "sketch": DomainStyle(
        name="sketch",
        color_weights=(0.5, 0.5, 0.5),
        channel_gain=(0.45, 0.45, 0.5),
        channel_bias=(0.55, 0.55, 0.6),
        contrast=2.2,
        texture_amp=0.08,
        texture_freq=4.0,
        texture_angle=0.7,
        noise_std=0.04,
    ),
}

_OFFICE_HOME_STYLES = {
    "art": DomainStyle(
        name="art",
        color_weights=(1.0, 0.7, 0.8),
        channel_gain=(1.4, 0.9, 1.1),
        channel_bias=(0.25, -0.05, 0.15),
        contrast=0.85,
        texture_amp=0.2,
        texture_freq=2.5,
        texture_angle=0.9,
        noise_std=0.05,
    ),
    "clipart": DomainStyle(
        name="clipart",
        color_weights=(0.8, 1.0, 0.6),
        channel_gain=(0.8, 1.5, 0.8),
        channel_bias=(-0.25, 0.35, -0.15),
        contrast=1.7,
        texture_amp=0.05,
        texture_freq=1.5,
        texture_angle=2.0,
        noise_std=0.03,
    ),
    "product": DomainStyle(
        name="product",
        color_weights=(0.85, 0.85, 0.9),
        channel_gain=(1.1, 1.05, 1.15),
        channel_bias=(0.45, 0.45, 0.5),
        contrast=1.2,
        texture_amp=0.02,
        texture_freq=1.0,
        texture_angle=0.0,
        noise_std=0.02,
    ),
    "real_world": DomainStyle(
        name="real_world",
        color_weights=(0.9, 0.85, 0.75),
        channel_gain=(1.0, 0.95, 0.9),
        channel_bias=(0.05, 0.0, -0.05),
        contrast=1.0,
        texture_amp=0.12,
        texture_freq=3.5,
        texture_angle=1.6,
        noise_std=0.07,
    ),
}


def _build_suite(
    name: str,
    styles: dict[str, DomainStyle],
    num_classes: int,
    samples_per_class: int,
    image_size: int,
    seed: int,
) -> DomainSuite:
    tree = SeedTree(seed).child(name)
    bank = ContentBank(num_classes, image_size, tree.generator("content"))
    datasets: list[LabeledDataset] = []
    domain_names = list(styles)
    for domain_id, domain_name in enumerate(domain_names):
        datasets.append(
            generate_domain_dataset(
                content_bank=bank,
                style=styles[domain_name],
                domain_id=domain_id,
                samples_per_class=samples_per_class,
                rng=tree.generator("domain", domain_name),
            )
        )
    return DomainSuite(
        name=name,
        num_classes=num_classes,
        image_shape=(3, image_size, image_size),
        domain_names=domain_names,
        datasets=datasets,
        train_domains=list(range(len(domain_names))),
    )


def synthetic_pacs(
    seed: int = 0, samples_per_class: int = 40, image_size: int = 16
) -> DomainSuite:
    """PACS stand-in: 4 domains (photo/art_painting/cartoon/sketch), 7 classes."""
    return _build_suite(
        "synthetic_pacs", _PACS_STYLES, 7, samples_per_class, image_size, seed
    )


def synthetic_office_home(
    seed: int = 0, samples_per_class: int = 6, image_size: int = 16
) -> DomainSuite:
    """Office-Home stand-in: 4 domains (art/clipart/product/real_world), 65 classes.

    Like the real Office-Home, samples per class are scarce relative to the
    class count, which is what makes the benchmark harder than PACS.
    """
    return _build_suite(
        "synthetic_office_home",
        _OFFICE_HOME_STYLES,
        65,
        samples_per_class,
        image_size,
        seed,
    )


def synthetic_iwildcam(
    seed: int = 0,
    num_train_domains: int = 24,
    num_val_domains: int = 6,
    num_test_domains: int = 8,
    num_classes: int = 30,
    mean_samples_per_domain: int = 60,
    image_size: int = 16,
) -> DomainSuite:
    """IWildCam stand-in: many camera domains, long-tail classes, 3-way split.

    Mirrors WILDS IWildCam structure (243/32/48 domains, 182 classes) at a
    tractable scale while keeping the properties the paper's Table III leans
    on: far more domains than PACS, random per-camera styles, a shared
    long-tail class prior, and per-domain class subsets (most cameras never
    see most species).
    """
    total_domains = num_train_domains + num_val_domains + num_test_domains
    if min(num_train_domains, num_val_domains, num_test_domains) < 1:
        raise ValueError("every split needs at least one domain")
    tree = SeedTree(seed).child("synthetic_iwildcam")
    bank = ContentBank(num_classes, image_size, tree.generator("content"))

    # Long-tail class prior shared by all cameras (Zipf-like).
    prior = 1.0 / np.arange(1, num_classes + 1) ** 1.2
    prior = prior / prior.sum()

    datasets: list[LabeledDataset] = []
    domain_names: list[str] = []
    for domain_id in range(total_domains):
        domain_name = f"camera_{domain_id:03d}"
        domain_names.append(domain_name)
        style_rng = tree.generator("style", domain_id)
        style = DomainStyle.random(domain_name, style_rng, gain_spread=0.8)
        counts_rng = tree.generator("counts", domain_id)
        # Each camera sees a random subset of species, with long-tail counts.
        n_present = int(counts_rng.integers(num_classes // 3, num_classes + 1))
        present = counts_rng.choice(num_classes, size=n_present, replace=False)
        weights = prior[present] / prior[present].sum()
        total = max(
            int(counts_rng.poisson(mean_samples_per_domain)), num_classes // 3
        )
        draws = counts_rng.multinomial(total, weights)
        samples_per_class = np.zeros(num_classes, dtype=np.int64)
        samples_per_class[present] = draws
        datasets.append(
            generate_domain_dataset(
                content_bank=bank,
                style=style,
                domain_id=domain_id,
                samples_per_class=samples_per_class,
                rng=tree.generator("domain", domain_id),
            )
        )

    train = list(range(num_train_domains))
    val = list(range(num_train_domains, num_train_domains + num_val_domains))
    test = list(range(num_train_domains + num_val_domains, total_domains))
    return DomainSuite(
        name="synthetic_iwildcam",
        num_classes=num_classes,
        image_shape=(3, image_size, image_size),
        domain_names=domain_names,
        datasets=datasets,
        train_domains=train,
        val_domains=val,
        test_domains=test,
    )


def synthetic_domain_sweep(
    seed: int = 0,
    num_domains: int = 6,
    num_classes: int = 8,
    samples_per_class: int = 20,
    image_size: int = 16,
    gain_spread: float = 0.8,
) -> DomainSuite:
    """Domain-count sweep suite: ``num_domains`` randomly styled domains,
    balanced classes.

    Where PACS/Office-Home pin the domain count at 4, this builder makes
    the count a knob — the scenario axis the alignment-flavoured methods
    (FedAlign, FedCCRL) are most sensitive to, since their fused per-class
    targets average over more, and more diverse, client geometries as
    domains multiply.  ``gain_spread`` widens the random style gap.
    """
    if num_domains < 2:
        raise ValueError(f"need at least 2 domains, got {num_domains}")
    tree = SeedTree(seed).child("synthetic_domain_sweep")
    bank = ContentBank(num_classes, image_size, tree.generator("content"))
    datasets: list[LabeledDataset] = []
    domain_names: list[str] = []
    for domain_id in range(num_domains):
        domain_name = f"domain_{domain_id:02d}"
        domain_names.append(domain_name)
        style = DomainStyle.random(
            domain_name, tree.generator("style", domain_id),
            gain_spread=gain_spread,
        )
        datasets.append(
            generate_domain_dataset(
                content_bank=bank,
                style=style,
                domain_id=domain_id,
                samples_per_class=samples_per_class,
                rng=tree.generator("domain", domain_id),
            )
        )
    return DomainSuite(
        name="synthetic_domain_sweep",
        num_classes=num_classes,
        image_shape=(3, image_size, image_size),
        domain_names=domain_names,
        datasets=datasets,
        train_domains=list(range(num_domains)),
    )


def synthetic_skew(
    seed: int = 0,
    num_domains: int = 4,
    num_classes: int = 8,
    samples_per_class: int = 20,
    image_size: int = 16,
    label_skew: float = 3.0,
    style_spread: float = 0.8,
) -> DomainSuite:
    """Label/style-skew sweep suite: each domain draws its class histogram
    from a Dirichlet prior with concentration ``1 / label_skew``.

    ``label_skew`` close to 0 gives near-balanced domains; large values
    concentrate each domain on a few classes (some classes absent
    entirely), which is the regime that separates payload-carrying
    methods — fused per-class targets and prototypes must then be
    assembled across clients that each see only a class *subset*.
    ``style_spread`` widens the random style gap the same way
    ``gain_spread`` does for the camera suite.
    """
    if num_domains < 2:
        raise ValueError(f"need at least 2 domains, got {num_domains}")
    if label_skew <= 0:
        raise ValueError(f"label_skew must be > 0, got {label_skew}")
    tree = SeedTree(seed).child("synthetic_skew")
    bank = ContentBank(num_classes, image_size, tree.generator("content"))
    total_per_domain = num_classes * samples_per_class
    datasets: list[LabeledDataset] = []
    domain_names: list[str] = []
    for domain_id in range(num_domains):
        domain_name = f"skew_{domain_id:02d}"
        domain_names.append(domain_name)
        style = DomainStyle.random(
            domain_name, tree.generator("style", domain_id),
            gain_spread=style_spread,
        )
        counts_rng = tree.generator("counts", domain_id)
        weights = counts_rng.dirichlet(np.full(num_classes, 1.0 / label_skew))
        counts = counts_rng.multinomial(total_per_domain, weights)
        datasets.append(
            generate_domain_dataset(
                content_bank=bank,
                style=style,
                domain_id=domain_id,
                samples_per_class=counts.astype(np.int64),
                rng=tree.generator("domain", domain_id),
            )
        )
    return DomainSuite(
        name="synthetic_skew",
        num_classes=num_classes,
        image_shape=(3, image_size, image_size),
        domain_names=domain_names,
        datasets=datasets,
        train_domains=list(range(num_domains)),
    )
