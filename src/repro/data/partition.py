"""Domain-based client heterogeneity partitioning (paper Definition 4).

Following the benchmark of Bai et al. (ICLR 2024) the paper builds on, each
client's data distribution is a mixture of training-domain distributions
``D_i = sum_d w_{i,d} * S_d``.  The mixing is controlled by a single
heterogeneity level ``lambda``:

* ``lambda = 0`` — *domain separation*: every client draws from exactly one
  domain (its "home" domain, assigned round-robin so all domains are covered);
* ``lambda = 1`` — *homogeneous*: every client draws from the uniform mixture
  over all training domains;
* intermediate values interpolate the mixture weights linearly:
  ``w_i = (1 - lambda) * onehot(home_i) + lambda * uniform``.

Samples are assigned without replacement, conserving every sample exactly
once across clients — an invariant the property tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import DomainSuite, LabeledDataset

__all__ = ["ClientPartition", "partition_clients", "lodo_splits", "ltdo_splits"]


@dataclass
class ClientPartition:
    """The result of partitioning: one dataset per client plus bookkeeping."""

    client_datasets: list[LabeledDataset]
    home_domains: list[int]
    mixture_weights: np.ndarray  # (n_clients, n_domains), rows sum to 1

    @property
    def num_clients(self) -> int:
        return len(self.client_datasets)

    def client_sizes(self) -> list[int]:
        return [len(dataset) for dataset in self.client_datasets]


def partition_clients(
    suite: DomainSuite,
    train_domain_indices: list[int],
    num_clients: int,
    heterogeneity: float,
    rng: np.random.Generator,
) -> ClientPartition:
    """Split the training domains' data across ``num_clients`` clients.

    Parameters
    ----------
    suite:
        The domain suite to partition.
    train_domain_indices:
        Which domains participate in training (the LODO/LTDO train split).
    num_clients:
        Number of federated clients ``N``.
    heterogeneity:
        The ``lambda`` level in [0, 1]; see module docstring.
    rng:
        Controls home-domain assignment shuffling and sample routing.
    """
    if not 0.0 <= heterogeneity <= 1.0:
        raise ValueError(f"heterogeneity must be in [0, 1], got {heterogeneity}")
    if num_clients < 1:
        raise ValueError(f"need at least one client, got {num_clients}")
    if not train_domain_indices:
        raise ValueError("train_domain_indices must not be empty")

    n_domains = len(train_domain_indices)
    # Home domains: round-robin over a shuffled client order so every domain
    # has clients even when num_clients >> n_domains.
    order = rng.permutation(num_clients)
    home = np.empty(num_clients, dtype=np.int64)
    for position, client in enumerate(order):
        home[client] = position % n_domains

    uniform = np.full(n_domains, 1.0 / n_domains)
    weights = np.zeros((num_clients, n_domains))
    for client in range(num_clients):
        onehot = np.zeros(n_domains)
        onehot[home[client]] = 1.0
        weights[client] = (1.0 - heterogeneity) * onehot + heterogeneity * uniform

    # Route each domain's samples to clients proportionally to the clients'
    # weight on that domain (largest-remainder apportionment, then shuffle).
    per_client_indices: list[list[tuple[int, np.ndarray]]] = [
        [] for _ in range(num_clients)
    ]
    for local_domain, domain_index in enumerate(train_domain_indices):
        dataset = suite.datasets[domain_index]
        n_samples = len(dataset)
        if n_samples == 0:
            continue
        share = weights[:, local_domain]
        total_share = share.sum()
        if total_share <= 0:
            # No client carries weight on this domain (possible when
            # num_clients < num_domains at lambda = 0).  Every sample must
            # still land somewhere: spread the domain uniformly.
            share = np.full(num_clients, 1.0)
            total_share = float(num_clients)
        quota = share / total_share * n_samples
        counts = np.floor(quota).astype(np.int64)
        remainder = n_samples - counts.sum()
        if remainder > 0:
            fractional = quota - counts
            # Break ties randomly but reproducibly.
            order = np.argsort(-(fractional + 1e-9 * rng.random(num_clients)))
            counts[order[:remainder]] += 1
        sample_order = rng.permutation(n_samples)
        offset = 0
        for client in range(num_clients):
            take = counts[client]
            if take:
                per_client_indices[client].append(
                    (domain_index, sample_order[offset : offset + take])
                )
                offset += take

    client_datasets: list[LabeledDataset] = []
    empty_shape = (0,) + suite.image_shape
    for client in range(num_clients):
        parts = [
            suite.datasets[domain_index].subset(indices)
            for domain_index, indices in per_client_indices[client]
        ]
        parts = [p for p in parts if len(p)]
        if parts:
            client_datasets.append(LabeledDataset.concatenate(parts))
        else:
            client_datasets.append(
                LabeledDataset(
                    images=np.zeros(empty_shape),
                    labels=np.zeros(0, dtype=np.int64),
                    domain_ids=np.zeros(0, dtype=np.int64),
                )
            )
    return ClientPartition(
        client_datasets=client_datasets,
        home_domains=[int(h) for h in home],
        mixture_weights=weights,
    )


def lodo_splits(num_domains: int) -> list[dict[str, list[int]]]:
    """Leave-One-Domain-Out splits (paper Table II).

    For each domain ``d``: train on all others, validate/test on ``d``.
    """
    if num_domains < 2:
        raise ValueError("LODO needs at least 2 domains")
    splits = []
    for held_out in range(num_domains):
        train = [d for d in range(num_domains) if d != held_out]
        splits.append({"train": train, "val": [held_out], "test": [held_out]})
    return splits


def ltdo_splits(num_domains: int) -> list[dict[str, list[int]]]:
    """Leave-Two-Domains-Out splits (paper Table I, after Bai et al.).

    A rotation scheme in which every domain appears exactly once as the
    validation domain and exactly once as the test domain: split ``i`` holds
    out ``(val=i, test=i+1 mod M)`` and trains on the remaining ``M - 2``.
    """
    if num_domains < 3:
        raise ValueError("LTDO needs at least 3 domains")
    splits = []
    for index in range(num_domains):
        val = index
        test = (index + 1) % num_domains
        train = [d for d in range(num_domains) if d not in (val, test)]
        splits.append({"train": train, "val": [val], "test": [test]})
    return splits
