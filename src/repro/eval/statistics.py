"""Multi-seed experiment statistics.

Single federated runs at this scale are noisy (a few points of accuracy);
the benchmark tables therefore average across seeds.  This module provides
the aggregation used there plus paired-comparison helpers for stating
"method A beats method B" with the run-to-run variance in view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["SeedSweepResult", "sweep_seeds", "paired_win_rate", "mean_std"]


@dataclass
class SeedSweepResult:
    """Accuracies of one configuration across seeds."""

    values: list[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values))

    @property
    def count(self) -> int:
        return len(self.values)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI of the mean."""
        if self.count < 2:
            return (self.mean, self.mean)
        half = z * self.std / np.sqrt(self.count)
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        return f"{self.mean:.3f}±{self.std:.3f} (n={self.count})"


def sweep_seeds(
    run: Callable[[int], float], seeds: Sequence[int]
) -> SeedSweepResult:
    """Evaluate ``run(seed)`` for every seed and collect the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    return SeedSweepResult(values=[float(run(seed)) for seed in seeds])


def paired_win_rate(a: Sequence[float], b: Sequence[float]) -> float:
    """Fraction of seeds where ``a`` strictly beats ``b`` (paired by index).

    1.0 means A won on every seed; 0.5 is a coin flip.  Ties count half.
    """
    if len(a) != len(b):
        raise ValueError("paired sequences must have equal length")
    if not a:
        raise ValueError("need at least one pair")
    wins = sum(1.0 if x > y else (0.5 if x == y else 0.0) for x, y in zip(a, b))
    return wins / len(a)


def mean_std(values: Sequence[float]) -> str:
    """Render ``mean±std`` the way the ablation tables print it."""
    if not values:
        raise ValueError("need at least one value")
    return f"{np.mean(values):.3f}±{np.std(values):.3f}"
