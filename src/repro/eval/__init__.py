"""``repro.eval`` — evaluation protocols, metrics, and landscape tooling."""

from repro.eval.metrics import evaluate_accuracy, evaluate_loss, per_class_accuracy
from repro.eval.protocols import (
    ExperimentSetting,
    SplitOutcome,
    make_clients,
    run_fixed_split_protocol,
    run_lodo_protocol,
    run_ltdo_protocol,
    run_split_experiment,
)
from repro.eval.landscape import (
    LandscapeSlice,
    client_minima_divergence,
    loss_landscape_slice,
)
from repro.eval.statistics import (
    SeedSweepResult,
    mean_std,
    paired_win_rate,
    sweep_seeds,
)

__all__ = [
    "SeedSweepResult",
    "sweep_seeds",
    "paired_win_rate",
    "mean_std",
    "evaluate_accuracy",
    "evaluate_loss",
    "per_class_accuracy",
    "ExperimentSetting",
    "SplitOutcome",
    "make_clients",
    "run_split_experiment",
    "run_lodo_protocol",
    "run_ltdo_protocol",
    "run_fixed_split_protocol",
    "LandscapeSlice",
    "loss_landscape_slice",
    "client_minima_divergence",
]
