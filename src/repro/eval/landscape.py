"""Loss-landscape slices (paper Fig. 1).

Fig. 1 visualizes each client's local loss around the global weights for
naive training versus PARDON, arguing PARDON's local optima sit closer to a
shared (global) optimum.  We reproduce the quantitative content: a 2-D loss
surface over a filter-normalized random plane through a weight vector
(Li et al., "Visualizing the Loss Landscape of Neural Nets"), plus summary
statistics — where each client's minimum lies in that plane and how far the
clients' minima are from each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import LabeledDataset
from repro.fl.evaluation import evaluate_loss
from repro.nn.models import FeatureClassifierModel
from repro.nn.serialize import StateDict, flatten_state, unflatten_state

__all__ = [
    "LandscapeSlice",
    "loss_landscape_slice",
    "client_minima_divergence",
    "surface_divergence",
]


@dataclass
class LandscapeSlice:
    """A grid of losses over the plane spanned by two directions."""

    alphas: np.ndarray  # (G,)
    betas: np.ndarray  # (G,)
    losses: np.ndarray  # (G, G): losses[i, j] at (alphas[i], betas[j])

    def minimum_position(self) -> tuple[float, float]:
        """(alpha, beta) of the lowest loss on the grid."""
        index = np.unravel_index(np.argmin(self.losses), self.losses.shape)
        return float(self.alphas[index[0]]), float(self.betas[index[1]])

    def center_loss(self) -> float:
        """Loss at the plane origin (the probed weight vector itself)."""
        center = len(self.alphas) // 2, len(self.betas) // 2
        return float(self.losses[center])

    def sharpness(self) -> float:
        """Mean loss increase over the grid relative to the center —
        a scale-free flatness proxy."""
        return float(np.mean(self.losses) - self.center_loss())


def _random_directions(
    reference: StateDict, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Two orthogonal, filter-normalized random directions in weight space."""
    flat = flatten_state(reference)
    d1 = rng.normal(size=flat.shape)
    d2 = rng.normal(size=flat.shape)
    # Gram-Schmidt, then scale each direction to the weights' norm so the
    # plane units are comparable across models.
    d1 /= np.linalg.norm(d1)
    d2 -= (d2 @ d1) * d1
    d2 /= np.linalg.norm(d2)
    scale = np.linalg.norm(flat)
    return d1 * scale, d2 * scale


def loss_landscape_slice(
    model: FeatureClassifierModel,
    center_state: StateDict,
    dataset: LabeledDataset,
    rng: np.random.Generator,
    radius: float = 0.5,
    grid_points: int = 11,
) -> LandscapeSlice:
    """Evaluate the dataset loss over a random plane through ``center_state``.

    The model's weights are restored to ``center_state`` before returning.
    """
    if grid_points < 3 or grid_points % 2 == 0:
        raise ValueError("grid_points must be an odd integer >= 3")
    d1, d2 = _random_directions(center_state, rng)
    center_flat = flatten_state(center_state)
    alphas = np.linspace(-radius, radius, grid_points)
    betas = np.linspace(-radius, radius, grid_points)
    losses = np.empty((grid_points, grid_points))
    for i, alpha in enumerate(alphas):
        for j, beta in enumerate(betas):
            shifted = center_flat + alpha * d1 + beta * d2
            model.load_state_dict(unflatten_state(shifted, center_state))
            losses[i, j] = evaluate_loss(model, dataset)
    model.load_state_dict(center_state)
    return LandscapeSlice(alphas=alphas, betas=betas, losses=losses)


def surface_divergence(slices: list[LandscapeSlice]) -> float:
    """Mean pairwise distance between clients' *whole* loss surfaces.

    Each surface is centred on its own origin loss before comparison, so
    the statistic measures how differently the two local objectives bend
    around the global weights — the paper's Fig. 1 claim is that PARDON
    makes these surfaces (hence the implicit local objectives) nearly
    coincide.  More robust than comparing argmin locations, which wander
    on flat surfaces.
    """
    if len(slices) < 2:
        raise ValueError("need at least two client slices")
    centred = [s.losses - s.center_loss() for s in slices]
    total, count = 0.0, 0
    for i in range(len(centred)):
        for j in range(i + 1, len(centred)):
            total += float(np.mean(np.abs(centred[i] - centred[j])))
            count += 1
    return total / count


def client_minima_divergence(slices: list[LandscapeSlice]) -> float:
    """Mean pairwise distance between clients' in-plane loss minima.

    Fig. 1's argument in one number: under naive training, heterogeneous
    clients' local optima sit far apart around the global weights; under
    PARDON they nearly coincide (small divergence).
    """
    if len(slices) < 2:
        raise ValueError("need at least two client slices")
    minima = np.array([s.minimum_position() for s in slices])
    total, count = 0.0, 0
    for i in range(len(minima)):
        for j in range(i + 1, len(minima)):
            total += float(np.linalg.norm(minima[i] - minima[j]))
            count += 1
    return total / count
