"""Evaluation protocols: LODO, LTDO, and the fixed-split IWildCam scheme.

These functions orchestrate whole experiments — partition the training
domains across clients with a heterogeneity level, run the federated loop
for one strategy, and report unseen-domain accuracy — so the benchmark for
each table is a thin loop over (method, split).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.partition import lodo_splits, ltdo_splits, partition_clients
from repro.data.synthetic import DomainSuite, LabeledDataset
from repro.fl.client import Client
from repro.fl.executor import Executor, make_executor
from repro.fl.sampling import UniformClientSampler
from repro.fl.server import FederatedConfig, FederatedResult, FederatedServer
from repro.fl.strategy import Strategy
from repro.nn.models import FeatureClassifierModel, build_cnn_model
from repro.utils.rng import SeedTree

__all__ = [
    "ExperimentSetting",
    "SplitOutcome",
    "run_split_experiment",
    "run_lodo_protocol",
    "run_ltdo_protocol",
    "run_fixed_split_protocol",
    "make_clients",
]

StrategyFactory = Callable[[], Strategy]
ModelFactory = Callable[[np.random.Generator], FeatureClassifierModel]


@dataclass(frozen=True)
class ExperimentSetting:
    """Everything that defines one federated DG experiment besides the
    method itself (so all methods share it exactly).

    ``executor="auto"`` resolves serial vs. parallel from this setting's
    own per-round fan-out (see :func:`repro.fl.executor.resolve_executor`);
    ``codec`` names the wire codec for weight payloads
    (:mod:`repro.fl.codec`) and ``transport`` the wire transport for
    broadcast blobs (:mod:`repro.fl.transport`, ``"auto"`` prefers the
    single-copy shm broadcast where supported) — both reach the engine and
    the :class:`repro.fl.server.FederatedConfig` of every run built from
    this setting.  ``faults`` (a :mod:`repro.fl.faults` spec string),
    ``deadline`` (per-round wall-clock budget — seconds or an adaptive
    ``"percentile:p95"`` spec), and ``quorum`` (close a round after that
    many uploads) configure the fault-tolerance layer the same way.
    ``aggregator`` names the Byzantine-robust aggregation rule
    (:mod:`repro.fl.aggregate`); the default ``"mean"`` is the historical
    weighted FedAvg.  ``compute`` names the compute
    backend (:mod:`repro.fl.compute`) that trains co-resident client
    groups; ``"auto"`` resolves to the batched ``ensemble`` backend
    whenever the model supports it — a pure throughput knob, since
    per-client numerics are bitwise backend-invariant.
    ``topology`` selects the aggregation tree (``"flat"`` or
    ``"edge:G"`` — G edge aggregators reduce the round with the streaming
    mean, bit-identical to flat), and ``max_resident`` bounds the
    parallel engine's resident-client LRU — the scaling knobs for large
    lazy populations.  ``objective`` reweights the strategy's composite
    training objective per experiment (a ``"term=weight,..."`` spec over
    the terms the method's objective declares — see
    :mod:`repro.nn.objective`); ``None`` keeps the method's defaults.
    """

    num_clients: int = 20
    clients_per_round: int | float = 0.25
    heterogeneity: float = 0.1
    num_rounds: int = 10
    eval_every: int = 1
    seed: int = 0
    model_widths: tuple[int, int] = (16, 32)
    embed_dim: int = 64
    executor: str = "serial"
    workers: int | None = None
    codec: str = "identity"
    transport: str = "auto"
    faults: str | None = None
    deadline: float | str | None = None
    compute: str = "auto"
    aggregator: str = "mean"
    quorum: int | None = None
    topology: str = "flat"
    max_resident: int | None = None
    objective: str | None = None

    def round_participants(self) -> int:
        """This setting's resolved per-round participant count."""
        return UniformClientSampler(self.clients_per_round).round_size(
            self.num_clients
        )

    def make_executor(self, local_epochs: int = 1) -> Executor:
        """The client-execution engine this setting asks for.

        ``local_epochs`` feeds the ``"auto"`` crossover heuristic (the
        per-round workload is participants x local epochs); callers that
        know the strategy's local config should pass it — the protocol
        runners do.
        """
        return make_executor(
            self.executor,
            self.workers,
            codec=self.codec,
            participants=self.round_participants(),
            local_epochs=local_epochs,
            transport=self.transport,
            faults=self.faults,
            deadline=self.deadline,
            compute=self.compute,
            quorum=self.quorum,
            max_resident=self.max_resident,
        )

    def model_factory(self, suite: DomainSuite) -> ModelFactory:
        def build(rng: np.random.Generator) -> FeatureClassifierModel:
            return build_cnn_model(
                suite.image_shape,
                suite.num_classes,
                rng=rng,
                widths=self.model_widths,
                embed_dim=self.embed_dim,
            )

        return build


@dataclass
class SplitOutcome:
    """Result of one (strategy, split) run."""

    val_accuracy: float
    test_accuracy: float
    result: FederatedResult
    val_domains: list[str] = field(default_factory=list)
    test_domains: list[str] = field(default_factory=list)


def make_clients(
    suite: DomainSuite,
    train_domains: list[int],
    setting: ExperimentSetting,
    seed_label: object = "partition",
) -> list[Client]:
    """Partition the training pool into the experiment's client population."""
    tree = SeedTree(setting.seed).child(suite.name, seed_label)
    partition = partition_clients(
        suite,
        train_domains,
        setting.num_clients,
        setting.heterogeneity,
        tree.generator("assign"),
    )
    return [
        Client(client_id=index, dataset=dataset)
        for index, dataset in enumerate(partition.client_datasets)
    ]


def run_split_experiment(
    suite: DomainSuite,
    split: dict[str, list[int]],
    strategy: Strategy,
    setting: ExperimentSetting,
    executor: Executor | None = None,
) -> SplitOutcome:
    """Run one strategy on one (train, val, test) domain split.

    ``executor`` lets protocol sweeps share one engine (and its warm worker
    pool) across splits; when omitted, one is built from ``setting`` and
    closed before returning.
    """
    clients = make_clients(suite, split["train"], setting, seed_label=tuple(split["train"]))
    strategy.apply_objective_overrides(setting.objective)
    tree = SeedTree(setting.seed).child(suite.name, "model")
    model = setting.model_factory(suite)(tree.generator("init"))
    eval_sets = {
        "val": suite.merged(split["val"]),
        "test": suite.merged(split["test"]),
    }
    owns_executor = executor is None
    executor = executor or setting.make_executor(
        local_epochs=strategy.local_config.local_epochs
    )
    server = FederatedServer(
        strategy=strategy,
        clients=clients,
        model=model,
        eval_sets=eval_sets,
        config=FederatedConfig(
            num_rounds=setting.num_rounds,
            clients_per_round=setting.clients_per_round,
            eval_every=setting.eval_every,
            seed=setting.seed,
            codec=setting.codec,
            transport=setting.transport,
            faults=setting.faults,
            deadline=setting.deadline,
            compute=setting.compute,
            aggregator=setting.aggregator,
            quorum=setting.quorum,
            topology=setting.topology,
        ),
        executor=executor,
    )
    try:
        result = server.run()
    finally:
        if owns_executor:
            executor.close()
    return SplitOutcome(
        val_accuracy=result.final_accuracy["val"],
        test_accuracy=result.final_accuracy["test"],
        result=result,
        val_domains=[suite.domain_names[d] for d in split["val"]],
        test_domains=[suite.domain_names[d] for d in split["test"]],
    )


def run_lodo_protocol(
    suite: DomainSuite,
    strategy_factory: StrategyFactory,
    setting: ExperimentSetting,
) -> dict[str, SplitOutcome]:
    """Leave-One-Domain-Out (paper Table II): one outcome per held-out domain.

    ``strategy_factory`` is called once per split so no method state leaks
    between splits; one execution engine (and its warm worker pool) serves
    every split.
    """
    outcomes: dict[str, SplitOutcome] = {}
    # Probe one (throwaway) strategy for its local-epoch count so the
    # "auto" engine choice sees the real per-round workload.
    probe_epochs = strategy_factory().local_config.local_epochs
    with setting.make_executor(local_epochs=probe_epochs) as executor:
        for split in lodo_splits(suite.num_domains):
            held_out = suite.domain_names[split["val"][0]]
            outcomes[held_out] = run_split_experiment(
                suite, split, strategy_factory(), setting, executor=executor
            )
    return outcomes


def run_ltdo_protocol(
    suite: DomainSuite,
    strategy_factory: StrategyFactory,
    setting: ExperimentSetting,
) -> dict[str, SplitOutcome]:
    """Leave-Two-Domains-Out (paper Table I): keyed by the validation domain."""
    outcomes: dict[str, SplitOutcome] = {}
    probe_epochs = strategy_factory().local_config.local_epochs
    with setting.make_executor(local_epochs=probe_epochs) as executor:
        for split in ltdo_splits(suite.num_domains):
            val_domain = suite.domain_names[split["val"][0]]
            outcomes[val_domain] = run_split_experiment(
                suite, split, strategy_factory(), setting, executor=executor
            )
    return outcomes


def run_fixed_split_protocol(
    suite: DomainSuite,
    strategy: Strategy,
    setting: ExperimentSetting,
) -> SplitOutcome:
    """IWildCam-style protocol (paper Table III): the suite's own
    train/val/test domain roles are fixed; clients hold training domains."""
    if not (suite.train_domains and suite.val_domains and suite.test_domains):
        raise ValueError(
            f"suite {suite.name} does not define fixed train/val/test domains"
        )
    split = {
        "train": suite.train_domains,
        "val": suite.val_domains,
        "test": suite.test_domains,
    }
    return run_split_experiment(suite, split, strategy, setting)
