"""Evaluation metrics (re-exported from the federated substrate).

The implementations live in :mod:`repro.fl.evaluation` so ``repro.fl`` has
no dependency back on this package; import them from here in user code.
"""

from repro.fl.evaluation import (
    evaluate_accuracy,
    evaluate_loss,
    per_class_accuracy,
)

__all__ = ["evaluate_accuracy", "evaluate_loss", "per_class_accuracy"]
