"""Module system for the numpy neural-network substrate.

The paper's training stack is PyTorch; this sandbox has no PyTorch, so the
library ships its own small framework.  The design is deliberately explicit
(per the project style guide): each :class:`Module` implements ``forward``
(caching whatever the backward pass needs) and ``backward`` (consuming the
upstream gradient, accumulating parameter gradients, and returning the
gradient with respect to its input).  There is no tape/autograd — gradients
are hand-derived per layer and verified against finite differences in the
test suite.

Weights are exchanged between federated clients through ``state_dict`` /
``load_state_dict``, which mirror the PyTorch contract closely enough that the
federated-averaging code reads naturally.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor: value plus accumulated gradient.

    Parameters
    ----------
    data:
        Initial value.  Stored as ``float64`` — the substrate favours
        numerical robustness over speed, and the models are small.
    name:
        Dotted name assigned when the parameter is registered on a module;
        used in state dicts and error messages.
    """

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses register parameters as attributes of type :class:`Parameter`
    and child modules as attributes of type :class:`Module`; both are
    discovered by introspection, the same way PyTorch does it.
    """

    def __init__(self) -> None:
        self.training = True

    # -- structure ---------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for attr, value in vars(self).items():
            if isinstance(value, Parameter):
                yield (f"{prefix}{attr}", value)
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{prefix}{attr}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(
                            prefix=f"{prefix}{attr}.{index}."
                        )

    def parameters(self) -> list[Parameter]:
        """Return all parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def zero_grad(self) -> None:
        """Reset every parameter gradient to zero."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar weights in the module."""
        return sum(param.size for param in self.parameters())

    # -- train/eval mode ---------------------------------------------------

    def train(self) -> "Module":
        """Put the module (and children) into training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put the module (and children) into evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    # -- state exchange (the FL wire format) --------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of all parameters plus registered buffers.

        Buffers (e.g. batch-norm running statistics) are exposed by modules
        through a ``_buffers`` dict of name -> ndarray.
        """
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = buffer.copy()
        return state

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs, depth first."""
        buffers = getattr(self, "_buffers", None)
        if buffers:
            for attr, value in buffers.items():
                yield (f"{prefix}{attr}", value)
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.named_buffers(prefix=f"{prefix}{attr}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_buffers(prefix=f"{prefix}{attr}.{index}.")

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters and buffers from ``state`` (copies, never aliases)."""
        params = dict(self.named_parameters())
        expected = set(params)
        buffer_hosts = self._buffer_hosts()
        expected.update(buffer_hosts)
        missing = expected - set(state)
        unexpected = set(state) - expected
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()
        for name, (host, attr) in buffer_hosts.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != host._buffers[attr].shape:
                raise ValueError(
                    f"shape mismatch for buffer {name}: "
                    f"expected {host._buffers[attr].shape}, got {value.shape}"
                )
            host._buffers[attr] = value.copy()

    def _buffer_hosts(
        self, prefix: str = ""
    ) -> dict[str, tuple["Module", str]]:
        """Map dotted buffer names to their (owner module, attribute) pair."""
        hosts: dict[str, tuple[Module, str]] = {}
        buffers = getattr(self, "_buffers", None)
        if buffers:
            for attr in buffers:
                hosts[f"{prefix}{attr}"] = (self, attr)
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                hosts.update(value._buffer_hosts(prefix=f"{prefix}{attr}."))
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        hosts.update(
                            item._buffer_hosts(prefix=f"{prefix}{attr}.{index}.")
                        )
        return hosts

    # -- computation (implemented by subclasses) ----------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Chain modules; forward left-to-right, backward right-to-left."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> None:
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output
