"""Stateless numerical helpers shared across layers, losses, and metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "log_softmax", "one_hot", "accuracy", "relu", "sigmoid"]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return one-hot rows for integer ``labels``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): "
            f"min={labels.min()}, max={labels.max()}"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``logits`` against integer ``labels``."""
    if logits.shape[0] == 0:
        return 0.0
    predictions = np.argmax(logits, axis=1)
    return float(np.mean(predictions == np.asarray(labels)))


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise rectifier."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out
