"""Composable training objectives: named, weighted loss terms.

Every FedDG method in this repo trains the same split model
(:class:`repro.nn.FeatureClassifierModel`) with the same loop skeleton —
permute, batch, forward, accumulate gradients at the logits and/or the
embedding, step — and differs only in *which* loss terms it sums and with
what weights.  This module makes that difference declarative (the
``CompositeLoss`` idiom): a strategy states its objective as an ordered
list of ``(name, weight, term)`` bindings, and the generic epoch runners
below execute it on both the scalar and the ensemble compute paths.

Why this matters beyond tidiness:

* DG objectives become *config*, not subclass surgery — ``--objective
  "proto_nce=0.7"`` reweights a method per experiment, and a new method is
  mostly a new term list;
* every objective-driven strategy gets the vectorized ``(K, ...)``
  ensemble backend for free, because the runner (not each strategy)
  owns the batched loop.

Bitwise contract
----------------
The runners and terms preserve the historical strategies' float operand
order exactly: term weights multiply *inside* each term at the position
the hand-written loops multiplied them (``weight * 2.0 * deviation /
batch``), gradient buffers start at zeros and terms accumulate with
``+=`` (``0.0 + x == x`` bitwise), and a weight of ``1.0`` is harmless
because ``x * 1.0 == x`` in IEEE-754.  Terms whose math is not trivially
vectorizable (class-conditional references, prototype InfoNCE) apply
per-slice on the ensemble path — the stacked model's slice independence
does the rest.

Terms treat externally supplied references (global prototypes, alignment
targets) and in-batch class means as *constants* (stop-gradient), which is
the FedSR/FPL reading of those regularizers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.nn.ensemble import (
    EnsembleEmbeddingL2Loss,
    EnsembleTripletStyleLoss,
    ensemble_cross_entropy,
)
from repro.nn.functional import softmax
from repro.nn.losses import CrossEntropyLoss, EmbeddingL2Loss, TripletStyleLoss

__all__ = [
    "CompositeObjective",
    "EnsembleStepContext",
    "ObjectiveTerm",
    "StepContext",
    "dataset_embeddings",
    "ensemble_dataset_embeddings",
    "make_term",
    "objective_term_specs",
    "parse_objective_overrides",
    "prototype_nce",
    "register_objective_term",
    "run_objective_epochs",
    "run_objective_ensemble",
]


# --------------------------------------------------------------------------
# Step contexts: what one optimization step exposes to the terms
# --------------------------------------------------------------------------


@dataclass
class StepContext:
    """One batch step's tensors, shared mutable gradient buffers, and the
    strategy-provided extras (prototypes, alignment targets, ...).

    ``views`` is 1 for plain batches and 2 when a second index-aligned view
    (style-transferred / augmented positives) was concatenated after the
    first ``batch`` rows; ``labels`` always covers the *primary* view.
    Terms accumulate weighted gradients into ``grad_logits`` /
    ``grad_embedding`` in place and return their weighted loss.
    """

    labels: np.ndarray
    embeddings: np.ndarray
    logits: np.ndarray
    batch: int
    views: int = 1
    grad_logits: np.ndarray | None = None
    grad_embedding: np.ndarray | None = None
    extras: Mapping[str, Any] = field(default_factory=dict)

    def view_labels(self) -> np.ndarray:
        """Labels tiled across the concatenated views."""
        if self.views == 1:
            return self.labels
        return np.concatenate([self.labels] * self.views)


@dataclass
class EnsembleStepContext:
    """The ``(K, ...)`` stacked counterpart of :class:`StepContext`.

    ``extras`` is per-slice (one mapping per stacked client).  Terms
    without a hand-vectorized path fall back to :meth:`slice`, which views
    one client's tensors and gradient buffers — writes go through.
    """

    labels: np.ndarray
    embeddings: np.ndarray
    logits: np.ndarray
    batch: int
    views: int = 1
    grad_logits: np.ndarray | None = None
    grad_embedding: np.ndarray | None = None
    extras: Sequence[Mapping[str, Any]] = ()

    @property
    def stack(self) -> int:
        return int(self.embeddings.shape[0])

    def slice(self, k: int) -> StepContext:
        return StepContext(
            labels=self.labels[k],
            embeddings=self.embeddings[k],
            logits=self.logits[k],
            batch=self.batch,
            views=self.views,
            grad_logits=None if self.grad_logits is None else self.grad_logits[k],
            grad_embedding=(
                None if self.grad_embedding is None else self.grad_embedding[k]
            ),
            extras=self.extras[k] if self.extras else {},
        )


# --------------------------------------------------------------------------
# Terms
# --------------------------------------------------------------------------


class ObjectiveTerm:
    """One named loss term.  Subclasses implement :meth:`apply` (and may
    vectorize :meth:`apply_ensemble`); both receive the binding's weight and
    must *fold it into every loss and gradient they emit*."""

    name = "term"
    #: Whether the term routes gradient through the embedding entry point
    #: (the runner only allocates ``grad_embedding`` when some term does).
    uses_embedding = True

    def apply(self, ctx: StepContext, weight: float) -> float:
        raise NotImplementedError

    def apply_ensemble(self, ctx: EnsembleStepContext, weight: float) -> np.ndarray:
        """Per-slice fallback: bitwise the scalar term on each client."""
        out = np.zeros(ctx.stack)
        for k in range(ctx.stack):
            out[k] = self.apply(ctx.slice(k), weight)
        return out


class CrossEntropyTerm(ObjectiveTerm):
    """Softmax cross-entropy on the logits.

    ``all_views=True`` supervises every concatenated view (PARDON's
    transferred half joining CE as augmentation); otherwise two-view
    batches are supervised on the primary view only.
    """

    name = "ce"
    uses_embedding = False

    def __init__(self, all_views: bool = False) -> None:
        self.all_views = all_views

    def apply(self, ctx: StepContext, weight: float) -> float:
        criterion = CrossEntropyLoss()
        if ctx.views > 1 and not self.all_views:
            loss = criterion.forward(ctx.logits[: ctx.batch], ctx.labels)
            ctx.grad_logits[: ctx.batch] += weight * criterion.backward()
        else:
            loss = criterion.forward(ctx.logits, ctx.view_labels())
            ctx.grad_logits += weight * criterion.backward()
        return weight * loss

    def apply_ensemble(self, ctx: EnsembleStepContext, weight: float) -> np.ndarray:
        if ctx.views > 1 and not self.all_views:
            losses, grad = ensemble_cross_entropy(
                ctx.logits[:, : ctx.batch], ctx.labels
            )
            ctx.grad_logits[:, : ctx.batch] += weight * grad
        else:
            labels = ctx.labels
            if ctx.views > 1:
                labels = np.concatenate([ctx.labels] * ctx.views, axis=1)
            losses, grad = ensemble_cross_entropy(ctx.logits, labels)
            ctx.grad_logits += weight * grad
        return weight * losses


class EmbeddingNormTerm(ObjectiveTerm):
    """FedSR's L2 bound on the embedding norm (all rows of all views)."""

    name = "embed_l2"

    def apply(self, ctx: StepContext, weight: float) -> float:
        embeddings = ctx.embeddings
        rows = embeddings.shape[0]
        loss = weight * float(np.mean(np.sum(embeddings**2, axis=1)))
        ctx.grad_embedding += weight * 2.0 * embeddings / rows
        return loss


class ClassAlignTerm(ObjectiveTerm):
    """Pull each embedding toward its class's *in-batch* mean
    (stop-gradient reference) — FedSR's conditional-alignment surrogate."""

    name = "class_align"

    def apply(self, ctx: StepContext, weight: float) -> float:
        embeddings = ctx.embeddings
        labels = ctx.view_labels()
        references = np.empty_like(embeddings)
        for label in np.unique(labels):
            mask = labels == label
            references[mask] = embeddings[mask].mean(axis=0)
        deviation = embeddings - references
        rows = embeddings.shape[0]
        loss = weight * float(np.mean(np.sum(deviation**2, axis=1)))
        ctx.grad_embedding += weight * 2.0 * deviation / rows
        return loss


class FeatureAlignTerm(ObjectiveTerm):
    """Pull each embedding toward a *globally fused* per-class target
    (FedAlign): targets live in ``extras[targets_key]`` as a
    ``{class: (dim,) vector}`` mapping, treated as constants.  Classes
    without a target yet (round 1, or absent everywhere) contribute
    nothing."""

    name = "align"

    def __init__(self, targets_key: str = "align_targets") -> None:
        self.targets_key = targets_key

    def apply(self, ctx: StepContext, weight: float) -> float:
        targets = ctx.extras.get(self.targets_key) or {}
        if not targets:
            return 0.0
        embeddings = ctx.embeddings
        labels = ctx.view_labels()
        deviation = np.zeros_like(embeddings)
        for label in np.unique(labels):
            target = targets.get(int(label))
            if target is None:
                continue
            mask = labels == label
            deviation[mask] = embeddings[mask] - target
        rows = embeddings.shape[0]
        loss = weight * float(np.mean(np.sum(deviation**2, axis=1)))
        ctx.grad_embedding += weight * 2.0 * deviation / rows
        return loss


def prototype_nce(
    embeddings: np.ndarray,
    labels: np.ndarray,
    prototypes: Mapping[int, np.ndarray],
    temperature: float,
) -> tuple[float, np.ndarray]:
    """InfoNCE over cosine similarities to per-class prototypes (FPL).

    Embeddings and prototypes are L2-normalized before the similarity —
    the contrastive head operates on the unit sphere, which also keeps the
    regularizer bounded and numerically stable.  Returns ``(loss,
    grad_wrt_embeddings)``; prototypes are constants, and classes without
    a prototype are skipped.
    """
    known = sorted(prototypes)
    if not known:
        return 0.0, np.zeros_like(embeddings)
    usable = np.isin(labels, known)
    if not np.any(usable):
        return 0.0, np.zeros_like(embeddings)
    proto_matrix = np.stack([prototypes[c] for c in known])
    proto_norms = np.linalg.norm(proto_matrix, axis=1, keepdims=True)
    proto_unit = proto_matrix / np.maximum(proto_norms, 1e-12)
    class_to_column = {c: i for i, c in enumerate(known)}

    z = embeddings[usable]
    y = np.array([class_to_column[int(label)] for label in labels[usable]])
    z_norms = np.linalg.norm(z, axis=1, keepdims=True)
    z_unit = z / np.maximum(z_norms, 1e-12)
    logits = z_unit @ proto_unit.T / temperature
    probs = softmax(logits, axis=1)
    count = z.shape[0]
    loss = float(-np.mean(np.log(probs[np.arange(count), y] + 1e-12)))
    grad_logits = probs.copy()
    grad_logits[np.arange(count), y] -= 1.0
    grad_logits /= count
    # Chain through the normalization: d z_unit / d z projects out the
    # radial component.
    grad_unit = grad_logits @ proto_unit / temperature
    radial = np.sum(grad_unit * z_unit, axis=1, keepdims=True)
    grad_z = (grad_unit - radial * z_unit) / np.maximum(z_norms, 1e-12)
    full_grad = np.zeros_like(embeddings)
    full_grad[usable] = grad_z
    return loss, full_grad


class ProtoNCETerm(ObjectiveTerm):
    """FPL's prototype-contrastive head; prototypes arrive through
    ``extras[prototypes_key]``."""

    name = "proto_nce"

    def __init__(
        self, temperature: float = 0.5, prototypes_key: str = "prototypes"
    ) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.temperature = temperature
        self.prototypes_key = prototypes_key

    def apply(self, ctx: StepContext, weight: float) -> float:
        prototypes = ctx.extras.get(self.prototypes_key) or {}
        loss, grad = prototype_nce(
            ctx.embeddings, ctx.view_labels(), prototypes, self.temperature
        )
        ctx.grad_embedding += weight * grad
        return weight * loss


class TripletStyleTerm(ObjectiveTerm):
    """PARDON's triplet loss between the primary view (anchors) and the
    second view (positives); requires a two-view batch."""

    name = "triplet_style"

    def __init__(self, margin: float = 1.0, hinge: bool = True) -> None:
        self.margin = margin
        self.hinge = hinge

    def apply(self, ctx: StepContext, weight: float) -> float:
        batch = ctx.batch
        triplet = TripletStyleLoss(margin=self.margin, hinge=self.hinge)
        loss = triplet.forward(
            ctx.embeddings[:batch], ctx.embeddings[batch:], ctx.labels
        )
        grad_anchor, grad_positive = triplet.backward()
        ctx.grad_embedding[:batch] += weight * grad_anchor
        ctx.grad_embedding[batch:] += weight * grad_positive
        return weight * loss

    def apply_ensemble(self, ctx: EnsembleStepContext, weight: float) -> np.ndarray:
        batch = ctx.batch
        triplet = EnsembleTripletStyleLoss(margin=self.margin, hinge=self.hinge)
        losses = triplet.forward(
            ctx.embeddings[:, :batch], ctx.embeddings[:, batch:], ctx.labels
        )
        grad_anchor, grad_positive = triplet.backward()
        ctx.grad_embedding[:, :batch] += weight * grad_anchor
        ctx.grad_embedding[:, batch:] += weight * grad_positive
        return weight * losses


class PairNormTerm(ObjectiveTerm):
    """PARDON's embedding-L2 regularizer over both halves of a two-view
    batch (Eq. 8)."""

    name = "pair_l2"

    def apply(self, ctx: StepContext, weight: float) -> float:
        batch = ctx.batch
        regularizer = EmbeddingL2Loss()
        loss = regularizer.forward(ctx.embeddings[:batch], ctx.embeddings[batch:])
        grad_anchor, grad_positive = regularizer.backward()
        ctx.grad_embedding[:batch] += weight * grad_anchor
        ctx.grad_embedding[batch:] += weight * grad_positive
        return weight * loss

    def apply_ensemble(self, ctx: EnsembleStepContext, weight: float) -> np.ndarray:
        batch = ctx.batch
        regularizer = EnsembleEmbeddingL2Loss()
        losses = regularizer.forward(
            ctx.embeddings[:, :batch], ctx.embeddings[:, batch:]
        )
        grad_anchor, grad_positive = regularizer.backward()
        ctx.grad_embedding[:, :batch] += weight * grad_anchor
        ctx.grad_embedding[:, batch:] += weight * grad_positive
        return weight * losses


class ConsistencyTerm(ObjectiveTerm):
    """FedCCRL's augmentation-consistency term: mean squared distance
    between the primary and augmented views' embeddings (gradients flow to
    both views); requires a two-view batch."""

    name = "consistency"

    def apply(self, ctx: StepContext, weight: float) -> float:
        batch = ctx.batch
        diff = ctx.embeddings[:batch] - ctx.embeddings[batch:]
        loss = weight * float(np.mean(diff**2))
        grad = weight * 2.0 * diff / diff.size
        ctx.grad_embedding[:batch] += grad
        ctx.grad_embedding[batch:] -= grad
        return loss


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

OBJECTIVE_TERMS: dict[str, Callable[..., ObjectiveTerm]] = {}


def register_objective_term(
    name: str, factory: Callable[..., ObjectiveTerm]
) -> None:
    """Register a term factory under ``name`` (mirrors the codec /
    transport / aggregator registries)."""
    if name in OBJECTIVE_TERMS:
        raise ValueError(f"objective term {name!r} is already registered")
    OBJECTIVE_TERMS[name] = factory


def objective_term_specs() -> tuple[str, ...]:
    return tuple(sorted(OBJECTIVE_TERMS))


def make_term(name: str, **params: Any) -> ObjectiveTerm:
    try:
        factory = OBJECTIVE_TERMS[name]
    except KeyError:
        raise ValueError(
            f"unknown objective term {name!r}; registered terms: "
            f"{', '.join(objective_term_specs())}"
        ) from None
    return factory(**params)


for _name, _factory in (
    ("ce", CrossEntropyTerm),
    ("embed_l2", EmbeddingNormTerm),
    ("class_align", ClassAlignTerm),
    ("align", FeatureAlignTerm),
    ("proto_nce", ProtoNCETerm),
    ("triplet_style", TripletStyleTerm),
    ("pair_l2", PairNormTerm),
    ("consistency", ConsistencyTerm),
):
    register_objective_term(_name, _factory)


# --------------------------------------------------------------------------
# Composite objective
# --------------------------------------------------------------------------


def parse_objective_overrides(spec: str | Mapping[str, float]) -> dict[str, float]:
    """Parse a ``"ce=1,proto_nce=0.7"`` override spec into a weight map.

    Validates syntax and non-negativity; *name* validity is checked against
    a concrete objective by :meth:`CompositeObjective.with_overrides` (the
    set of legal names depends on the strategy's term list).
    """
    if isinstance(spec, Mapping):
        overrides = {str(k): float(v) for k, v in spec.items()}
    else:
        overrides = {}
        for chunk in str(spec).split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            name, sep, value = chunk.partition("=")
            name = name.strip()
            if not sep or not name:
                raise ValueError(
                    f"bad objective override {chunk!r}: expected 'term=weight'"
                )
            try:
                overrides[name] = float(value)
            except ValueError:
                raise ValueError(
                    f"bad objective override {chunk!r}: weight {value!r} "
                    f"is not a number"
                ) from None
    for name, weight in overrides.items():
        if not np.isfinite(weight) or weight < 0:
            raise ValueError(
                f"objective term {name!r} weight must be finite and >= 0, "
                f"got {weight}"
            )
    return overrides


@dataclass(frozen=True)
class TermBinding:
    name: str
    weight: float
    term: ObjectiveTerm


class CompositeObjective:
    """An ordered, weighted sum of named terms.

    Accepts ``(name, weight)`` entries (the term is built from the
    registry with defaults) or ``(name, weight, term)`` for parameterized
    instances.  Term order is the gradient-accumulation order, so it is
    part of the bitwise contract.
    """

    def __init__(
        self,
        terms: Sequence[
            tuple[str, float] | tuple[str, float, ObjectiveTerm] | TermBinding
        ],
    ) -> None:
        bindings: list[TermBinding] = []
        seen: set[str] = set()
        for entry in terms:
            if isinstance(entry, TermBinding):
                binding = entry
            elif len(entry) == 2:
                name, weight = entry
                binding = TermBinding(name, float(weight), make_term(name))
            else:
                name, weight, term = entry
                binding = TermBinding(name, float(weight), term)
            if binding.weight < 0 or not np.isfinite(binding.weight):
                raise ValueError(
                    f"objective term {binding.name!r} weight must be finite "
                    f"and >= 0, got {binding.weight}"
                )
            if binding.name in seen:
                raise ValueError(f"duplicate objective term {binding.name!r}")
            seen.add(binding.name)
            bindings.append(binding)
        if not bindings:
            raise ValueError("an objective needs at least one term")
        self.bindings: tuple[TermBinding, ...] = tuple(bindings)

    @property
    def weights(self) -> dict[str, float]:
        return {b.name: b.weight for b in self.bindings}

    @property
    def spec(self) -> str:
        """Canonical override spec (round-trips through with_overrides)."""
        return ",".join(f"{b.name}={b.weight:g}" for b in self.bindings)

    def needs_embedding(self) -> bool:
        return any(b.term.uses_embedding for b in self.bindings)

    def with_overrides(
        self, overrides: str | Mapping[str, float] | None
    ) -> "CompositeObjective":
        """A new objective with some term weights replaced.

        Unknown names are a hard error: an override must target a term the
        objective actually has, so a typo fails loudly instead of silently
        training the unmodified objective.
        """
        if not overrides:
            return self
        parsed = parse_objective_overrides(overrides)
        known = {b.name for b in self.bindings}
        unknown = sorted(set(parsed) - known)
        if unknown:
            raise ValueError(
                f"unknown objective term(s) {', '.join(map(repr, unknown))}; "
                f"this objective has: {', '.join(b.name for b in self.bindings)}"
            )
        return CompositeObjective(
            [
                TermBinding(b.name, parsed.get(b.name, b.weight), b.term)
                for b in self.bindings
            ]
        )

    def evaluate(self, ctx: StepContext) -> float:
        """Apply every (nonzero-weight) term in order; returns the summed
        weighted loss.  Gradients accumulate into the context's buffers."""
        total = 0.0
        for binding in self.bindings:
            if binding.weight == 0.0:
                continue
            total += binding.term.apply(ctx, binding.weight)
        return total

    def evaluate_ensemble(self, ctx: EnsembleStepContext) -> np.ndarray:
        total = np.zeros(ctx.stack)
        for binding in self.bindings:
            if binding.weight == 0.0:
                continue
            total = total + binding.term.apply_ensemble(ctx, binding.weight)
        return total


# --------------------------------------------------------------------------
# Generic epoch runners (scalar + ensemble)
# --------------------------------------------------------------------------


def run_objective_epochs(
    model,
    dataset,
    objective: CompositeObjective,
    config,
    rng: np.random.Generator,
    *,
    extras: Mapping[str, Any] | None = None,
    secondary: np.ndarray | None = None,
) -> float:
    """Train ``model`` on ``dataset`` under ``objective``; returns the mean
    per-batch weighted loss.

    ``secondary`` is an optional second view aligned index-for-index with
    the dataset (style-transferred or augmented positives); each batch then
    runs one concatenated forward over ``[primary, secondary]`` so batch
    statistics are shared, exactly as the hand-written two-view loops did.
    Randomness: one ``rng.permutation(n)`` per epoch — the same draw
    :class:`repro.data.loader.Batcher` makes — and nothing else.
    """
    images = dataset.images
    labels = dataset.labels
    model.train()
    optimizer = config.make_optimizer(model)
    needs_embedding = objective.needs_embedding()
    losses: list[float] = []
    n = images.shape[0]
    for _ in range(config.local_epochs):
        order = rng.permutation(n)
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            batch_images = images[idx]
            batch = batch_images.shape[0]
            if secondary is not None:
                combined = np.concatenate([batch_images, secondary[idx]], axis=0)
            else:
                combined = batch_images
            model.zero_grad()
            embeddings = model.forward_features(combined)
            logits = model.forward_logits(embeddings)
            ctx = StepContext(
                labels=labels[idx],
                embeddings=embeddings,
                logits=logits,
                batch=batch,
                views=1 if secondary is None else 2,
                grad_logits=np.zeros_like(logits),
                grad_embedding=(
                    np.zeros_like(embeddings) if needs_embedding else None
                ),
                extras=extras or {},
            )
            loss = objective.evaluate(ctx)
            model.backward(
                grad_logits=ctx.grad_logits, grad_embedding=ctx.grad_embedding
            )
            optimizer.step()
            losses.append(loss)
    return float(np.mean(losses)) if losses else 0.0


def run_objective_ensemble(
    emodel,
    images: np.ndarray,
    labels: np.ndarray,
    objective: CompositeObjective,
    config,
    rngs: Sequence[np.random.Generator],
    *,
    extras: Sequence[Mapping[str, Any]] | None = None,
    secondary: np.ndarray | None = None,
) -> np.ndarray:
    """:func:`run_objective_epochs` over a ``(K, N, ...)`` client stack.

    Returns the per-slice mean weighted losses, shape ``(K,)``.  Randomness
    is consumed in the loop path's order — one permutation per client per
    epoch, drawn in client order — so slice ``k`` reproduces client ``k``'s
    scalar result bitwise.
    """
    stack = images.shape[0]
    count = images.shape[1]
    emodel.train()
    optimizer = config.make_optimizer(emodel)
    needs_embedding = objective.needs_embedding()
    rows = np.arange(stack)[:, None]
    extras_list = list(extras) if extras is not None else [{}] * stack
    batch_totals: list[np.ndarray] = []
    for _ in range(config.local_epochs):
        orders = np.stack([rng.permutation(count) for rng in rngs])
        for start in range(0, count, config.batch_size):
            indices = orders[:, start : start + config.batch_size]
            batch_images = images[rows, indices]
            batch = batch_images.shape[1]
            if secondary is not None:
                combined = np.concatenate(
                    [batch_images, secondary[rows, indices]], axis=1
                )
            else:
                combined = batch_images
            emodel.zero_grad()
            embeddings = emodel.forward_features(combined)
            logits = emodel.forward_logits(embeddings)
            ctx = EnsembleStepContext(
                labels=labels[rows, indices],
                embeddings=embeddings,
                logits=logits,
                batch=batch,
                views=1 if secondary is None else 2,
                grad_logits=np.zeros_like(logits),
                grad_embedding=(
                    np.zeros_like(embeddings) if needs_embedding else None
                ),
                extras=extras_list,
            )
            totals = objective.evaluate_ensemble(ctx)
            emodel.backward(
                grad_logits=ctx.grad_logits, grad_embedding=ctx.grad_embedding
            )
            optimizer.step()
            batch_totals.append(totals)
    if batch_totals:
        return np.mean(np.stack(batch_totals, axis=1), axis=1)
    return np.zeros(stack)


# --------------------------------------------------------------------------
# Shared payload helpers: eval-mode embedding sweeps
# --------------------------------------------------------------------------


def dataset_embeddings(
    forward_features, images: np.ndarray, chunk: int = 256
) -> np.ndarray:
    """Chunked eval-mode embedding sweep over a whole dataset (the payload
    extraction pattern FPL introduced; chunk boundaries are part of the
    bitwise contract with :func:`ensemble_dataset_embeddings`)."""
    parts = [
        forward_features(images[start : start + chunk])
        for start in range(0, images.shape[0], chunk)
    ]
    return np.concatenate(parts, axis=0)


def ensemble_dataset_embeddings(
    forward_features, images: np.ndarray, chunk: int = 256
) -> np.ndarray:
    """The ``(K, N, ...)`` stacked counterpart of :func:`dataset_embeddings`
    (same chunk boundaries, so slice ``k`` is bitwise the scalar sweep)."""
    parts = [
        forward_features(images[:, start : start + chunk])
        for start in range(0, images.shape[1], chunk)
    ]
    return np.concatenate(parts, axis=1)
