"""Dense and elementwise layers for the numpy substrate."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["Linear", "ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Flatten", "Dropout"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` over the last axis of 2-D input."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.he_normal((in_features, out_features), fan_in=in_features, rng=rng),
            name="weight",
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected (batch, {self.in_features}), got {x.shape}"
            )
        self._input = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._input.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T


class ReLU(Module):
    """Elementwise max(x, 0)."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class LeakyReLU(Module):
    """Elementwise leaky rectifier with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.1) -> None:
        super().__init__()
        self.negative_slope = negative_slope
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * np.where(self._mask, 1.0, self.negative_slope)


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Sigmoid(Module):
    """Elementwise logistic function."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        from repro.nn.functional import sigmoid

        self._output = sigmoid(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Flatten(Module):
    """Collapse all axes after the batch axis into one."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    The mask generator is owned by the layer so that a federated client's
    local epochs remain reproducible under a fixed seed tree.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
