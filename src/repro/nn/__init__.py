"""``repro.nn`` — a from-scratch numpy neural-network framework.

This package substitutes for PyTorch in the sandbox (see DESIGN.md §2):
explicit per-layer forward/backward, seeded initialization, PyTorch-style
state dicts for federated weight exchange, and the loss functions PARDON's
objective is built from.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    Dropout,
    Flatten,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.nn.conv import AvgPool2d, Conv2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.norm import BatchNorm2d, InstanceNorm2d, LayerNorm
from repro.nn.losses import (
    CrossEntropyLoss,
    EmbeddingL2Loss,
    MSELoss,
    TripletStyleLoss,
)
from repro.nn.optim import SGD, Adam
from repro.nn.models import (
    FeatureClassifierModel,
    build_cnn_model,
    build_mlp_model,
)
from repro.nn.serialize import (
    StateDict,
    average_states,
    flatten_state,
    state_add,
    state_allclose,
    state_scale,
    state_sub,
    unflatten_state,
    zeros_like_state,
)
from repro.nn.checkpoint import (
    load_model_into,
    load_state,
    save_model,
    save_state,
)
from repro.nn.ensemble import (
    ensemble_of,
    ensemble_state_dicts,
    ensemble_supports,
    load_state_broadcast,
    load_state_stack,
    register_ensemble_converter,
)
from repro.nn import functional, init

__all__ = [
    "save_state",
    "load_state",
    "save_model",
    "load_model_into",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm2d",
    "InstanceNorm2d",
    "LayerNorm",
    "CrossEntropyLoss",
    "TripletStyleLoss",
    "EmbeddingL2Loss",
    "MSELoss",
    "SGD",
    "Adam",
    "FeatureClassifierModel",
    "build_cnn_model",
    "build_mlp_model",
    "StateDict",
    "average_states",
    "state_add",
    "state_sub",
    "state_scale",
    "zeros_like_state",
    "flatten_state",
    "unflatten_state",
    "state_allclose",
    "ensemble_of",
    "ensemble_state_dicts",
    "ensemble_supports",
    "load_state_broadcast",
    "load_state_stack",
    "register_ensemble_converter",
    "functional",
    "init",
]
