"""State-dict arithmetic: the wire format of federated learning.

Clients exchange ``dict[str, np.ndarray]`` state dicts.  Aggregation rules
(FedAvg, gradient-masked averaging, generalization adjustment) are all linear
operations over these dicts, collected here so every strategy reuses the same
verified primitives.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "StateDict",
    "MeanAccumulator",
    "average_states",
    "state_add",
    "state_sub",
    "state_scale",
    "zeros_like_state",
    "flatten_state",
    "unflatten_state",
    "state_allclose",
    "encode_payload",
    "decode_payload",
]

StateDict = dict[str, np.ndarray]


def _check_same_keys(states: Sequence[StateDict]) -> list[str]:
    if not states:
        raise ValueError("need at least one state dict")
    keys = sorted(states[0])
    for index, state in enumerate(states[1:], start=1):
        if sorted(state) != keys:
            raise KeyError(f"state dict {index} has different keys")
    return keys


def _two_sum(a: float, b: float) -> tuple[float, float]:
    """Knuth's branch-free TwoSum: ``a + b`` as a rounded sum plus its
    exact rounding error (both floats)."""
    s = a + b
    bb = s - a
    return s, (a - (s - bb)) + (b - bb)


class MeanAccumulator:
    """Online weighted mean over state dicts, in compensated (double-double)
    arithmetic so the fold *order does not matter*.

    Each ``fold(state, w)`` adds the per-key products ``w * state[key]``
    (computed in float64) into a ``(hi, lo)`` running-sum pair via TwoSum,
    and the weight into a scalar ``(hi, lo)`` pair the same way; ``merge``
    composes two accumulators (the two-tier ``edge`` topology's root step)
    and ``finalize`` divides once at the end.  The compensated sum carries
    ~106 bits of precision, so reorderings and regroupings — streaming
    arrival order, edge-tier grouping — agree with the sequential batch
    reduction to well below the final float64 rounding step, and traces
    stay bit-identical across engines regardless of upload arrival order.

    Memory is one ``(hi, lo)`` buffer pair — constant in the number of
    folds, which is what lets the server aggregate without materializing
    the round's survivor list.
    """

    __slots__ = ("_keys", "_hi", "_lo", "_w_hi", "_w_lo", "count")

    def __init__(self) -> None:
        self._keys: list[str] | None = None
        self._hi: StateDict = {}
        self._lo: StateDict = {}
        self._w_hi = 0.0
        self._w_lo = 0.0
        #: Number of states folded in (including merged accumulators').
        self.count = 0

    def fold(self, state: StateDict, weight: float) -> None:
        """Add one state with raw (un-normalized) weight ``weight``."""
        weight = float(weight)
        if weight < 0:
            raise ValueError("weights must be non-negative")
        keys = sorted(state)
        if self._keys is None:
            self._keys = keys
            for key in keys:
                shape = np.shape(state[key])
                self._hi[key] = np.zeros(shape, dtype=np.float64)
                self._lo[key] = np.zeros(shape, dtype=np.float64)
        elif keys != self._keys:
            raise KeyError("state dict has different keys")
        for key in keys:
            value = np.multiply(state[key], weight, dtype=np.float64)
            hi, lo = self._hi[key], self._lo[key]
            s = hi + value
            bb = s - hi
            lo += (hi - (s - bb)) + (value - bb)
            hi[...] = s
        s, err = _two_sum(self._w_hi, weight)
        self._w_hi, self._w_lo = s, self._w_lo + err
        self.count += 1

    def merge(self, other: "MeanAccumulator") -> None:
        """Fold another accumulator's partial sums into this one (exact
        composition of weighted partial sums — the hierarchical step)."""
        if other.count == 0:
            return
        if self._keys is None:
            self._keys = list(other._keys or [])
            for key in self._keys:
                self._hi[key] = other._hi[key].copy()
                self._lo[key] = other._lo[key].copy()
        else:
            if (other._keys or []) != self._keys:
                raise KeyError("accumulator has different keys")
            for key in self._keys:
                for value in (other._hi[key], other._lo[key]):
                    hi, lo = self._hi[key], self._lo[key]
                    s = hi + value
                    bb = s - hi
                    lo += (hi - (s - bb)) + (value - bb)
                    hi[...] = s
        s, err = _two_sum(self._w_hi, other._w_hi)
        self._w_hi, self._w_lo = s, self._w_lo + err + other._w_lo
        self.count += other.count

    def total_weight(self) -> float:
        return self._w_hi + self._w_lo

    def finalize(self, out: StateDict | None = None) -> StateDict:
        """The weighted mean of everything folded so far.

        With ``out=`` the result is written into the caller's float64
        buffers (reused, not re-allocated) and ``out`` is returned; when
        nothing was folded, ``out`` is returned untouched — the
        empty-survivor edge case falls back to the caller's state without
        a fresh allocation.
        """
        if self.count == 0:
            if out is not None:
                return out
            raise ValueError("need at least one state dict")
        total = self.total_weight()
        if total <= 0:
            raise ValueError("weights must not sum to zero")
        result: StateDict = out if out is not None else {}
        for key in self._keys or []:
            value = self._hi[key] + self._lo[key]
            if out is not None:
                np.divide(value, total, out=result[key])
            else:
                result[key] = value / total
        return result


def average_states(
    states: Sequence[StateDict],
    weights: Sequence[float] | None = None,
    out: StateDict | None = None,
) -> StateDict:
    """Weighted average of state dicts (FedAvg, paper §III-B Aggregation).

    ``weights`` default to uniform; callers pass raw client dataset sizes
    ``n_i`` directly — normalization happens in a single pass, as one
    divide of the compensated product-sum by the compensated weight total
    (see :class:`MeanAccumulator`, which this wraps and whose order
    invariance makes streaming and hierarchical reductions bit-identical
    to this batch form).  ``out=`` reuses the caller's float64 buffers for
    the result; with an empty ``states`` it is returned untouched instead
    of raising.
    """
    if not states and out is not None:
        return out
    _check_same_keys(states)
    if weights is None:
        weights = [1.0] * len(states)
    if len(weights) != len(states):
        raise ValueError("one weight per state dict required")
    acc = MeanAccumulator()
    for state, weight in zip(states, weights):
        acc.fold(state, weight)
    return acc.finalize(out=out)


def state_add(a: StateDict, b: StateDict) -> StateDict:
    """Elementwise ``a + b``."""
    _check_same_keys([a, b])
    return {key: a[key] + b[key] for key in a}


def state_sub(a: StateDict, b: StateDict) -> StateDict:
    """Elementwise ``a - b`` (e.g. a client's update delta)."""
    _check_same_keys([a, b])
    return {key: a[key] - b[key] for key in a}


def state_scale(state: StateDict, factor: float) -> StateDict:
    """Elementwise ``factor * state``."""
    return {key: factor * value for key, value in state.items()}


def zeros_like_state(state: StateDict) -> StateDict:
    """A state dict of zeros with the same structure."""
    return {key: np.zeros_like(value) for key, value in state.items()}


def flatten_state(state: StateDict) -> np.ndarray:
    """Concatenate all tensors (sorted by key) into one flat vector."""
    return np.concatenate([np.ravel(state[key]) for key in sorted(state)])


def unflatten_state(vector: np.ndarray, reference: StateDict) -> StateDict:
    """Inverse of :func:`flatten_state`, using ``reference`` for shapes."""
    result: StateDict = {}
    offset = 0
    for key in sorted(reference):
        size = reference[key].size
        chunk = vector[offset : offset + size]
        if chunk.size != size:
            raise ValueError("vector too short for reference state")
        result[key] = chunk.reshape(reference[key].shape).copy()
        offset += size
    if offset != vector.size:
        raise ValueError("vector too long for reference state")
    return result


def state_allclose(a: StateDict, b: StateDict, atol: float = 1e-10) -> bool:
    """True when both states have identical keys and close values."""
    if sorted(a) != sorted(b):
        return False
    return all(np.allclose(a[key], b[key], atol=atol) for key in a)


# Array-carrying payloads get a pickle-protocol-5 fast path: array bodies
# leave the pickle stream as out-of-band buffers and are framed after the
# (tiny) head, so encoding skips pickle's per-array framing and *decoding*
# hands numpy zero-copy views into the received blob instead of fresh
# allocations.  Eligible are state dicts, bare arrays, and any type that
# opts in with a ``__wire_oob__ = True`` class attribute (the codec
# :class:`repro.fl.codec.Payload` and the executor's ``ClientUpdate`` — the
# latter is what puts FPL's prototype arrays and scratch-delta tensors out
# of band on the upload hop).
_OOB_MAGIC = b"RPB5"
_OOB_LEN = struct.Struct("<Q")


def _is_state_dict(obj: Any) -> bool:
    return (
        type(obj) is dict
        and bool(obj)
        and all(
            type(key) is str and isinstance(value, np.ndarray)
            for key, value in obj.items()
        )
    )


def _wants_oob(obj: Any) -> bool:
    return (
        isinstance(obj, np.ndarray)
        or _is_state_dict(obj)
        or bool(getattr(type(obj), "__wire_oob__", False))
    )


def encode_payload(obj: Any) -> bytes:
    """Serialize a broadcast payload (model template, strategy state) to bytes.

    The parallel execution engine uses this pair for the payloads it encodes
    explicitly; it turns "is it serializable?" into an error naming the
    offending object at dispatch time.  (Task arguments are pickled by the
    process pool itself and fail with the pool's own traceback instead.)

    :class:`StateDict`-shaped objects, bare arrays, and ``__wire_oob__``
    types take the out-of-band fast path; both framings decode through
    :func:`decode_payload`, which dispatches on the leading magic bytes (a
    plain pickle stream can never start with them).
    """
    try:
        if _wants_oob(obj):
            buffers: list[pickle.PickleBuffer] = []
            head = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
            parts: list[bytes | memoryview] = [
                _OOB_MAGIC,
                _OOB_LEN.pack(len(head)),
                head,
                _OOB_LEN.pack(len(buffers)),
            ]
            for buffer in buffers:
                raw = buffer.raw()
                parts.append(_OOB_LEN.pack(raw.nbytes))
                parts.append(raw)
            return b"".join(parts)
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # surface *what* failed to serialize
        raise TypeError(f"payload of type {type(obj).__name__} is not serializable: {exc}") from exc


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`.

    Fast-path blobs decode zero-copy: the returned arrays are *read-only
    views* into ``data``.  Every consumer in this repository treats decoded
    states as immutable (``load_state_dict`` copies; aggregation allocates
    fresh outputs); call ``.copy()`` first if you need to mutate one.
    """
    if data[: len(_OOB_MAGIC)] == _OOB_MAGIC:
        view = memoryview(data)
        offset = len(_OOB_MAGIC)
        (head_len,) = _OOB_LEN.unpack_from(view, offset)
        offset += _OOB_LEN.size
        head = view[offset : offset + head_len]
        offset += head_len
        (count,) = _OOB_LEN.unpack_from(view, offset)
        offset += _OOB_LEN.size
        buffers = []
        for _ in range(count):
            (length,) = _OOB_LEN.unpack_from(view, offset)
            offset += _OOB_LEN.size
            buffers.append(view[offset : offset + length])
            offset += length
        return pickle.loads(head, buffers=buffers)
    return pickle.loads(data)
