"""Convolution and pooling layers.

Conv2d is implemented with im2col: patches are gathered into a matrix so the
convolution becomes one matmul, which is the only way to get acceptable
throughput from numpy.  Input layout is NCHW throughout the library.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter

__all__ = ["Conv2d", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "im2col", "col2im"]


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


# Reusable zero-padded staging buffers, keyed by (shape, dtype).  A training
# step calls im2col once per conv layer per batch with identical shapes, so
# reusing the allocation avoids a fresh np.pad (allocate + border fill) every
# call.  Only the interior is overwritten; the border is zeroed once at
# allocation and never touched again, which is exactly the constant padding
# np.pad produced.  The cap bounds memory when many distinct shapes cycle
# through (e.g. several model architectures in one process).
_PAD_SCRATCH: dict[tuple, np.ndarray] = {}
_PAD_SCRATCH_MAX_ENTRIES = 8


def _padded_scratch(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    key = (shape, np.dtype(dtype).str)
    buffer = _PAD_SCRATCH.get(key)
    if buffer is None:
        if len(_PAD_SCRATCH) >= _PAD_SCRATCH_MAX_ENTRIES:
            _PAD_SCRATCH.clear()
        buffer = np.zeros(shape, dtype=dtype)
        _PAD_SCRATCH[key] = buffer
    return buffer


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, tuple[int, int]]:
    """Rearrange sliding ``kernel x kernel`` patches of NCHW ``x`` into rows.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(batch * out_h * out_w, channels * kernel * kernel)``.
    """
    batch, channels, height, width = x.shape
    out_h = _out_size(height, kernel, stride, padding)
    out_w = _out_size(width, kernel, stride, padding)
    if padding:
        padded = _padded_scratch(
            (batch, channels, height + 2 * padding, width + 2 * padding), x.dtype
        )
        padded[:, :, padding : padding + height, padding : padding + width] = x
        x = padded
    # Strided view: (batch, channels, out_h, out_w, kernel, kernel)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    shape = (batch, channels, out_h, out_w, kernel, kernel)
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    if not cols.flags["C_CONTIGUOUS"]:
        # reshape returned a non-contiguous view (rare layouts, e.g. 1x1
        # kernels); downstream matmuls want contiguous rows, so copy here.
        cols = np.ascontiguousarray(cols)
    elif padding and np.shares_memory(cols, x):
        # reshape returned a view into the reusable scratch buffer; callers
        # cache cols across forward/backward, so detach it.
        cols = cols.copy()
    return cols, (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add column rows back into an NCHW tensor (adjoint of im2col)."""
    batch, channels, height, width = x_shape
    out_h = _out_size(height, kernel, stride, padding)
    out_w = _out_size(width, kernel, stride, padding)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    patches = cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 1, 2, 4, 5
    )
    for ki in range(kernel):
        for kj in range(kernel):
            padded[
                :,
                :,
                ki : ki + stride * out_h : stride,
                kj : kj + stride * out_w : stride,
            ] += patches[:, :, :, :, ki, kj]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Module):
    """2-D convolution over NCHW input."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.he_normal(
                (out_channels, in_channels, kernel_size, kernel_size),
                fan_in=fan_in,
                rng=rng,
            ),
            name="weight",
        )
        self.bias = (
            Parameter(init.zeros((out_channels,)), name="bias") if bias else None
        )
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        cols, (out_h, out_w) = im2col(x, self.kernel_size, self.stride, self.padding)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        out = cols @ weight_matrix.T
        if self.bias is not None:
            out = out + self.bias.data
        batch = x.shape[0]
        return out.reshape(batch, out_h, out_w, self.out_channels).transpose(
            0, 3, 1, 2
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        batch = self._x_shape[0]
        out_h, out_w = self._out_hw
        grad_rows = grad_output.transpose(0, 2, 3, 1).reshape(
            batch * out_h * out_w, self.out_channels
        )
        weight_matrix = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (grad_rows.T @ self._cols).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_rows.sum(axis=0)
        grad_cols = grad_rows @ weight_matrix
        return col2im(
            grad_cols, self._x_shape, self.kernel_size, self.stride, self.padding
        )


class MaxPool2d(Module):
    """Max pooling with square window; stride defaults to the window size."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        reshaped = x.reshape(batch * channels, 1, height, width)
        cols, (out_h, out_w) = im2col(reshaped, self.kernel_size, self.stride, 0)
        self._argmax = np.argmax(cols, axis=1)
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        out = cols[np.arange(cols.shape[0]), self._argmax]
        return out.reshape(batch, channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._x_shape
        out_h, out_w = self._out_hw
        grad_cols = np.zeros(
            (batch * channels * out_h * out_w, self.kernel_size * self.kernel_size),
            dtype=np.float64,
        )
        grad_cols[np.arange(grad_cols.shape[0]), self._argmax] = grad_output.reshape(-1)
        grad = col2im(
            grad_cols,
            (batch * channels, 1, height, width),
            self.kernel_size,
            self.stride,
            0,
        )
        return grad.reshape(batch, channels, height, width)


class AvgPool2d(Module):
    """Average pooling with square window; stride defaults to the window."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        reshaped = x.reshape(batch * channels, 1, height, width)
        cols, (out_h, out_w) = im2col(reshaped, self.kernel_size, self.stride, 0)
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return cols.mean(axis=1).reshape(batch, channels, out_h, out_w)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._x_shape
        window = self.kernel_size * self.kernel_size
        grad_cols = np.repeat(
            grad_output.reshape(-1, 1) / window, window, axis=1
        )
        grad = col2im(
            grad_cols,
            (batch * channels, 1, height, width),
            self.kernel_size,
            self.stride,
            0,
        )
        return grad.reshape(batch, channels, height, width)


class GlobalAvgPool2d(Module):
    """Average each channel over its full spatial extent → (batch, channels)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._x_shape
        spread = grad_output[:, :, None, None] / (height * width)
        return np.broadcast_to(spread, self._x_shape).copy()
