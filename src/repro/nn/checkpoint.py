"""Checkpointing: persist and restore model state dicts as ``.npz`` files.

Long federated sweeps (Table III runs hundreds of client updates) benefit
from resumable global state; downstream users need to ship trained models.
``.npz`` keeps the dependency surface at numpy alone.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module
from repro.nn.serialize import StateDict

__all__ = ["save_state", "load_state", "save_model", "load_model_into"]

_META_KEY = "__repro_checkpoint__"


def save_state(state: StateDict, path: str | Path) -> Path:
    """Write a state dict to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    payload = dict(state)
    if _META_KEY in payload:
        raise ValueError(f"state must not contain the reserved key {_META_KEY}")
    payload[_META_KEY] = np.array([1])  # format version
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)
    return path


def load_state(path: str | Path) -> StateDict:
    """Read a state dict written by :func:`save_state`."""
    path = Path(path)
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro checkpoint")
        return {
            key: archive[key].copy()
            for key in archive.files
            if key != _META_KEY
        }


def save_model(model: Module, path: str | Path) -> Path:
    """Persist a module's current weights and buffers."""
    return save_state(model.state_dict(), path)


def load_model_into(model: Module, path: str | Path) -> None:
    """Restore weights/buffers from ``path`` into ``model`` (strict keys)."""
    model.load_state_dict(load_state(path))
