"""Optimizers for the numpy substrate."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay.

    This is the optimizer used by every federated client in the paper's
    experiments; weight decay here acts on parameters (standard L2), distinct
    from PARDON's representation-space regularizer (``EmbeddingL2Loss``).
    """

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class Adam:
    """Adam optimizer; used for the privacy-attack inverter training."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()
