"""Seeded weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is deterministic given a :class:`repro.utils.SeedTree` — a hard
requirement for federated experiments where every client must start from the
same global weights.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "xavier_uniform", "orthogonal", "zeros"]


def he_normal(
    shape: tuple[int, ...], fan_in: int, rng: np.random.Generator
) -> np.ndarray:
    """He (Kaiming) normal initialization, suited to ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(
    shape: tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot uniform initialization, suited to tanh/linear layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(dim: int, rng: np.random.Generator) -> np.ndarray:
    """A random ``dim x dim`` orthogonal matrix (QR of a Gaussian).

    Used by the invertible style encoder: an orthogonal channel mix is
    exactly invertible by its transpose, which is what lets us decode
    style-transferred features back to image space without training a
    decoder network.
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    gaussian = rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(gaussian)
    # Fix the sign ambiguity of QR so the distribution is Haar-uniform.
    q *= np.sign(np.diag(r))
    return q


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """Zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)
