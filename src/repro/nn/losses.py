"""Loss functions.

Each loss exposes ``forward(...) -> float`` and returns gradients with respect
to its inputs from ``backward()``.  The PARDON objective (paper Eq. 9) is the
composite ``L = L_CE + gamma1 * L_T + gamma2 * L_reg`` where:

* ``L_CE`` — cross-entropy on the classifier logits (paper §III-B, intra-client
  learning);
* ``L_T`` — the style-transfer triplet loss of Eq. 7, anchors are original
  embeddings, positives their AdaIN-transferred versions, negatives the
  transferred embeddings of *other* classes;
* ``L_reg`` — Eq. 8, an L2 penalty on the embeddings themselves (not the
  weights), bounding representation complexity as in FedSR.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax

__all__ = [
    "CrossEntropyLoss",
    "TripletStyleLoss",
    "EmbeddingL2Loss",
    "MSELoss",
]


class CrossEntropyLoss:
    """Softmax cross-entropy over logits with integer labels."""

    def __init__(self, reduction: str = "mean") -> None:
        if reduction not in ("mean", "sum"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != logits.shape[0]:
            raise ValueError("batch size mismatch between logits and labels")
        log_probs = log_softmax(logits, axis=1)
        self._probs = softmax(logits, axis=1)
        self._targets = one_hot(labels, logits.shape[1])
        per_sample = -(self._targets * log_probs).sum(axis=1)
        loss = per_sample.sum()
        if self.reduction == "mean":
            loss /= max(logits.shape[0], 1)
        return float(loss)

    def backward(self) -> np.ndarray:
        """Gradient of the loss with respect to the logits."""
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs - self._targets
        if self.reduction == "mean":
            grad = grad / max(self._probs.shape[0], 1)
        return grad


class TripletStyleLoss:
    """PARDON's multi-domain triplet loss (paper Eq. 7).

    For each sample ``i`` with embedding ``z_i`` (anchor) and style-transferred
    embedding ``z'_i`` (positive), the negatives are the style-transferred
    embeddings of every sample in the batch with a different label:

    ``L_T = sum_i ( ||z_i - z'_i||^2 - mean_n ||z_i - z'_n||^2 + alpha )``

    The paper's Eq. 7 carries no hinge: the pull-to-positive / push-from-
    negative pressure is always active, and the companion regularizer
    (Eq. 8, :class:`EmbeddingL2Loss`) is what keeps the raw embedding norms
    bounded.  Pass ``hinge=True`` for the classical FaceNet variant
    ``[...]_+`` (exposed for ablations).

    With ``normalize=True`` (default) the distances are computed between
    L2-normalized embeddings — the standard practice in contrastive FedDG
    implementations — which bounds every pairwise term in ``[0, 4]`` and
    makes the hinge-free objective well-conditioned at any loss weight.
    Gradients chain through the normalization.

    Gradients are produced with respect to **both** the anchor batch and the
    transferred batch, since both come from the same trainable feature
    extractor.  Samples with an empty negative set (their class fills the
    batch) contribute only the positive pull term.
    """

    def __init__(
        self,
        margin: float = 1.0,
        reduction: str = "mean",
        hinge: bool = False,
        normalize: bool = True,
    ) -> None:
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        if reduction not in ("mean", "sum"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.margin = margin
        self.reduction = reduction
        self.hinge = hinge
        self.normalize = normalize
        self._grads: tuple[np.ndarray, np.ndarray] | None = None

    def forward(
        self,
        anchors: np.ndarray,
        transferred: np.ndarray,
        labels: np.ndarray,
    ) -> float:
        if anchors.shape != transferred.shape:
            raise ValueError(
                f"anchor/transferred shape mismatch: "
                f"{anchors.shape} vs {transferred.shape}"
            )
        labels = np.asarray(labels)
        batch = anchors.shape[0]
        if batch == 0:
            self._grads = (np.zeros_like(anchors), np.zeros_like(transferred))
            return 0.0

        raw_anchors, raw_transferred = anchors, transferred
        if self.normalize:
            anchor_norms = np.linalg.norm(anchors, axis=1, keepdims=True)
            transfer_norms = np.linalg.norm(transferred, axis=1, keepdims=True)
            anchor_norms = np.maximum(anchor_norms, 1e-12)
            transfer_norms = np.maximum(transfer_norms, 1e-12)
            anchors = anchors / anchor_norms
            transferred = transferred / transfer_norms

        # Pairwise squared distances between anchors and transferred samples.
        diff = anchors[:, None, :] - transferred[None, :, :]  # (B, B, d)
        sq_dist = np.einsum("ijk,ijk->ij", diff, diff)  # (B, B)
        negative_mask = labels[:, None] != labels[None, :]  # (B, B)
        negative_counts = negative_mask.sum(axis=1)  # (B,)

        positive_term = np.diagonal(sq_dist)
        with np.errstate(invalid="ignore", divide="ignore"):
            negative_mean = np.where(
                negative_counts > 0,
                (sq_dist * negative_mask).sum(axis=1) / np.maximum(negative_counts, 1),
                0.0,
            )
        raw = positive_term - negative_mean + self.margin
        if self.hinge:
            active = raw > 0
            per_sample = np.where(active, raw, 0.0)
        else:
            active = np.ones_like(raw, dtype=bool)
            per_sample = raw

        scale = 1.0 / batch if self.reduction == "mean" else 1.0

        grad_anchor = np.zeros_like(anchors)
        grad_transferred = np.zeros_like(transferred)
        # d positive / d z_i = 2 (z_i - z'_i); d positive / d z'_i = -2 (...)
        pos_diff = anchors - transferred
        grad_anchor += np.where(active[:, None], 2.0 * pos_diff, 0.0)
        grad_transferred -= np.where(active[:, None], 2.0 * pos_diff, 0.0)
        # d(-negative_mean)/dz_i = -(2/|N_i|) sum_n (z_i - z'_n)
        # d(-negative_mean)/dz'_n = +(2/|N_i|) (z_i - z'_n)
        has_neg = active & (negative_counts > 0)
        if np.any(has_neg):
            inv_counts = np.where(negative_counts > 0, 1.0 / np.maximum(negative_counts, 1), 0.0)
            weights = (negative_mask * has_neg[:, None]) * inv_counts[:, None]  # (B, B)
            # grad wrt anchor i: -2 * sum_n w_in (z_i - z'_n)
            grad_anchor -= 2.0 * (
                weights.sum(axis=1)[:, None] * anchors
                - weights @ transferred
            )
            # grad wrt transferred n: +2 * sum_i w_in (z_i - z'_n)
            grad_transferred += 2.0 * (
                weights.T @ anchors - weights.sum(axis=0)[:, None] * transferred
            )

        grad_anchor *= scale
        grad_transferred *= scale
        if self.normalize:
            # Chain through u = z / ||z||: J^T g = (g - (g . u) u) / ||z||.
            radial_a = np.sum(grad_anchor * anchors, axis=1, keepdims=True)
            grad_anchor = (grad_anchor - radial_a * anchors) / anchor_norms
            radial_t = np.sum(grad_transferred * transferred, axis=1, keepdims=True)
            grad_transferred = (
                grad_transferred - radial_t * transferred
            ) / transfer_norms
        self._grads = (grad_anchor, grad_transferred)
        loss = per_sample.sum() * scale
        return float(loss)

    def backward(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(grad_wrt_anchors, grad_wrt_transferred)``."""
        if self._grads is None:
            raise RuntimeError("backward called before forward")
        return self._grads


class EmbeddingL2Loss:
    """Paper Eq. 8: ``L_reg = sum_i ||z_i||^2 + ||z'_i||^2``.

    Unlike weight decay, this bounds the *representations*, limiting how much
    client-specific information the embedding can encode (following FedSR).
    """

    def __init__(self, reduction: str = "mean") -> None:
        if reduction not in ("mean", "sum"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction
        self._grads: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, anchors: np.ndarray, transferred: np.ndarray) -> float:
        if anchors.shape != transferred.shape:
            raise ValueError(
                f"anchor/transferred shape mismatch: "
                f"{anchors.shape} vs {transferred.shape}"
            )
        batch = anchors.shape[0]
        scale = 1.0 / batch if (self.reduction == "mean" and batch) else 1.0
        loss = (np.sum(anchors**2) + np.sum(transferred**2)) * scale
        self._grads = (2.0 * anchors * scale, 2.0 * transferred * scale)
        return float(loss)

    def backward(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(grad_wrt_anchors, grad_wrt_transferred)``."""
        if self._grads is None:
            raise RuntimeError("backward called before forward")
        return self._grads


class MSELoss:
    """Mean squared error; used to train the privacy-attack inverter."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {predictions.shape} vs {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
