"""Leading-axis ensemble batching: train K identical models in one pass.

A federated worker hosting K co-resident clients runs K structurally
identical models per round.  Instead of looping, this module stacks the K
parameter sets along a new leading axis — weights become ``(K, ...)`` arrays —
so one batched ``np.matmul``/``einsum`` per layer trains the whole stack at
once.  The ``ensemble`` compute backend (:mod:`repro.fl.compute`) is built on
these layers.

Why the per-client numerics survive stacking
--------------------------------------------
numpy's batched ``matmul`` and axis reductions (``mean``/``var``/``sum``)
produce *bitwise identical* results per slice regardless of the stack
composition: slice ``k`` of a batched ``(K, M, N) @ (K, N, P)`` equals the
plain 2-D product of the same operands, and a reduction over a slice's axes
equals the same reduction on the extracted slice.  Every ensemble layer below
is written so its per-slice computation is literally the template layer's
computation — same operand order, same reduction axes relative to the slice —
which is what makes the ``strict`` backend (K=1 stacks through this code
path) bit-identical to the classic loop, and makes per-client results
independent of how clients are grouped into stacks.  The test suite
(`tests/test_nn_ensemble.py`) enforces both properties.

Ensemble layers mirror their template's attribute names (``weight``,
``bias``, ``gamma``, ``layers``, ...), so ``named_parameters`` /
``state_dict`` yield the *same dotted names* with ``(K,) + shape`` values —
the generic state helpers at the bottom of this module stack / split client
state dicts without any per-layer knowledge.

``Dropout`` is deliberately unsupported (it owns a stateful mask generator
whose draw order cannot be reproduced per-slice); models containing it fall
back to the ``loop`` backend via :func:`ensemble_supports`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.conv import (
    AvgPool2d,
    Conv2d,
    GlobalAvgPool2d,
    MaxPool2d,
    col2im,
    im2col,
)
from repro.nn.layers import Flatten, LeakyReLU, Linear, ReLU, Sigmoid, Tanh
from repro.nn.models import FeatureClassifierModel
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.norm import BatchNorm2d, InstanceNorm2d, LayerNorm

__all__ = [
    "EnsembleModule",
    "EnsembleConv2d",
    "EnsembleLinear",
    "EnsembleFlatten",
    "EnsembleSpatialPool",
    "EnsembleBatchNorm2d",
    "EnsembleInstanceNorm2d",
    "EnsembleLayerNorm",
    "EnsembleFeatureClassifierModel",
    "ensemble_cross_entropy",
    "EnsembleTripletStyleLoss",
    "EnsembleEmbeddingL2Loss",
    "register_ensemble_converter",
    "ensemble_supports",
    "ensemble_of",
    "load_state_stack",
    "load_state_broadcast",
    "ensemble_state_dicts",
]


class EnsembleModule(Module):
    """Base class for layers operating on ``(K, batch, ...)`` stacks."""

    def __init__(self, ensemble_size: int) -> None:
        super().__init__()
        if ensemble_size < 1:
            raise ValueError(f"ensemble size must be >= 1, got {ensemble_size}")
        self.ensemble_size = ensemble_size


def _stack_param(template: Parameter, ensemble_size: int, name: str) -> Parameter:
    data = np.broadcast_to(
        template.data, (ensemble_size,) + template.data.shape
    ).copy()
    return Parameter(data, name=name)


class EnsembleConv2d(EnsembleModule):
    """K independent Conv2d layers as one batched im2col matmul.

    One ``im2col`` over the flattened ``(K*B, C, H, W)`` input feeds a single
    ``(K, B*oh*ow, C*k*k) @ (K, C*k*k, out)`` batched product.
    """

    def __init__(self, template: Conv2d, ensemble_size: int) -> None:
        super().__init__(ensemble_size)
        self.in_channels = template.in_channels
        self.out_channels = template.out_channels
        self.kernel_size = template.kernel_size
        self.stride = template.stride
        self.padding = template.padding
        self.weight = _stack_param(template.weight, ensemble_size, "weight")
        self.bias = (
            _stack_param(template.bias, ensemble_size, "bias")
            if template.bias is not None
            else None
        )
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None
        self._out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if (
            x.ndim != 5
            or x.shape[0] != self.ensemble_size
            or x.shape[2] != self.in_channels
        ):
            raise ValueError(
                f"EnsembleConv2d expected ({self.ensemble_size}, batch, "
                f"{self.in_channels}, H, W), got {x.shape}"
            )
        stack, batch = x.shape[:2]
        flat = x.reshape(stack * batch, *x.shape[2:])
        cols, (out_h, out_w) = im2col(flat, self.kernel_size, self.stride, self.padding)
        cols = cols.reshape(stack, batch * out_h * out_w, -1)
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        weight_matrix = self.weight.data.reshape(stack, self.out_channels, -1)
        out = np.matmul(cols, weight_matrix.transpose(0, 2, 1))
        if self.bias is not None:
            out = out + self.bias.data[:, None, :]
        return out.reshape(stack, batch, out_h, out_w, self.out_channels).transpose(
            0, 1, 4, 2, 3
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None or self._out_hw is None:
            raise RuntimeError("backward called before forward")
        stack, batch = self._x_shape[:2]
        out_h, out_w = self._out_hw
        grad_rows = grad_output.transpose(0, 1, 3, 4, 2).reshape(
            stack, batch * out_h * out_w, self.out_channels
        )
        weight_matrix = self.weight.data.reshape(stack, self.out_channels, -1)
        self.weight.grad += np.matmul(
            grad_rows.transpose(0, 2, 1), self._cols
        ).reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_rows.sum(axis=1)
        grad_cols = np.matmul(grad_rows, weight_matrix)
        flat = col2im(
            grad_cols.reshape(stack * batch * out_h * out_w, -1),
            (stack * batch,) + self._x_shape[2:],
            self.kernel_size,
            self.stride,
            self.padding,
        )
        return flat.reshape(self._x_shape)


class EnsembleLinear(EnsembleModule):
    """K independent Linear layers as one batched matmul."""

    def __init__(self, template: Linear, ensemble_size: int) -> None:
        super().__init__(ensemble_size)
        self.in_features = template.in_features
        self.out_features = template.out_features
        self.weight = _stack_param(template.weight, ensemble_size, "weight")
        self.bias = (
            _stack_param(template.bias, ensemble_size, "bias")
            if template.bias is not None
            else None
        )
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if (
            x.ndim != 3
            or x.shape[0] != self.ensemble_size
            or x.shape[2] != self.in_features
        ):
            raise ValueError(
                f"EnsembleLinear expected ({self.ensemble_size}, batch, "
                f"{self.in_features}), got {x.shape}"
            )
        self._input = x
        out = np.matmul(x, self.weight.data)
        if self.bias is not None:
            out = out + self.bias.data[:, None, :]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += np.matmul(self._input.transpose(0, 2, 1), grad_output)
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=1)
        return np.matmul(grad_output, self.weight.data.transpose(0, 2, 1))


class EnsembleFlatten(EnsembleModule):
    """Collapse all axes after ``(K, batch)`` into one."""

    def __init__(self, ensemble_size: int) -> None:
        super().__init__(ensemble_size)
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._shape)


class EnsembleSpatialPool(EnsembleModule):
    """Run a parameter-free spatial pool over a flattened ``(K*B, ...)`` view.

    Pooling acts per sample, so folding the stack axis into the batch axis is
    exact; the wrapped template instance does all the work.
    """

    def __init__(self, pool: Module, ensemble_size: int) -> None:
        super().__init__(ensemble_size)
        self.pool = pool
        self._lead: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        stack, batch = x.shape[:2]
        self._lead = (stack, batch)
        out = self.pool.forward(x.reshape(stack * batch, *x.shape[2:]))
        return out.reshape(stack, batch, *out.shape[1:])

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._lead is None:
            raise RuntimeError("backward called before forward")
        stack, batch = self._lead
        grad = self.pool.backward(
            grad_output.reshape(stack * batch, *grad_output.shape[2:])
        )
        return grad.reshape(stack, batch, *grad.shape[1:])


class EnsembleBatchNorm2d(EnsembleModule):
    """K independent BatchNorm2d layers; per-slice statistics over (B, H, W)."""

    def __init__(self, template: BatchNorm2d, ensemble_size: int) -> None:
        super().__init__(ensemble_size)
        self.num_features = template.num_features
        self.momentum = template.momentum
        self.eps = template.eps
        self.gamma = _stack_param(template.gamma, ensemble_size, "gamma")
        self.beta = _stack_param(template.beta, ensemble_size, "beta")
        self._buffers = {
            name: np.broadcast_to(value, (ensemble_size,) + value.shape).copy()
            for name, value in template._buffers.items()
        }
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if (
            x.ndim != 5
            or x.shape[0] != self.ensemble_size
            or x.shape[2] != self.num_features
        ):
            raise ValueError(
                f"EnsembleBatchNorm2d expected ({self.ensemble_size}, batch, "
                f"{self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(1, 3, 4))
            var = x.var(axis=(1, 3, 4))
            self._buffers["running_mean"] = (
                (1 - self.momentum) * self._buffers["running_mean"]
                + self.momentum * mean
            )
            self._buffers["running_var"] = (
                (1 - self.momentum) * self._buffers["running_var"]
                + self.momentum * var
            )
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean[:, None, :, None, None]) * inv_std[
            :, None, :, None, None
        ]
        self._cache = (normalized, inv_std, x.shape)
        return (
            self.gamma.data[:, None, :, None, None] * normalized
            + self.beta.data[:, None, :, None, None]
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, shape = self._cache
        _, batch, _, height, width = shape
        count = batch * height * width
        self.gamma.grad += (grad_output * normalized).sum(axis=(1, 3, 4))
        self.beta.grad += grad_output.sum(axis=(1, 3, 4))
        grad_norm = grad_output * self.gamma.data[:, None, :, None, None]
        if not self.training:
            return grad_norm * inv_std[:, None, :, None, None]
        sum_grad = grad_norm.sum(axis=(1, 3, 4), keepdims=True)
        sum_grad_norm = (grad_norm * normalized).sum(axis=(1, 3, 4), keepdims=True)
        return (
            inv_std[:, None, :, None, None]
            / count
            * (count * grad_norm - sum_grad - normalized * sum_grad_norm)
        )


class EnsembleInstanceNorm2d(EnsembleModule):
    """K independent InstanceNorm2d layers; statistics are per sample anyway."""

    def __init__(self, template: InstanceNorm2d, ensemble_size: int) -> None:
        super().__init__(ensemble_size)
        self.num_features = template.num_features
        self.eps = template.eps
        self.affine = template.affine
        if template.affine:
            self.gamma = _stack_param(template.gamma, ensemble_size, "gamma")
            self.beta = _stack_param(template.beta, ensemble_size, "beta")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if (
            x.ndim != 5
            or x.shape[0] != self.ensemble_size
            or x.shape[2] != self.num_features
        ):
            raise ValueError(
                f"EnsembleInstanceNorm2d expected ({self.ensemble_size}, batch, "
                f"{self.num_features}, H, W), got {x.shape}"
            )
        mean = x.mean(axis=(3, 4), keepdims=True)
        var = x.var(axis=(3, 4), keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean) * inv_std
        self._cache = (normalized, inv_std, x.shape)
        if not self.affine:
            return normalized
        return (
            self.gamma.data[:, None, :, None, None] * normalized
            + self.beta.data[:, None, :, None, None]
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, shape = self._cache
        height, width = shape[3], shape[4]
        count = height * width
        if self.affine:
            self.gamma.grad += (grad_output * normalized).sum(axis=(1, 3, 4))
            self.beta.grad += grad_output.sum(axis=(1, 3, 4))
            grad_norm = grad_output * self.gamma.data[:, None, :, None, None]
        else:
            grad_norm = grad_output
        sum_grad = grad_norm.sum(axis=(3, 4), keepdims=True)
        sum_grad_norm = (grad_norm * normalized).sum(axis=(3, 4), keepdims=True)
        return inv_std / count * (count * grad_norm - sum_grad - normalized * sum_grad_norm)


class EnsembleLayerNorm(EnsembleModule):
    """K independent LayerNorm layers over the last axis of (K, B, F) input."""

    def __init__(self, template: LayerNorm, ensemble_size: int) -> None:
        super().__init__(ensemble_size)
        self.num_features = template.num_features
        self.eps = template.eps
        self.gamma = _stack_param(template.gamma, ensemble_size, "gamma")
        self.beta = _stack_param(template.beta, ensemble_size, "beta")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if (
            x.ndim != 3
            or x.shape[0] != self.ensemble_size
            or x.shape[2] != self.num_features
        ):
            raise ValueError(
                f"EnsembleLayerNorm expected ({self.ensemble_size}, batch, "
                f"{self.num_features}), got {x.shape}"
            )
        mean = x.mean(axis=2, keepdims=True)
        var = x.var(axis=2, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean) * inv_std
        self._cache = (normalized, inv_std)
        return (
            self.gamma.data[:, None, :] * normalized + self.beta.data[:, None, :]
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std = self._cache
        count = self.num_features
        self.gamma.grad += (grad_output * normalized).sum(axis=1)
        self.beta.grad += grad_output.sum(axis=1)
        grad_norm = grad_output * self.gamma.data[:, None, :]
        sum_grad = grad_norm.sum(axis=2, keepdims=True)
        sum_grad_norm = (grad_norm * normalized).sum(axis=2, keepdims=True)
        return inv_std / count * (count * grad_norm - sum_grad - normalized * sum_grad_norm)


class EnsembleFeatureClassifierModel(FeatureClassifierModel):
    """A stacked :class:`FeatureClassifierModel`; same split-gradient routing.

    The parent's ``forward_features`` / ``forward_logits`` / ``backward`` are
    shape-agnostic delegations, so only the stack size needs recording.
    """

    def __init__(
        self,
        features: Module,
        classifier: Module,
        embed_dim: int,
        ensemble_size: int,
    ) -> None:
        super().__init__(features, classifier, embed_dim)
        self.ensemble_size = ensemble_size


# --------------------------------------------------------------------------
# Ensemble losses
# --------------------------------------------------------------------------


def ensemble_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Mean-reduced softmax cross-entropy per slice of a ``(K, B, C)`` stack.

    Returns ``(losses, grad_logits)`` with ``losses`` of shape ``(K,)`` and
    ``grad_logits`` matching ``logits``; slice ``k`` is bitwise what
    :class:`repro.nn.losses.CrossEntropyLoss` computes on that slice.
    """
    if logits.ndim != 3:
        raise ValueError(f"logits must be 3-D (K, B, C), got shape {logits.shape}")
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != logits.shape[:2]:
        raise ValueError(
            f"labels shape {labels.shape} does not match logits {logits.shape[:2]}"
        )
    stack, batch, num_classes = logits.shape
    shifted = logits - logits.max(axis=2, keepdims=True)
    exp = np.exp(shifted)
    total = exp.sum(axis=2, keepdims=True)
    log_probs = shifted - np.log(total)
    probs = exp / total
    targets = np.zeros_like(logits)
    targets[
        np.arange(stack)[:, None], np.arange(batch)[None, :], labels
    ] = 1.0
    per_sample = -(targets * log_probs).sum(axis=2)
    losses = per_sample.sum(axis=1) / max(batch, 1)
    grad = (probs - targets) / max(batch, 1)
    return losses, grad


class EnsembleTripletStyleLoss:
    """Leading-axis mirror of :class:`repro.nn.losses.TripletStyleLoss`.

    Inputs are ``(K, B, d)`` stacks plus ``(K, B)`` labels; ``forward``
    returns per-slice losses of shape ``(K,)`` and ``backward`` the matching
    gradient stacks.  Slice ``k`` reproduces the template loss on that slice
    bitwise (same operand order; the pairwise products become batched
    matmuls).
    """

    def __init__(
        self,
        margin: float = 1.0,
        reduction: str = "mean",
        hinge: bool = False,
        normalize: bool = True,
    ) -> None:
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        if reduction not in ("mean", "sum"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.margin = margin
        self.reduction = reduction
        self.hinge = hinge
        self.normalize = normalize
        self._grads: tuple[np.ndarray, np.ndarray] | None = None

    def forward(
        self,
        anchors: np.ndarray,
        transferred: np.ndarray,
        labels: np.ndarray,
    ) -> np.ndarray:
        if anchors.shape != transferred.shape:
            raise ValueError(
                f"anchor/transferred shape mismatch: "
                f"{anchors.shape} vs {transferred.shape}"
            )
        if anchors.ndim != 3:
            raise ValueError(f"expected (K, B, d) stacks, got {anchors.shape}")
        labels = np.asarray(labels)
        stack, batch = anchors.shape[:2]
        if batch == 0:
            self._grads = (np.zeros_like(anchors), np.zeros_like(transferred))
            return np.zeros(stack)

        if self.normalize:
            anchor_norms = np.linalg.norm(anchors, axis=2, keepdims=True)
            transfer_norms = np.linalg.norm(transferred, axis=2, keepdims=True)
            anchor_norms = np.maximum(anchor_norms, 1e-12)
            transfer_norms = np.maximum(transfer_norms, 1e-12)
            anchors = anchors / anchor_norms
            transferred = transferred / transfer_norms

        diff = anchors[:, :, None, :] - transferred[:, None, :, :]  # (K, B, B, d)
        sq_dist = np.einsum("kijl,kijl->kij", diff, diff)  # (K, B, B)
        negative_mask = labels[:, :, None] != labels[:, None, :]  # (K, B, B)
        negative_counts = negative_mask.sum(axis=2)  # (K, B)

        positive_term = np.diagonal(sq_dist, axis1=1, axis2=2)
        with np.errstate(invalid="ignore", divide="ignore"):
            negative_mean = np.where(
                negative_counts > 0,
                (sq_dist * negative_mask).sum(axis=2)
                / np.maximum(negative_counts, 1),
                0.0,
            )
        raw = positive_term - negative_mean + self.margin
        if self.hinge:
            active = raw > 0
            per_sample = np.where(active, raw, 0.0)
        else:
            active = np.ones_like(raw, dtype=bool)
            per_sample = raw

        scale = 1.0 / batch if self.reduction == "mean" else 1.0

        grad_anchor = np.zeros_like(anchors)
        grad_transferred = np.zeros_like(transferred)
        pos_diff = anchors - transferred
        grad_anchor += np.where(active[:, :, None], 2.0 * pos_diff, 0.0)
        grad_transferred -= np.where(active[:, :, None], 2.0 * pos_diff, 0.0)
        has_neg = active & (negative_counts > 0)
        if np.any(has_neg):
            inv_counts = np.where(
                negative_counts > 0, 1.0 / np.maximum(negative_counts, 1), 0.0
            )
            weights = (negative_mask * has_neg[:, :, None]) * inv_counts[:, :, None]
            grad_anchor -= 2.0 * (
                weights.sum(axis=2)[:, :, None] * anchors
                - np.matmul(weights, transferred)
            )
            grad_transferred += 2.0 * (
                np.matmul(weights.transpose(0, 2, 1), anchors)
                - weights.sum(axis=1)[:, :, None] * transferred
            )

        grad_anchor *= scale
        grad_transferred *= scale
        if self.normalize:
            radial_a = np.sum(grad_anchor * anchors, axis=2, keepdims=True)
            grad_anchor = (grad_anchor - radial_a * anchors) / anchor_norms
            radial_t = np.sum(grad_transferred * transferred, axis=2, keepdims=True)
            grad_transferred = (
                grad_transferred - radial_t * transferred
            ) / transfer_norms
        self._grads = (grad_anchor, grad_transferred)
        return per_sample.sum(axis=1) * scale

    def backward(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(grad_wrt_anchors, grad_wrt_transferred)`` stacks."""
        if self._grads is None:
            raise RuntimeError("backward called before forward")
        return self._grads


class EnsembleEmbeddingL2Loss:
    """Leading-axis mirror of :class:`repro.nn.losses.EmbeddingL2Loss`."""

    def __init__(self, reduction: str = "mean") -> None:
        if reduction not in ("mean", "sum"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction
        self._grads: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, anchors: np.ndarray, transferred: np.ndarray) -> np.ndarray:
        if anchors.shape != transferred.shape:
            raise ValueError(
                f"anchor/transferred shape mismatch: "
                f"{anchors.shape} vs {transferred.shape}"
            )
        batch = anchors.shape[1]
        scale = 1.0 / batch if (self.reduction == "mean" and batch) else 1.0
        losses = (
            np.sum(anchors**2, axis=(1, 2)) + np.sum(transferred**2, axis=(1, 2))
        ) * scale
        self._grads = (2.0 * anchors * scale, 2.0 * transferred * scale)
        return losses

    def backward(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(grad_wrt_anchors, grad_wrt_transferred)`` stacks."""
        if self._grads is None:
            raise RuntimeError("backward called before forward")
        return self._grads


# --------------------------------------------------------------------------
# Converter registry: template layer type -> ensemble constructor
# --------------------------------------------------------------------------

_CONVERTERS: dict[type, Callable[[Module, int], Module]] = {}


def register_ensemble_converter(
    template_type: type, converter: Callable[[Module, int], Module]
) -> None:
    """Register ``converter(template, K) -> ensemble module`` for a layer type.

    Matching is by exact type (like the codec registry's spec names): a
    subclass with different semantics must register its own converter or its
    models fall back to the ``loop`` backend.
    """
    _CONVERTERS[template_type] = converter


def ensemble_supports(model: Module) -> bool:
    """True if every module in ``model`` has a registered ensemble converter."""
    return all(type(module) in _CONVERTERS for module in model.modules())


def _convert(module: Module, ensemble_size: int) -> Module:
    try:
        converter = _CONVERTERS[type(module)]
    except KeyError:
        raise ValueError(
            f"no ensemble converter registered for {type(module).__name__}"
        ) from None
    return converter(module, ensemble_size)


def ensemble_of(model: Module, ensemble_size: int) -> Module:
    """Build a ``(K, ...)``-stacked clone of ``model``.

    Every slice of the result starts as a copy of ``model``'s weights; use
    :func:`load_state_stack` to give each slice its own state.
    """
    if not ensemble_supports(model):
        unsupported = sorted(
            {
                type(module).__name__
                for module in model.modules()
                if type(module) not in _CONVERTERS
            }
        )
        raise ValueError(
            f"model contains modules without ensemble converters: {unsupported}"
        )
    return _convert(model, ensemble_size)


def _convert_fresh(factory: Callable[[Module], Module]) -> Callable[[Module, int], Module]:
    return lambda template, ensemble_size: factory(template)


register_ensemble_converter(Conv2d, EnsembleConv2d)
register_ensemble_converter(Linear, EnsembleLinear)
register_ensemble_converter(BatchNorm2d, EnsembleBatchNorm2d)
register_ensemble_converter(InstanceNorm2d, EnsembleInstanceNorm2d)
register_ensemble_converter(LayerNorm, EnsembleLayerNorm)
register_ensemble_converter(
    Flatten, lambda template, ensemble_size: EnsembleFlatten(ensemble_size)
)
# Elementwise layers are shape-agnostic: fresh template-class instances work
# on (K, batch, ...) stacks unchanged.
register_ensemble_converter(ReLU, _convert_fresh(lambda t: ReLU()))
register_ensemble_converter(Tanh, _convert_fresh(lambda t: Tanh()))
register_ensemble_converter(Sigmoid, _convert_fresh(lambda t: Sigmoid()))
register_ensemble_converter(
    LeakyReLU, _convert_fresh(lambda t: LeakyReLU(t.negative_slope))
)
register_ensemble_converter(
    MaxPool2d,
    lambda t, k: EnsembleSpatialPool(MaxPool2d(t.kernel_size, t.stride), k),
)
register_ensemble_converter(
    AvgPool2d,
    lambda t, k: EnsembleSpatialPool(AvgPool2d(t.kernel_size, t.stride), k),
)
register_ensemble_converter(
    GlobalAvgPool2d, lambda t, k: EnsembleSpatialPool(GlobalAvgPool2d(), k)
)
register_ensemble_converter(
    Sequential,
    lambda t, k: Sequential(*[_convert(layer, k) for layer in t.layers]),
)
register_ensemble_converter(
    FeatureClassifierModel,
    lambda t, k: EnsembleFeatureClassifierModel(
        _convert(t.features, k), _convert(t.classifier, k), t.embed_dim, k
    ),
)


# --------------------------------------------------------------------------
# State helpers: per-client dicts <-> (K, ...) stacks
# --------------------------------------------------------------------------


def load_state_stack(emodel: Module, states: list[dict[str, np.ndarray]]) -> None:
    """Load K per-client state dicts into the slices of an ensemble model."""
    stacked = {}
    for name in states[0]:
        stacked[name] = np.stack(
            [np.asarray(state[name], dtype=np.float64) for state in states]
        )
    emodel.load_state_dict(stacked)


def load_state_broadcast(
    emodel: Module, state: dict[str, np.ndarray], ensemble_size: int
) -> None:
    """Load one (global) state dict into every slice of an ensemble model."""
    stacked = {
        name: np.broadcast_to(
            np.asarray(value, dtype=np.float64), (ensemble_size,) + np.shape(value)
        )
        for name, value in state.items()
    }
    emodel.load_state_dict(stacked)


def ensemble_state_dicts(emodel: Module) -> list[dict[str, np.ndarray]]:
    """Split an ensemble model back into K per-client state dicts.

    Key order matches the template's ``state_dict`` (parameters, then
    buffers) because ensemble layers mirror the template attribute names.
    """
    ensemble_size = getattr(emodel, "ensemble_size", None)
    if ensemble_size is None:
        for module in emodel.modules():
            ensemble_size = getattr(module, "ensemble_size", None)
            if ensemble_size is not None:
                break
    if ensemble_size is None:
        raise ValueError("not an ensemble model: no ensemble_size found")
    states: list[dict[str, np.ndarray]] = [{} for _ in range(ensemble_size)]
    for name, param in emodel.named_parameters():
        for index in range(ensemble_size):
            states[index][name] = param.data[index].copy()
    for name, buffer in emodel.named_buffers():
        for index in range(ensemble_size):
            states[index][name] = buffer[index].copy()
    return states
