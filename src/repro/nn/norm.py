"""Normalization layers.

BatchNorm keeps running statistics in ``_buffers`` so they travel with
``state_dict`` during federated aggregation, matching how FedAvg on PyTorch
models averages BN statistics along with weights.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["BatchNorm2d", "InstanceNorm2d", "LayerNorm"]


class BatchNorm2d(Module):
    """Batch normalization over NCHW input (per-channel)."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self._buffers = {
            "running_mean": np.zeros(num_features),
            "running_var": np.ones(num_features),
        }
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expected (batch, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self._buffers["running_mean"] = (
                (1 - self.momentum) * self._buffers["running_mean"]
                + self.momentum * mean
            )
            self._buffers["running_var"] = (
                (1 - self.momentum) * self._buffers["running_var"]
                + self.momentum * var
            )
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (normalized, inv_std, x.shape)
        return (
            self.gamma.data[None, :, None, None] * normalized
            + self.beta.data[None, :, None, None]
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, shape = self._cache
        batch, _, height, width = shape
        count = batch * height * width
        self.gamma.grad += (grad_output * normalized).sum(axis=(0, 2, 3))
        self.beta.grad += grad_output.sum(axis=(0, 2, 3))
        grad_norm = grad_output * self.gamma.data[None, :, None, None]
        if not self.training:
            return grad_norm * inv_std[None, :, None, None]
        # Training-mode backward must account for the dependence of the batch
        # statistics on every element.
        sum_grad = grad_norm.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_norm = (grad_norm * normalized).sum(axis=(0, 2, 3), keepdims=True)
        return (
            inv_std[None, :, None, None]
            / count
            * (count * grad_norm - sum_grad - normalized * sum_grad_norm)
        )


class InstanceNorm2d(Module):
    """Instance normalization: per-sample, per-channel spatial whitening.

    Exposed because it is the mechanism AdaIN builds on — AdaIN is instance
    normalization followed by an affine re-style — and because it is a useful
    ablation (an instance-normalized backbone removes much of the style shift
    our synthetic domains introduce).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, affine: bool = True) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.affine = affine
        if affine:
            self.gamma = Parameter(np.ones(num_features), name="gamma")
            self.beta = Parameter(np.zeros(num_features), name="beta")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"InstanceNorm2d expected (batch, {self.num_features}, H, W), "
                f"got {x.shape}"
            )
        mean = x.mean(axis=(2, 3), keepdims=True)
        var = x.var(axis=(2, 3), keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean) * inv_std
        self._cache = (normalized, inv_std, x.shape)
        if not self.affine:
            return normalized
        return (
            self.gamma.data[None, :, None, None] * normalized
            + self.beta.data[None, :, None, None]
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, shape = self._cache
        _, _, height, width = shape
        count = height * width
        if self.affine:
            self.gamma.grad += (grad_output * normalized).sum(axis=(0, 2, 3))
            self.beta.grad += grad_output.sum(axis=(0, 2, 3))
            grad_norm = grad_output * self.gamma.data[None, :, None, None]
        else:
            grad_norm = grad_output
        sum_grad = grad_norm.sum(axis=(2, 3), keepdims=True)
        sum_grad_norm = (grad_norm * normalized).sum(axis=(2, 3), keepdims=True)
        return inv_std / count * (count * grad_norm - sum_grad - normalized * sum_grad_norm)


class LayerNorm(Module):
    """Layer normalization over the last axis of 2-D input."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"LayerNorm expected (batch, {self.num_features}), got {x.shape}"
            )
        mean = x.mean(axis=1, keepdims=True)
        var = x.var(axis=1, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normalized = (x - mean) * inv_std
        self._cache = (normalized, inv_std)
        return self.gamma.data * normalized + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std = self._cache
        count = self.num_features
        self.gamma.grad += (grad_output * normalized).sum(axis=0)
        self.beta.grad += grad_output.sum(axis=0)
        grad_norm = grad_output * self.gamma.data
        sum_grad = grad_norm.sum(axis=1, keepdims=True)
        sum_grad_norm = (grad_norm * normalized).sum(axis=1, keepdims=True)
        return inv_std / count * (count * grad_norm - sum_grad - normalized * sum_grad_norm)
