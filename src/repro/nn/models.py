"""Model definitions used across the library.

Every federated strategy in the paper views the network as two modules
(paper §III-B): a feature extractor ``f : X -> Z`` producing a compact
embedding, and a unified classifier ``g : Z -> logits``.
:class:`FeatureClassifierModel` encodes that split explicitly, and its
``backward`` accepts gradients arriving at *both* the logits (from
cross-entropy) and the embedding (from the triplet / regularization terms),
which is exactly the gradient routing PARDON's composite objective needs.
"""

from __future__ import annotations

import numpy as np

from repro.nn.conv import Conv2d
from repro.nn.layers import Flatten, Linear, ReLU
from repro.nn.module import Module, Sequential

__all__ = ["FeatureClassifierModel", "build_cnn_model", "build_mlp_model"]


class FeatureClassifierModel(Module):
    """A feature extractor + classifier pair with split gradient entry points.

    Parameters
    ----------
    features:
        Maps input batches to embeddings of shape ``(batch, embed_dim)``.
    classifier:
        Maps embeddings to logits of shape ``(batch, num_classes)``.
    """

    def __init__(self, features: Module, classifier: Module, embed_dim: int) -> None:
        super().__init__()
        self.features = features
        self.classifier = classifier
        self.embed_dim = embed_dim

    def forward_features(self, x: np.ndarray) -> np.ndarray:
        """Embed a batch; caches activations for the next ``backward``."""
        return self.features.forward(x)

    def forward_logits(self, embeddings: np.ndarray) -> np.ndarray:
        """Classify embeddings; caches activations for the next ``backward``."""
        return self.classifier.forward(embeddings)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full forward pass to logits."""
        return self.forward_logits(self.forward_features(x))

    def backward(
        self,
        grad_logits: np.ndarray | None = None,
        grad_embedding: np.ndarray | None = None,
    ) -> np.ndarray:
        """Back-propagate gradients arriving at the logits and/or embedding.

        Returns the gradient with respect to the input batch (useful for
        input-space attacks and the loss-landscape tooling).
        """
        if grad_logits is None and grad_embedding is None:
            raise ValueError("at least one of grad_logits/grad_embedding required")
        total_grad_embedding = None
        if grad_logits is not None:
            total_grad_embedding = self.classifier.backward(grad_logits)
        if grad_embedding is not None:
            if total_grad_embedding is None:
                total_grad_embedding = grad_embedding.copy()
            else:
                total_grad_embedding = total_grad_embedding + grad_embedding
        return self.features.backward(total_grad_embedding)

    def predict_logits(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Evaluation-mode logits, computed in batches to bound memory."""
        was_training = self.training
        self.eval()
        chunks = []
        for start in range(0, x.shape[0], batch_size):
            chunk = x[start : start + batch_size]
            chunks.append(self.forward(chunk))
        if was_training:
            self.train()
        if not chunks:
            return np.zeros((0, 1))
        return np.concatenate(chunks, axis=0)


def build_cnn_model(
    image_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    widths: tuple[int, int] = (12, 24),
    embed_dim: int = 64,
) -> FeatureClassifierModel:
    """The default backbone: two stride-2 convs, then a linear embedding.

    Stands in for the paper's ResNet/ImageNet-scale backbone at a size a
    numpy substrate can train in seconds.  Input is NCHW.
    """
    channels, height, width = image_shape
    if height % 4 or width % 4:
        raise ValueError(f"image sides must be divisible by 4, got {image_shape}")
    w1, w2 = widths
    feature_layers = Sequential(
        Conv2d(channels, w1, kernel_size=3, stride=2, padding=1, rng=rng),
        ReLU(),
        Conv2d(w1, w2, kernel_size=3, stride=2, padding=1, rng=rng),
        ReLU(),
        Flatten(),
        Linear((height // 4) * (width // 4) * w2, embed_dim, rng=rng),
    )
    classifier = Linear(embed_dim, num_classes, rng=rng)
    return FeatureClassifierModel(feature_layers, classifier, embed_dim=embed_dim)


def build_mlp_model(
    image_shape: tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    hidden_dim: int = 64,
    embed_dim: int = 32,
) -> FeatureClassifierModel:
    """A small MLP backbone for fast unit/integration tests."""
    channels, height, width = image_shape
    input_dim = channels * height * width
    feature_layers = Sequential(
        Flatten(),
        Linear(input_dim, hidden_dim, rng=rng),
        ReLU(),
        Linear(hidden_dim, embed_dim, rng=rng),
    )
    classifier = Linear(embed_dim, num_classes, rng=rng)
    return FeatureClassifierModel(feature_layers, classifier, embed_dim=embed_dim)
