"""Style-inversion generator: the reconstruction attacker's model.

Stands in for the paper's GAN (FastGAN, Liu et al. 2021): a decoder trained
to map a style vector back to the image it came from.  The attacker trains
it on whatever data they control — a public surrogate dataset for the
third-party attack, or their own local data for the inter-client attack —
then feeds it the victim's style vectors.

The privacy claim does not depend on the generator family: a client-level
style vector is an *average over the whole client dataset*, so any inverter
receives a single point that is (a) out of the training distribution of
per-sample styles and (b) independent of any individual image's content.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Linear, ReLU, Tanh
from repro.nn.losses import MSELoss
from repro.nn.module import Sequential
from repro.nn.optim import Adam
from repro.style.adain import per_sample_style_stats
from repro.style.encoder import InvertibleEncoder

__all__ = ["StyleInversionGenerator", "sample_style_vectors", "train_inverter"]


def sample_style_vectors(
    images: np.ndarray, encoder: InvertibleEncoder, patch_grid: int = 0
) -> np.ndarray:
    """Per-image style vectors under ``encoder``.

    With ``patch_grid == 0`` this is the global ``(mu, sigma) in R^{2d}``
    statistic.  With ``patch_grid == g`` the vector additionally carries the
    per-channel mean of each of the ``g x g`` spatial patches — the
    spatially-resolved statistics that sample-level sharing schemes (deep
    multi-layer VGG statistics in CCST) expose and that make per-image
    reconstruction possible.  Client-level aggregation (PARDON) averages
    these away, which is precisely the privacy gap Table IV measures.
    """
    features = encoder.encode(images)
    mu, sigma = per_sample_style_stats(features)
    parts = [mu, sigma]
    if patch_grid > 0:
        n, channels, height, width = features.shape
        if height % patch_grid or width % patch_grid:
            raise ValueError(
                f"feature map {height}x{width} not divisible by "
                f"patch_grid={patch_grid}"
            )
        ph, pw = height // patch_grid, width // patch_grid
        patches = features.reshape(
            n, channels, patch_grid, ph, patch_grid, pw
        ).mean(axis=(3, 5))
        parts.append(patches.reshape(n, channels * patch_grid * patch_grid))
    return np.concatenate(parts, axis=1)


class StyleInversionGenerator:
    """MLP decoder: style vector -> image (the GAN substitute).

    A tanh-bounded output keeps reconstructions in a plausible pixel range;
    a learned output scale restores amplitude.
    """

    def __init__(
        self,
        style_dim: int,
        image_shape: tuple[int, int, int],
        rng: np.random.Generator,
        hidden_dim: int = 128,
        output_scale: float = 3.0,
    ) -> None:
        self.style_dim = style_dim
        self.image_shape = image_shape
        self.output_scale = output_scale
        out_dim = int(np.prod(image_shape))
        self.network = Sequential(
            Linear(style_dim, hidden_dim, rng=rng),
            ReLU(),
            Linear(hidden_dim, hidden_dim, rng=rng),
            ReLU(),
            Linear(hidden_dim, out_dim, rng=rng),
            Tanh(),
        )

    def generate(self, style_vectors: np.ndarray) -> np.ndarray:
        """Reconstruct images from style vectors, shape ``(n, C, H, W)``."""
        if style_vectors.ndim != 2 or style_vectors.shape[1] != self.style_dim:
            raise ValueError(
                f"expected (n, {self.style_dim}) style vectors, "
                f"got {style_vectors.shape}"
            )
        flat = self.network.forward(style_vectors) * self.output_scale
        return flat.reshape((style_vectors.shape[0],) + self.image_shape)

    def train_step(
        self,
        style_vectors: np.ndarray,
        target_images: np.ndarray,
        optimizer: Adam,
    ) -> float:
        """One MSE reconstruction step; returns the batch loss."""
        self.network.zero_grad()
        flat = self.network.forward(style_vectors) * self.output_scale
        targets = target_images.reshape(target_images.shape[0], -1)
        criterion = MSELoss()
        loss = criterion.forward(flat, targets)
        self.network.backward(criterion.backward() * self.output_scale)
        optimizer.step()
        return loss


@dataclass
class InverterTrainingResult:
    """The trained inverter plus its training trace."""

    generator: StyleInversionGenerator
    losses: list[float]
    best_psnr: float


def train_inverter(
    train_images: np.ndarray,
    encoder: InvertibleEncoder,
    rng: np.random.Generator,
    epochs: int = 60,
    batch_size: int = 32,
    learning_rate: float = 1e-3,
    hidden_dim: int = 128,
    patch_grid: int = 0,
) -> InverterTrainingResult:
    """Train a style-inversion generator on (style(x), x) pairs.

    ``patch_grid`` selects the granularity of the style vectors the
    attacker inverts (see :func:`sample_style_vectors`); it must match the
    granularity of the vectors later fed to :meth:`generate`.  Mirrors the
    paper's procedure: train until the reconstruction loss plateaus and
    keep the model with the best validation PSNR (we hold out a tenth of
    the attacker's data for that selection).
    """
    from repro.privacy.metrics import psnr

    if train_images.shape[0] < 4:
        raise ValueError("attacker needs at least 4 images to train on")
    styles = sample_style_vectors(train_images, encoder, patch_grid=patch_grid)
    n = styles.shape[0]
    n_val = max(n // 10, 1)
    order = rng.permutation(n)
    val_idx, train_idx = order[:n_val], order[n_val:]

    generator = StyleInversionGenerator(
        style_dim=styles.shape[1],
        image_shape=tuple(train_images.shape[1:]),
        rng=rng,
        hidden_dim=hidden_dim,
        output_scale=float(np.abs(train_images).max()),
    )
    optimizer = Adam(generator.network.parameters(), lr=learning_rate)
    losses: list[float] = []
    best_psnr = -np.inf
    best_state = None
    for _ in range(epochs):
        epoch_order = rng.permutation(train_idx)
        for start in range(0, len(epoch_order), batch_size):
            idx = epoch_order[start : start + batch_size]
            losses.append(
                generator.train_step(styles[idx], train_images[idx], optimizer)
            )
        reconstructed = generator.generate(styles[val_idx])
        val_psnr = psnr(train_images[val_idx], reconstructed)
        if val_psnr > best_psnr:
            best_psnr = val_psnr
            best_state = generator.network.state_dict()
    if best_state is not None:
        generator.network.load_state_dict(best_state)
    return InverterTrainingResult(
        generator=generator, losses=losses, best_psnr=float(best_psnr)
    )
