"""``repro.privacy`` — reconstruction attacks and privacy metrics.

Implements the paper's security analysis: style-inversion generators (the
GAN substitute), the third-party and inter-client attacks, and the
FID / inception-score / PSNR metrics of Table IV.
"""

from repro.privacy.attacks import (
    ReconstructionReport,
    client_style_vectors,
    run_reconstruction_attack,
)
from repro.privacy.inversion import (
    StyleInversionGenerator,
    sample_style_vectors,
    train_inverter,
)
from repro.privacy.metrics import (
    fid_score,
    frechet_distance,
    inception_score_like,
    psnr,
)
from repro.privacy.dp import (
    DPStyleStrategy,
    GaussianMechanism,
    gaussian_sigma,
)

__all__ = [
    "DPStyleStrategy",
    "GaussianMechanism",
    "gaussian_sigma",
    "ReconstructionReport",
    "run_reconstruction_attack",
    "client_style_vectors",
    "StyleInversionGenerator",
    "sample_style_vectors",
    "train_inverter",
    "fid_score",
    "frechet_distance",
    "inception_score_like",
    "psnr",
]
