"""Differentially-private style sharing (an extension beyond the paper).

PARDON's privacy argument is empirical (reconstruction attacks fail on the
aggregated vector).  A natural hardening — listed here as the future-work
extension the title's "privacy-aware" invites — is to make the uploaded
style vector *formally* private: clip its L2 norm and add calibrated
Gaussian noise, yielding (epsilon, delta)-DP with respect to the client's
entire dataset (the style vector is a single bounded-sensitivity release).

The interpolation pipeline is median-based and therefore tolerant to this
noise; the utility cost is measurable with the standard benches by wrapping
:class:`repro.core.PardonStrategy` with :class:`DPStyleStrategy`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pardon import PardonStrategy
from repro.fl.client import Client
from repro.nn.models import FeatureClassifierModel
from repro.style.adain import StyleVector

__all__ = ["GaussianMechanism", "DPStyleStrategy", "gaussian_sigma"]


def gaussian_sigma(epsilon: float, delta: float, sensitivity: float) -> float:
    """Noise scale of the analytic Gaussian mechanism (classic bound).

    ``sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon`` — valid for
    ``epsilon <= 1`` and conservative above.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    return sensitivity * np.sqrt(2.0 * np.log(1.25 / delta)) / epsilon


@dataclass(frozen=True)
class GaussianMechanism:
    """Clip-and-noise release of a vector with L2 sensitivity ``clip_norm``.

    Replacing a client's whole dataset changes its (clipped) style vector by
    at most ``2 * clip_norm`` in L2, so that is the sensitivity used.
    """

    epsilon: float
    delta: float
    clip_norm: float

    def __post_init__(self) -> None:
        gaussian_sigma(self.epsilon, self.delta, 1.0)  # validates eps/delta
        if self.clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {self.clip_norm}")

    @property
    def sigma(self) -> float:
        return gaussian_sigma(self.epsilon, self.delta, 2.0 * self.clip_norm)

    def privatize(
        self, vector: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Clip to ``clip_norm`` and add Gaussian noise."""
        vector = np.asarray(vector, dtype=np.float64)
        norm = float(np.linalg.norm(vector))
        if norm > self.clip_norm:
            vector = vector * (self.clip_norm / norm)
        return vector + rng.normal(0.0, self.sigma, size=vector.shape)


class DPStyleStrategy(PardonStrategy):
    """PARDON whose uploaded style vectors are (epsilon, delta)-DP.

    Only :meth:`prepare` changes: each client's style vector is privatized
    before it reaches the server.  Negative noisy sigmas are floored at
    zero (a valid post-processing step).
    """

    name = "pardon_dp"

    def __init__(
        self,
        mechanism: GaussianMechanism,
        noise_seed: int = 1234,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        self.mechanism = mechanism
        self.noise_seed = noise_seed

    def prepare(
        self,
        clients: list[Client],
        model: FeatureClassifierModel,
        rng: np.random.Generator,
    ) -> None:
        super().prepare(clients, model, rng)
        noise_rng = np.random.default_rng(self.noise_seed)
        private: dict[int, StyleVector] = {}
        for client_id, style in self.client_styles.items():
            noisy = self.mechanism.privatize(style.to_array(), noise_rng)
            half = noisy.shape[0] // 2
            noisy[half:] = np.maximum(noisy[half:], 0.0)  # sigmas stay valid
            private[client_id] = StyleVector.from_array(noisy)
        self.client_styles = private
        from repro.core.interpolation import extract_interpolation_style

        self.interpolation_style = extract_interpolation_style(
            list(private.values()),
            use_global_clustering=self.config.global_clustering,
        )
