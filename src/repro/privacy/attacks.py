"""The two reconstruction attacks of the paper's security analysis (§IV-B-3).

* **Attack (i), third-party/server**: an adversary who compromises the
  uploaded style vectors trains a style inverter on a *public surrogate
  dataset* (the paper uses Tiny-ImageNet; we use an independently seeded
  synthetic suite) and tries to reconstruct private client images.
* **Attack (ii), inter-client**: a malicious client trains the inverter on
  *its own private data* — a stronger attacker whose training distribution
  matches the victims' domain family.

Each attack runs twice: once against **sample-level** style vectors (what
CCST-style cross-sharing exposes) and once against **client-level** vectors
(the single averaged vector PARDON uploads).  Table IV's claim is that the
client-level vectors yield reconstructions with far higher FID and lower
inception-style scores — i.e., far less private information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.local_style import compute_client_style
from repro.nn.models import FeatureClassifierModel
from repro.privacy.inversion import (
    StyleInversionGenerator,
    sample_style_vectors,
    train_inverter,
)
from repro.privacy.metrics import fid_score, inception_score_like
from repro.style.encoder import FrozenConvEncoder, InvertibleEncoder

__all__ = ["ReconstructionReport", "run_reconstruction_attack", "client_style_vectors"]


@dataclass
class ReconstructionReport:
    """Outcome of one attack against one victim dataset."""

    mode: str  # "sample" or "client"
    fid: float
    inception_score: float
    num_reconstructions: int
    reconstructions: np.ndarray  # (n, C, H, W) — Fig. 6/7 raw material


def client_style_vectors(
    client_datasets: list[np.ndarray],
    encoder: InvertibleEncoder,
    use_local_clustering: bool = True,
) -> np.ndarray:
    """One PARDON-style aggregated vector per client, stacked ``(k, 2d)``."""
    vectors = [
        compute_client_style(images, encoder, use_local_clustering).to_array()
        for images in client_datasets
        if images.shape[0] > 0
    ]
    if not vectors:
        raise ValueError("no client has data")
    return np.stack(vectors)


def run_reconstruction_attack(
    attacker_images: np.ndarray,
    victim_images: np.ndarray,
    victim_client_datasets: list[np.ndarray],
    mode: str,
    encoder: InvertibleEncoder,
    judge: FeatureClassifierModel,
    rng: np.random.Generator,
    epochs: int = 40,
    fid_encoder: FrozenConvEncoder | None = None,
) -> ReconstructionReport:
    """Train the inverter on the attacker's data, attack the victim styles.

    Parameters
    ----------
    attacker_images:
        What the adversary trains the inverter on (public surrogate for
        attack (i), the malicious client's own data for attack (ii)).
    victim_images:
        The victim's real images — the reference set for FID.
    victim_client_datasets:
        The victim data split by client; used in ``"client"`` mode to build
        one aggregated style vector per client.
    mode:
        ``"sample"`` — invert per-image style vectors (the CCST exposure);
        ``"client"`` — invert the single averaged vector per client (the
        PARDON exposure).
    judge:
        A task classifier used by the inception-score analogue.
    """
    if mode not in ("sample", "client"):
        raise ValueError(f"mode must be 'sample' or 'client', got {mode!r}")
    # The attacker adapts the inverter to whatever is shared: sample-level
    # sharing exposes spatially-resolved statistics (patch_grid=2, the CCST
    # analogue); client-level sharing only ever exposes the 2d-dim global
    # aggregate, so that is all the inverter can be conditioned on.
    patch_grid = 2 if mode == "sample" else 0
    result = train_inverter(
        attacker_images, encoder, rng, epochs=epochs, patch_grid=patch_grid
    )
    generator = result.generator
    if mode == "sample":
        victim_styles = sample_style_vectors(
            victim_images, encoder, patch_grid=patch_grid
        )
    else:
        victim_styles = client_style_vectors(victim_client_datasets, encoder)
        if victim_styles.shape[0] < 2:
            raise ValueError(
                "client-mode attack needs at least 2 victim clients for FID"
            )
    reconstructions = generator.generate(victim_styles)
    return ReconstructionReport(
        mode=mode,
        fid=fid_score(victim_images, reconstructions, fid_encoder),
        inception_score=inception_score_like(reconstructions, judge),
        num_reconstructions=reconstructions.shape[0],
        reconstructions=reconstructions,
    )
