"""Reconstruction-quality metrics for the privacy analysis (paper Table IV).

The paper scores reconstruction attacks with FID (higher = reconstructions
farther from the real data = *better privacy*) and an Inception-Score-style
diversity/confidence measure (lower = less informative reconstructions).
Without a pre-trained Inception network we compute:

* the exact Fréchet distance between Gaussian fits of features from the
  frozen random-conv encoder (:class:`repro.style.FrozenConvEncoder`) —
  the same construction as FID with Inception features;
* an inception-score analogue using a task classifier trained on the
  benchmark suite (diversity x confidence of predicted labels over the
  reconstructed set);
* PSNR for paired reconstruction fidelity (used to pick the best inverter,
  matching the paper's model-selection procedure).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.nn.functional import softmax
from repro.nn.models import FeatureClassifierModel
from repro.style.encoder import FrozenConvEncoder

__all__ = ["frechet_distance", "fid_score", "inception_score_like", "psnr"]


def frechet_distance(features_a: np.ndarray, features_b: np.ndarray) -> float:
    """Fréchet distance between Gaussian fits of two feature sets.

    ``d^2 = ||mu_a - mu_b||^2 + tr(C_a + C_b - 2 (C_a C_b)^{1/2})``
    """
    if features_a.ndim != 2 or features_b.ndim != 2:
        raise ValueError("features must be 2-D (n_samples, dim)")
    if features_a.shape[1] != features_b.shape[1]:
        raise ValueError("feature dimensions must match")
    if features_a.shape[0] < 2 or features_b.shape[0] < 2:
        raise ValueError("need at least 2 samples per side to fit a Gaussian")
    mu_a, mu_b = features_a.mean(axis=0), features_b.mean(axis=0)
    cov_a = np.cov(features_a, rowvar=False)
    cov_b = np.cov(features_b, rowvar=False)
    # Regularize for numerical stability of the matrix square root, as the
    # standard FID implementations do.
    eps = 1e-6 * np.eye(cov_a.shape[0])
    covmean = linalg.sqrtm((cov_a + eps) @ (cov_b + eps))
    if np.iscomplexobj(covmean):
        covmean = covmean.real
    diff = mu_a - mu_b
    value = diff @ diff + np.trace(cov_a + cov_b - 2.0 * covmean)
    return float(max(value, 0.0))


def fid_score(
    images_real: np.ndarray,
    images_fake: np.ndarray,
    encoder: FrozenConvEncoder | None = None,
) -> float:
    """FID between two image sets under the frozen random-conv feature map."""
    encoder = encoder or FrozenConvEncoder(seed=11)
    return frechet_distance(
        encoder.pooled(images_real), encoder.pooled(images_fake)
    )


def inception_score_like(
    images: np.ndarray,
    classifier: FeatureClassifierModel,
    eps: float = 1e-12,
) -> float:
    """Inception-Score analogue with a task classifier as the judge.

    ``IS = exp( E_x KL( p(y|x) || p(y) ) )``.  A set of confident, diverse
    reconstructions scores high; a set of near-identical, ambiguous blobs
    (what client-level styles yield) scores near 1 — the floor.
    """
    if images.shape[0] == 0:
        raise ValueError("cannot score an empty image set")
    logits = classifier.predict_logits(images)
    conditional = softmax(logits, axis=1)
    marginal = conditional.mean(axis=0, keepdims=True)
    kl = np.sum(
        conditional * (np.log(conditional + eps) - np.log(marginal + eps)), axis=1
    )
    return float(np.exp(np.mean(kl)))


def psnr(reference: np.ndarray, reconstruction: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB over the reference's value range."""
    if reference.shape != reconstruction.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {reconstruction.shape}"
        )
    mse = float(np.mean((reference - reconstruction) ** 2))
    if mse == 0:
        return float("inf")
    peak = float(reference.max() - reference.min())
    if peak == 0:
        peak = 1.0
    return float(10.0 * np.log10(peak**2 / mse))
