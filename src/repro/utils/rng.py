"""Deterministic random-number management.

Every stochastic component in the library draws from a ``numpy.random.Generator``
handed to it explicitly; nothing reads global numpy state.  ``SeedTree`` makes
it easy to derive independent, reproducible child generators for each client,
each round, and each dataset from a single experiment seed, so a whole
federated run is bit-for-bit reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["SeedTree", "as_generator", "stable_hash"]


def stable_hash(*parts: object) -> int:
    """Return a stable 63-bit integer hash of the given parts.

    Python's builtin ``hash`` is salted per-process for strings, so it cannot
    be used for reproducible seeding.  We hash the ``repr`` of each part with
    BLAKE2 instead.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest(), "little") & ((1 << 63) - 1)


class SeedTree:
    """A tree of reproducible seeds.

    A ``SeedTree`` is identified by a root seed plus a path of labels.  Child
    trees and generators are derived by hashing the path, so the generator for
    ``tree.child("client", 7).generator("round", 3)`` depends only on the root
    seed and those labels — not on the order in which other children were
    created.

    Example
    -------
    >>> tree = SeedTree(123)
    >>> g1 = tree.generator("data")
    >>> g2 = SeedTree(123).generator("data")
    >>> float(g1.random()) == float(g2.random())
    True
    """

    def __init__(self, root_seed: int, path: tuple[object, ...] = ()) -> None:
        self.root_seed = int(root_seed)
        self.path = tuple(path)

    def child(self, *labels: object) -> "SeedTree":
        """Return a child tree extending this tree's path by ``labels``."""
        return SeedTree(self.root_seed, self.path + tuple(labels))

    def seed(self, *labels: object) -> int:
        """Return the integer seed for the node at ``labels`` under this tree."""
        return stable_hash(self.root_seed, *self.path, *labels)

    def generator(self, *labels: object) -> np.random.Generator:
        """Return a fresh ``numpy.random.Generator`` for the node at ``labels``."""
        return np.random.default_rng(self.seed(*labels))

    def generators(self, prefix: object, count: int) -> list[np.random.Generator]:
        """Return ``count`` independent generators labelled ``(prefix, i)``."""
        return [self.generator(prefix, i) for i in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedTree(root_seed={self.root_seed}, path={self.path!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedTree):
            return NotImplemented
        return self.root_seed == other.root_seed and self.path == other.path

    def __hash__(self) -> int:
        return hash((self.root_seed, self.path))


def as_generator(
    seed_or_rng: int | np.random.Generator | SeedTree | None,
) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a ``numpy.random.Generator``.

    Accepts an integer seed, an existing generator (returned unchanged), a
    ``SeedTree`` (its root generator), or ``None`` (seed 0 — callers that want
    nondeterminism must opt in explicitly; this library never does).
    """
    if seed_or_rng is None:
        return np.random.default_rng(0)
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if isinstance(seed_or_rng, SeedTree):
        return seed_or_rng.generator()
    if isinstance(seed_or_rng, (int, np.integer)):
        return np.random.default_rng(int(seed_or_rng))
    raise TypeError(f"cannot build a Generator from {type(seed_or_rng).__name__}")
