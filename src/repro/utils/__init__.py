"""Shared utilities: seeded RNG trees, logging, and table rendering."""

from repro.utils.rng import SeedTree, as_generator
from repro.utils.logging import get_logger
from repro.utils.tables import format_table

__all__ = ["SeedTree", "as_generator", "get_logger", "format_table"]
