"""ASCII table rendering used by the benchmark harness.

Benchmarks print rows shaped like the paper's tables; this module keeps the
formatting in one place so every bench emits consistent, diff-able output.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_percent"]


def format_percent(value: float, decimals: int = 2) -> str:
    """Format a [0, 1] fraction as the paper prints it, e.g. ``73.63%``."""
    return f"{100.0 * value:.{decimals}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_cell(v) for v in row] for row in rows]
    n_cols = max(len(row) for row in cells)
    for row in cells:
        row.extend([""] * (n_cols - len(row)))
    widths = [max(len(row[col]) for row in cells) for col in range(n_cols)]

    def render_row(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(row, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(cells[0]))
    lines.append(separator)
    lines.extend(render_row(row) for row in cells[1:])
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
