"""Lightweight structured logging for experiments.

The stdlib ``logging`` module is used underneath; this wrapper only installs a
consistent format once and offers a ``key=value`` helper so round-by-round
federated logs stay grep-able.
"""

from __future__ import annotations

import logging
import sys
from typing import Mapping

__all__ = ["get_logger", "kv"]

_FORMAT = "%(asctime)s %(levelname).1s %(name)s: %(message)s"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(logging.INFO)
    root.propagate = False
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def kv(fields: Mapping[str, object]) -> str:
    """Render a mapping as a stable ``key=value`` string for log lines."""
    return " ".join(f"{key}={_fmt(value)}" for key, value in fields.items())


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
