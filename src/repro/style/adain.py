"""Adaptive Instance Normalization and style statistics (paper Eq. 2 and 6).

A *style* here is the pair of pixel-level channel-wise statistics
``(mu, sigma)`` of feature maps — paper Eq. 2.  AdaIN re-styles features by
whitening each sample's channels with its own statistics and re-colouring
with the target style's (Eq. 6):

``AdaIN(F, S) = sigma(S) * (F - mu(F)) / sigma(F) + mu(S)``
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.style.encoder import InvertibleEncoder

__all__ = [
    "StyleVector",
    "per_sample_style_stats",
    "pooled_style",
    "adain",
    "apply_style_to_images",
]

_EPS = 1e-6


@dataclass(frozen=True)
class StyleVector:
    """Channel-wise style statistics ``(mu, sigma) in R^{2d}`` (paper §III-B).

    This is the *only* artifact a PARDON client ever uploads; the privacy
    experiments quantify how little of the client's data it reveals.
    """

    mu: np.ndarray
    sigma: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "mu", np.asarray(self.mu, dtype=np.float64))
        object.__setattr__(self, "sigma", np.asarray(self.sigma, dtype=np.float64))
        if self.mu.shape != self.sigma.shape or self.mu.ndim != 1:
            raise ValueError(
                f"mu and sigma must be equal-length 1-D arrays, got "
                f"{self.mu.shape} and {self.sigma.shape}"
            )
        if np.any(self.sigma < 0):
            raise ValueError("sigma entries must be non-negative")

    @property
    def dim(self) -> int:
        """The channel count ``d``; the vector itself lives in ``R^{2d}``."""
        return int(self.mu.shape[0])

    def to_array(self) -> np.ndarray:
        """Concatenate into the flat ``R^{2d}`` wire format."""
        return np.concatenate([self.mu, self.sigma])

    @staticmethod
    def from_array(array: np.ndarray) -> "StyleVector":
        """Inverse of :meth:`to_array`."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 1 or array.shape[0] % 2:
            raise ValueError(f"expected flat even-length array, got {array.shape}")
        half = array.shape[0] // 2
        return StyleVector(mu=array[:half], sigma=array[half:])


def per_sample_style_stats(features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample channel statistics of ``(N, C, H, W)`` features.

    Returns ``(mu, sigma)`` each of shape ``(N, C)`` — the sample-level style
    vectors that privacy-risky methods (CCST sample mode) share directly.
    """
    if features.ndim != 4:
        raise ValueError(f"features must be (N, C, H, W), got {features.shape}")
    mu = features.mean(axis=(2, 3))
    sigma = features.std(axis=(2, 3))
    return mu, sigma


def pooled_style(features: np.ndarray) -> StyleVector:
    """Pixel-level channel-wise statistics pooled over a *set* of samples.

    This is paper Eq. 2: the style of a cluster is computed from the
    concatenation of all its members' feature maps, i.e. mean/std taken over
    samples *and* spatial positions jointly for each channel.
    """
    if features.ndim != 4:
        raise ValueError(f"features must be (N, C, H, W), got {features.shape}")
    if features.shape[0] == 0:
        raise ValueError("cannot pool style over an empty set")
    mu = features.mean(axis=(0, 2, 3))
    sigma = features.std(axis=(0, 2, 3))
    return StyleVector(mu=mu, sigma=sigma)


def adain(features: np.ndarray, style: StyleVector) -> np.ndarray:
    """Re-style features to the target ``style`` (paper Eq. 6).

    Each sample is whitened with its own per-channel statistics, then scaled
    and shifted to the target statistics.  Degenerate (zero-variance)
    channels are guarded with an epsilon rather than dropped, so constant
    channels transfer their mean correctly.
    """
    if features.ndim != 4:
        raise ValueError(f"features must be (N, C, H, W), got {features.shape}")
    if features.shape[1] != style.dim:
        raise ValueError(
            f"style has {style.dim} channels, features have {features.shape[1]}"
        )
    mu_f = features.mean(axis=(2, 3), keepdims=True)
    sigma_f = features.std(axis=(2, 3), keepdims=True)
    normalized = (features - mu_f) / (sigma_f + _EPS)
    target_sigma = style.sigma[None, :, None, None]
    target_mu = style.mu[None, :, None, None]
    return normalized * target_sigma + target_mu


def apply_style_to_images(
    images: np.ndarray, style: StyleVector, encoder: InvertibleEncoder
) -> np.ndarray:
    """Image-space style transfer: encode, AdaIN, decode.

    The invertible encoder replaces the AdaIN paper's trained decoder, so
    this is exact round-trip up to the AdaIN re-styling itself.
    """
    features = encoder.encode(images)
    restyled = adain(features, style)
    return encoder.decode(restyled)
