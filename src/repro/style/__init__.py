"""``repro.style`` — the AdaIN style-transfer substrate.

Frozen public encoders (the pre-trained-VGG substitute), style statistics,
and AdaIN re-styling in feature and image space.  See DESIGN.md §2 for the
substitution rationale.
"""

from repro.style.encoder import (
    FrozenConvEncoder,
    InvertibleEncoder,
    depth_to_space,
    space_to_depth,
)
from repro.style.adain import (
    StyleVector,
    adain,
    apply_style_to_images,
    per_sample_style_stats,
    pooled_style,
)

__all__ = [
    "InvertibleEncoder",
    "FrozenConvEncoder",
    "space_to_depth",
    "depth_to_space",
    "StyleVector",
    "per_sample_style_stats",
    "pooled_style",
    "adain",
    "apply_style_to_images",
]
