"""Frozen encoders standing in for AdaIN's pre-trained VGG.

The paper computes style statistics and applies AdaIN inside the feature
space of a fixed, publicly shared encoder ``Phi`` (Huang & Belongie's VGG),
then decodes the re-styled features back to images.  No pre-trained VGG
exists in this sandbox, so we substitute two frozen, seeded encoders:

* :class:`InvertibleEncoder` — space-to-depth rearrangement followed by an
  orthogonal 1x1 channel mix, repeated per level.  It is linear and *exactly*
  invertible (the decoder is the transpose mix + depth-to-space), so
  image-space style transfer is lossless, replacing the trained AdaIN
  decoder.  Its channels capture local texture/colour structure — the same
  per-channel statistics VGG-based AdaIN manipulates.
* :class:`FrozenConvEncoder` — a deeper non-linear random-feature encoder
  (random convolutions are a standard stand-in for early VGG features) used
  where only *statistics* are needed and richer features help, e.g. the
  FID-style metric in the privacy evaluation.

Both are deterministic functions of a seed, so "every client downloads the
same public pre-trained model" is reproduced faithfully.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import he_normal, orthogonal

__all__ = [
    "space_to_depth",
    "depth_to_space",
    "InvertibleEncoder",
    "FrozenConvEncoder",
]


def space_to_depth(x: np.ndarray, block: int) -> np.ndarray:
    """Rearrange ``(N, C, H, W)`` into ``(N, C*block^2, H/block, W/block)``."""
    n, c, h, w = x.shape
    if h % block or w % block:
        raise ValueError(f"spatial dims {h}x{w} not divisible by block={block}")
    x = x.reshape(n, c, h // block, block, w // block, block)
    x = x.transpose(0, 1, 3, 5, 2, 4)
    return x.reshape(n, c * block * block, h // block, w // block)


def depth_to_space(x: np.ndarray, block: int) -> np.ndarray:
    """Inverse of :func:`space_to_depth`."""
    n, c, h, w = x.shape
    if c % (block * block):
        raise ValueError(f"channels {c} not divisible by block^2={block * block}")
    c_out = c // (block * block)
    x = x.reshape(n, c_out, block, block, h, w)
    x = x.transpose(0, 1, 4, 2, 5, 3)
    return x.reshape(n, c_out, h * block, w * block)


class InvertibleEncoder:
    """Exactly invertible frozen encoder for image-space style transfer.

    Each level performs space-to-depth (block 2) and multiplies the channel
    axis by a fixed orthogonal matrix.  With ``levels=2`` on RGB input the
    feature space has ``3 * 4^2 = 48`` channels at 1/4 resolution, so style
    vectors (mean+std per channel) live in ``R^96`` — comparable in role to
    the paper's ``R^{2d}`` VGG statistics.
    """

    def __init__(self, in_channels: int = 3, levels: int = 2, seed: int = 7) -> None:
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.in_channels = in_channels
        self.levels = levels
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.mixes: list[np.ndarray] = []
        channels = in_channels
        for _ in range(levels):
            channels *= 4
            self.mixes.append(orthogonal(channels, rng))
        self.out_channels = channels

    def encode(self, images: np.ndarray) -> np.ndarray:
        """Map NCHW images into the frozen feature space."""
        if images.ndim != 4 or images.shape[1] != self.in_channels:
            raise ValueError(
                f"expected (N, {self.in_channels}, H, W), got {images.shape}"
            )
        features = images
        for mix in self.mixes:
            features = space_to_depth(features, 2)
            features = np.einsum("oc,nchw->nohw", mix, features)
        return features

    def decode(self, features: np.ndarray) -> np.ndarray:
        """Exact inverse of :meth:`encode`."""
        if features.ndim != 4 or features.shape[1] != self.out_channels:
            raise ValueError(
                f"expected (N, {self.out_channels}, H, W), got {features.shape}"
            )
        images = features
        for mix in reversed(self.mixes):
            images = np.einsum("oc,nohw->nchw", mix, images)
            images = depth_to_space(images, 2)
        return images


class FrozenConvEncoder:
    """Random frozen conv features for metrics that want non-linear structure.

    Two 3x3 conv layers (stride 2) with ReLU, weights drawn once from a seed
    and never trained.  Used by the privacy metrics (Fréchet distance needs a
    feature space, as FID uses Inception) — not by the training path.
    """

    def __init__(
        self,
        in_channels: int = 3,
        widths: tuple[int, int] = (16, 32),
        seed: int = 11,
    ) -> None:
        rng = np.random.default_rng(seed)
        w1, w2 = widths
        self.weight1 = he_normal((w1, in_channels, 3, 3), in_channels * 9, rng)
        self.weight2 = he_normal((w2, w1, 3, 3), w1 * 9, rng)
        self.in_channels = in_channels
        self.out_channels = w2

    def encode(self, images: np.ndarray) -> np.ndarray:
        """NCHW images -> (N, out_channels, H/4, W/4) frozen features."""
        from repro.nn.conv import im2col

        x = images
        for weight in (self.weight1, self.weight2):
            out_ch = weight.shape[0]
            cols, (oh, ow) = im2col(x, kernel=3, stride=2, padding=1)
            out = cols @ weight.reshape(out_ch, -1).T
            x = out.reshape(x.shape[0], oh, ow, out_ch).transpose(0, 3, 1, 2)
            x = np.maximum(x, 0.0)
        return x

    def pooled(self, images: np.ndarray) -> np.ndarray:
        """Spatially pooled features, one vector per image (for FID).

        Concatenates the per-channel spatial mean and standard deviation so
        the Fréchet metric is sensitive to texture as well as colour — the
        analogue of using a deeper Inception layer.
        """
        features = self.encode(images)
        return np.concatenate(
            [features.mean(axis=(2, 3)), features.std(axis=(2, 3))], axis=1
        )
