"""Client-side style calculation (paper §III-B step 1, Eqs. 1–2).

Each client encodes its images with the frozen public encoder, groups the
per-sample style statistics with FINCH so minority domains inside the client
are not drowned out by the dominant one, computes each cluster's pooled
style from the concatenated member features (Eq. 2), and summarizes itself
as the *average of cluster styles* — one ``R^{2d}`` vector, the only thing
the client ever uploads.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.finch import finch
from repro.style.adain import StyleVector, per_sample_style_stats, pooled_style
from repro.style.encoder import InvertibleEncoder

__all__ = ["compute_client_style", "cluster_styles_of_features"]


def cluster_styles_of_features(features: np.ndarray) -> list[StyleVector]:
    """FINCH-cluster per-sample styles; return each cluster's pooled style.

    Implements Eq. 1 + Eq. 2: samples are grouped by the cosine similarity
    of their style statistics (styles from different domains are unlikely to
    be first neighbours), then each cluster's style is the pixel-level
    channel-wise mean/std over all member feature maps jointly.
    """
    if features.ndim != 4:
        raise ValueError(f"features must be (N, C, H, W), got {features.shape}")
    n = features.shape[0]
    if n == 0:
        raise ValueError("cannot compute styles of an empty feature set")
    if n == 1:
        return [pooled_style(features)]
    mu, sigma = per_sample_style_stats(features)
    style_matrix = np.concatenate([mu, sigma], axis=1)
    hierarchy = finch(style_matrix, metric="cosine")
    labels = hierarchy.last
    styles = []
    for cluster_id in range(int(labels.max()) + 1):
        members = np.nonzero(labels == cluster_id)[0]
        styles.append(pooled_style(features[members]))
    return styles


def compute_client_style(
    images: np.ndarray,
    encoder: InvertibleEncoder,
    use_local_clustering: bool = True,
) -> StyleVector:
    """The client's uploaded style statistic ``S_bar_Ck`` (paper §III-B).

    With clustering on, this is the unweighted mean of cluster styles —
    deliberately *not* sample-weighted, so a domain with few samples inside
    the client contributes as much as the dominant one.  With clustering off
    (ablation v1/v4) it degrades to the plain pooled style of all samples.
    """
    if images.shape[0] == 0:
        raise ValueError("client has no data to compute a style from")
    features = encoder.encode(images)
    if not use_local_clustering:
        return pooled_style(features)
    styles = cluster_styles_of_features(features)
    stacked = np.stack([s.to_array() for s in styles])
    return StyleVector.from_array(stacked.mean(axis=0))
