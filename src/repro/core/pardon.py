"""PARDON as a federated strategy (the paper's primary contribution).

The four steps of Fig. 2 map onto the strategy hooks as follows:

1. **Local style calculation** + 2. **interpolation style extraction** run in
   :meth:`PardonStrategy.prepare`, *once, before round 1, over all clients*
   — this is what makes the method robust to client sampling: the global
   style already carries every client's domain knowledge even if a client is
   never sampled again.
3. **Contrastive local training** is :meth:`PardonStrategy.local_update`:
   each participant style-transfers its data to the interpolation style and
   optimizes Eq. 9.
4. **Aggregation** is inherited data-size-weighted FedAvg.

Ablation variants v1–v5 (paper Table V) are selected purely through
:class:`repro.core.config.PardonConfig`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PardonConfig
from repro.core.contrastive import pardon_batch_step, pardon_ensemble_step
from repro.core.interpolation import extract_interpolation_style
from repro.core.local_style import compute_client_style
from repro.fl.client import Client
from repro.fl.executor import ClientUpdate
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.ensemble import ensemble_state_dicts
from repro.nn.models import FeatureClassifierModel
from repro.nn.module import Module
from repro.style.adain import StyleVector, apply_style_to_images
from repro.style.encoder import InvertibleEncoder
from repro.utils.logging import get_logger

__all__ = ["PardonStrategy"]

_LOG = get_logger("core.pardon")
_TRANSFER_CACHE_KEY = "pardon_transferred"


class PardonStrategy(Strategy):
    """Privacy-aware robust federated domain generalization (PARDON)."""

    name = "pardon"

    def __init__(
        self,
        config: PardonConfig | None = None,
        local_config: LocalTrainingConfig | None = None,
        encoder: InvertibleEncoder | None = None,
    ) -> None:
        super().__init__(local_config)
        self.config = config or PardonConfig()
        self.encoder = encoder or InvertibleEncoder(
            levels=self.config.encoder_levels, seed=self.config.encoder_seed
        )
        self.interpolation_style: StyleVector | None = None
        self.client_styles: dict[int, StyleVector] = {}

    # -- steps 1 + 2: one-time style pipeline --------------------------------

    def prepare(
        self,
        clients: list[Client],
        model: FeatureClassifierModel,
        rng: np.random.Generator,
    ) -> None:
        """Collect every client's style and extract the interpolation style.

        Only the per-client ``R^{2d}`` statistics travel to the server;
        the privacy experiments (``repro.privacy``) quantify how little they
        leak.
        """
        self.client_styles = {}
        for client in clients:
            if client.num_samples == 0:
                continue
            self.client_styles[client.client_id] = compute_client_style(
                client.dataset.images,
                self.encoder,
                use_local_clustering=self.config.local_clustering,
            )
        if not self.client_styles:
            raise ValueError("no client has data; cannot extract a style")
        self.interpolation_style = extract_interpolation_style(
            list(self.client_styles.values()),
            use_global_clustering=self.config.global_clustering,
        )
        _LOG.info(
            "interpolation style extracted from %d clients (dim=%d)",
            len(self.client_styles),
            self.interpolation_style.dim,
        )

    # -- step 3: contrastive local training ----------------------------------

    def _transferred_images(
        self, client: Client, rng: np.random.Generator
    ) -> np.ndarray:
        """The client's data re-styled for this round.

        Full PARDON transfers to the interpolation style; because both the
        data and the style are fixed, the result is cached in the client's
        scratch space after the first round.  Variant v4 replaces style
        transfer with generic augmentation (noise + circular shifts), drawn
        fresh each round.
        """
        if not self.config.style_positives:
            from repro.data.transforms import standard_augmentation

            return standard_augmentation()(client.dataset.images, rng)
        cached = client.scratch.get(_TRANSFER_CACHE_KEY)
        if cached is not None:
            return cached
        if self.interpolation_style is None:
            raise RuntimeError("prepare() must run before local_update()")
        transferred = apply_style_to_images(
            client.dataset.images, self.interpolation_style, self.encoder
        )
        client.scratch[_TRANSFER_CACHE_KEY] = transferred
        return transferred

    def local_update(
        self,
        client: Client,
        model: FeatureClassifierModel,
        round_index: int,
        rng: np.random.Generator,
    ) -> ClientUpdate:
        if client.num_samples == 0:
            return ClientUpdate.from_client(client, model.state_dict(), 0.0)
        images = client.dataset.images
        labels = client.dataset.labels
        transferred = self._transferred_images(client, rng)

        model.train()
        optimizer = self.local_config.make_optimizer(model)
        config = self.local_config
        losses: list[float] = []
        n = images.shape[0]
        for _ in range(config.local_epochs):
            order = rng.permutation(n)
            for start in range(0, n, config.batch_size):
                batch_idx = order[start : start + config.batch_size]
                result = pardon_batch_step(
                    model=model,
                    images=images[batch_idx],
                    transferred=transferred[batch_idx],
                    labels=labels[batch_idx],
                    config=self.config,
                    optimizer=optimizer,
                )
                losses.append(result.total)
        return ClientUpdate.from_client(
            client,
            model.state_dict(),
            float(np.mean(losses)) if losses else 0.0,
        )

    def ensemble_update(
        self,
        clients: list[Client],
        emodel: Module,
        round_index: int,
        rngs: list[np.random.Generator],
    ) -> list[ClientUpdate] | None:
        """Step 3 over a ``(K, ...)`` client stack (the ``ensemble`` backend).

        Per-client randomness is consumed in the loop path's exact order —
        the style transfer (or v4 augmentation) first, then one permutation
        per epoch — so slice ``k`` reproduces :meth:`local_update` for
        client ``k`` bitwise, including the scratch-cached transfer.
        """
        config = self.local_config
        stack = len(clients)
        count = clients[0].num_samples
        images = np.stack([client.dataset.images for client in clients])
        labels = np.stack([client.dataset.labels for client in clients])
        transferred = np.stack(
            [
                self._transferred_images(client, rng)
                for client, rng in zip(clients, rngs)
            ]
        )
        emodel.train()
        optimizer = config.make_optimizer(emodel)
        rows = np.arange(stack)[:, None]
        batch_totals: list[np.ndarray] = []
        for _ in range(config.local_epochs):
            orders = np.stack([rng.permutation(count) for rng in rngs])
            for start in range(0, count, config.batch_size):
                indices = orders[:, start : start + config.batch_size]
                totals = pardon_ensemble_step(
                    emodel=emodel,
                    images=images[rows, indices],
                    transferred=transferred[rows, indices],
                    labels=labels[rows, indices],
                    config=self.config,
                    optimizer=optimizer,
                )
                batch_totals.append(totals)
        if batch_totals:
            mean_losses = np.mean(np.stack(batch_totals, axis=1), axis=1)
        else:
            mean_losses = np.zeros(stack)
        states = ensemble_state_dicts(emodel)
        return [
            ClientUpdate.from_client(client, state, float(loss))
            for client, state, loss in zip(clients, states, mean_losses)
        ]
