"""PARDON as a federated strategy (the paper's primary contribution).

The four steps of Fig. 2 map onto the strategy hooks as follows:

1. **Local style calculation** + 2. **interpolation style extraction** run in
   :meth:`PardonStrategy.prepare`, *once, before round 1, over all clients*
   — this is what makes the method robust to client sampling: the global
   style already carries every client's domain knowledge even if a client is
   never sampled again.
3. **Contrastive local training** is the declarative objective (Eq. 9):
   cross-entropy over both halves (or the original half, per
   ``ce_on_transferred``), the triplet term at ``gamma_triplet``, and the
   pair-L2 regularizer at ``gamma_reg`` — with
   :meth:`PardonStrategy.local_views` supplying the style-transferred
   second view each round.  The generic runners execute it on both the
   loop and the ensemble compute path, operand-for-operand identical to
   :func:`repro.core.contrastive.pardon_batch_step`.
4. **Aggregation** is inherited data-size-weighted FedAvg.

Ablation variants v1–v5 (paper Table V) are selected purely through
:class:`repro.core.config.PardonConfig` — the config decides which terms
the objective carries.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PardonConfig
from repro.core.interpolation import extract_interpolation_style
from repro.core.local_style import compute_client_style
from repro.fl.client import Client
from repro.fl.strategy import LocalTrainingConfig, Strategy
from repro.nn.models import FeatureClassifierModel
from repro.nn.objective import (
    CompositeObjective,
    CrossEntropyTerm,
    TripletStyleTerm,
)
from repro.style.adain import StyleVector, apply_style_to_images
from repro.style.encoder import InvertibleEncoder
from repro.utils.logging import get_logger

__all__ = ["PardonStrategy"]

_LOG = get_logger("core.pardon")
_TRANSFER_CACHE_KEY = "pardon_transferred"


def _pardon_objective(config: PardonConfig) -> CompositeObjective:
    """Eq. 9 as a term list.

    When ``config.contrastive`` is off (ablation v3) the transferred half
    still flows through cross-entropy as plain augmentation, matching the
    paper's description of that variant.
    """
    bindings: list = [
        (
            "ce",
            1.0,
            CrossEntropyTerm(
                all_views=config.ce_on_transferred or not config.contrastive
            ),
        )
    ]
    if config.contrastive and config.gamma_triplet > 0:
        bindings.append(
            (
                "triplet_style",
                config.gamma_triplet,
                TripletStyleTerm(margin=config.margin, hinge=config.triplet_hinge),
            )
        )
    if config.gamma_reg > 0:
        bindings.append(("pair_l2", config.gamma_reg))
    return CompositeObjective(bindings)


class PardonStrategy(Strategy):
    """Privacy-aware robust federated domain generalization (PARDON)."""

    name = "pardon"

    def __init__(
        self,
        config: PardonConfig | None = None,
        local_config: LocalTrainingConfig | None = None,
        encoder: InvertibleEncoder | None = None,
    ) -> None:
        super().__init__(local_config)
        self.config = config or PardonConfig()
        self.encoder = encoder or InvertibleEncoder(
            levels=self.config.encoder_levels, seed=self.config.encoder_seed
        )
        self.interpolation_style: StyleVector | None = None
        self.client_styles: dict[int, StyleVector] = {}
        self.objective = _pardon_objective(self.config)

    # -- steps 1 + 2: one-time style pipeline --------------------------------

    def prepare(
        self,
        clients: list[Client],
        model: FeatureClassifierModel,
        rng: np.random.Generator,
    ) -> None:
        """Collect every client's style and extract the interpolation style.

        Only the per-client ``R^{2d}`` statistics travel to the server;
        the privacy experiments (``repro.privacy``) quantify how little they
        leak.
        """
        self.client_styles = {}
        for client in clients:
            if client.num_samples == 0:
                continue
            self.client_styles[client.client_id] = compute_client_style(
                client.dataset.images,
                self.encoder,
                use_local_clustering=self.config.local_clustering,
            )
        if not self.client_styles:
            raise ValueError("no client has data; cannot extract a style")
        self.interpolation_style = extract_interpolation_style(
            list(self.client_styles.values()),
            use_global_clustering=self.config.global_clustering,
        )
        _LOG.info(
            "interpolation style extracted from %d clients (dim=%d)",
            len(self.client_styles),
            self.interpolation_style.dim,
        )

    # -- step 3: contrastive local training ----------------------------------

    def _transferred_images(
        self, client: Client, rng: np.random.Generator
    ) -> np.ndarray:
        """The client's data re-styled for this round.

        Full PARDON transfers to the interpolation style; because both the
        data and the style are fixed, the result is cached in the client's
        scratch space after the first round.  Variant v4 replaces style
        transfer with generic augmentation (noise + circular shifts), drawn
        fresh each round.
        """
        if not self.config.style_positives:
            from repro.data.transforms import standard_augmentation

            return standard_augmentation()(client.dataset.images, rng)
        cached = client.scratch.get(_TRANSFER_CACHE_KEY)
        if cached is not None:
            return cached
        if self.interpolation_style is None:
            raise RuntimeError("prepare() must run before local_update()")
        transferred = apply_style_to_images(
            client.dataset.images, self.interpolation_style, self.encoder
        )
        client.scratch[_TRANSFER_CACHE_KEY] = transferred
        return transferred

    def local_views(
        self, client: Client, rng: np.random.Generator
    ) -> np.ndarray:
        return self._transferred_images(client, rng)
