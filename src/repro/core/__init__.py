"""``repro.core`` — the PARDON method (the paper's contribution).

Local style calculation (FINCH over per-sample styles), server-side
interpolation-style extraction (FINCH + median), and contrastive local
training on style-transferred positives, packaged as a
:class:`repro.fl.Strategy`.
"""

from repro.core.config import PardonConfig
from repro.core.contrastive import PardonStepResult, pardon_batch_step
from repro.core.interpolation import (
    cluster_client_styles,
    extract_interpolation_style,
)
from repro.core.local_style import cluster_styles_of_features, compute_client_style
from repro.core.pardon import PardonStrategy

__all__ = [
    "PardonConfig",
    "PardonStrategy",
    "PardonStepResult",
    "pardon_batch_step",
    "compute_client_style",
    "cluster_styles_of_features",
    "extract_interpolation_style",
    "cluster_client_styles",
]
