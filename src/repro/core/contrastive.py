"""The PARDON local-training step (paper §III-B step 3, Eqs. 6–9).

One gradient step processes the original batch and its style-transferred
counterpart through the *same* feature extractor in a single concatenated
forward pass (so batch statistics are shared), then routes three gradients
back through the split entry points of
:class:`repro.nn.FeatureClassifierModel`:

* cross-entropy on the original logits (intra-client learning);
* the triplet loss between original embeddings (anchors) and transferred
  embeddings (positives: same class; negatives: other classes);
* the embedding-L2 regularizer on both halves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import PardonConfig
from repro.nn.ensemble import (
    EnsembleEmbeddingL2Loss,
    EnsembleTripletStyleLoss,
    ensemble_cross_entropy,
)
from repro.nn.losses import CrossEntropyLoss, EmbeddingL2Loss, TripletStyleLoss
from repro.nn.models import FeatureClassifierModel
from repro.nn.module import Module
from repro.nn.optim import SGD

__all__ = ["PardonStepResult", "pardon_batch_step", "pardon_ensemble_step"]


@dataclass(frozen=True)
class PardonStepResult:
    """Loss components of one PARDON batch step."""

    cross_entropy: float
    triplet: float
    regularization: float

    @property
    def total(self) -> float:
        return self.cross_entropy + self.triplet + self.regularization


def pardon_batch_step(
    model: FeatureClassifierModel,
    images: np.ndarray,
    transferred: np.ndarray,
    labels: np.ndarray,
    config: PardonConfig,
    optimizer: SGD,
) -> PardonStepResult:
    """One optimization step of the composite objective (Eq. 9).

    ``transferred`` must be index-aligned with ``images`` (sample ``i``'s
    positive anchor is ``transferred[i]``).  When ``config.contrastive`` is
    off (ablation v3) the transferred half still flows through cross-entropy
    as plain augmentation, matching the paper's description of that variant.
    """
    if images.shape != transferred.shape:
        raise ValueError(
            f"original/transferred shape mismatch: "
            f"{images.shape} vs {transferred.shape}"
        )
    batch = images.shape[0]
    if batch == 0:
        return PardonStepResult(0.0, 0.0, 0.0)

    model.zero_grad()
    combined = np.concatenate([images, transferred], axis=0)
    embeddings = model.forward_features(combined)
    logits = model.forward_logits(embeddings)
    anchors = embeddings[:batch]
    positives = embeddings[batch:]

    grad_logits = np.zeros_like(logits)
    grad_embedding = np.zeros_like(embeddings)

    ce = CrossEntropyLoss()
    if config.ce_on_transferred or not config.contrastive:
        # Transferred images join the supervised objective as augmentation
        # (always the case in ablation v3, default elsewhere; see
        # PardonConfig.ce_on_transferred).
        both_labels = np.concatenate([labels, labels])
        ce_loss = ce.forward(logits, both_labels)
        grad_logits[:] = ce.backward()
    else:
        # Strict Eq. 9 reading: CE on the original half only; transferred
        # data teaches through the triplet loss alone.
        ce_loss = ce.forward(logits[:batch], labels)
        grad_logits[:batch] = ce.backward()

    triplet_loss = 0.0
    if config.contrastive and config.gamma_triplet > 0:
        triplet = TripletStyleLoss(margin=config.margin, hinge=config.triplet_hinge)
        triplet_loss = triplet.forward(anchors, positives, labels)
        grad_anchor, grad_positive = triplet.backward()
        grad_embedding[:batch] += config.gamma_triplet * grad_anchor
        grad_embedding[batch:] += config.gamma_triplet * grad_positive
        triplet_loss *= config.gamma_triplet

    reg_loss = 0.0
    if config.gamma_reg > 0:
        regularizer = EmbeddingL2Loss()
        reg_loss = regularizer.forward(anchors, positives)
        reg_anchor, reg_positive = regularizer.backward()
        grad_embedding[:batch] += config.gamma_reg * reg_anchor
        grad_embedding[batch:] += config.gamma_reg * reg_positive
        reg_loss *= config.gamma_reg

    model.backward(grad_logits=grad_logits, grad_embedding=grad_embedding)
    optimizer.step()
    return PardonStepResult(
        cross_entropy=float(ce_loss),
        triplet=float(triplet_loss),
        regularization=float(reg_loss),
    )


def pardon_ensemble_step(
    emodel: Module,
    images: np.ndarray,
    transferred: np.ndarray,
    labels: np.ndarray,
    config: PardonConfig,
    optimizer: SGD,
) -> np.ndarray:
    """:func:`pardon_batch_step` over a ``(K, batch, ...)`` client stack.

    One fused optimization step for K clients; returns the per-slice total
    losses (shape ``(K,)``).  The per-slice computation mirrors the scalar
    step operand-for-operand — concatenation along the batch axis, the same
    config branches, the same gradient accumulation order — so slice ``k``
    is bitwise the result client ``k`` gets from the loop path (see
    :mod:`repro.nn.ensemble` for why batched kernels preserve that).
    """
    if images.shape != transferred.shape:
        raise ValueError(
            f"original/transferred shape mismatch: "
            f"{images.shape} vs {transferred.shape}"
        )
    stack, batch = images.shape[:2]
    if batch == 0:
        return np.zeros(stack)

    emodel.zero_grad()
    combined = np.concatenate([images, transferred], axis=1)
    embeddings = emodel.forward_features(combined)
    logits = emodel.forward_logits(embeddings)
    anchors = embeddings[:, :batch]
    positives = embeddings[:, batch:]

    grad_logits = np.zeros_like(logits)
    grad_embedding = np.zeros_like(embeddings)

    if config.ce_on_transferred or not config.contrastive:
        both_labels = np.concatenate([labels, labels], axis=1)
        ce_losses, ce_grad = ensemble_cross_entropy(logits, both_labels)
        grad_logits[:] = ce_grad
    else:
        ce_losses, ce_grad = ensemble_cross_entropy(logits[:, :batch], labels)
        grad_logits[:, :batch] = ce_grad

    triplet_losses = np.zeros(stack)
    if config.contrastive and config.gamma_triplet > 0:
        triplet = EnsembleTripletStyleLoss(
            margin=config.margin, hinge=config.triplet_hinge
        )
        triplet_losses = triplet.forward(anchors, positives, labels)
        grad_anchor, grad_positive = triplet.backward()
        grad_embedding[:, :batch] += config.gamma_triplet * grad_anchor
        grad_embedding[:, batch:] += config.gamma_triplet * grad_positive
        triplet_losses = triplet_losses * config.gamma_triplet

    reg_losses = np.zeros(stack)
    if config.gamma_reg > 0:
        regularizer = EnsembleEmbeddingL2Loss()
        reg_losses = regularizer.forward(anchors, positives)
        reg_anchor, reg_positive = regularizer.backward()
        grad_embedding[:, :batch] += config.gamma_reg * reg_anchor
        grad_embedding[:, batch:] += config.gamma_reg * reg_positive
        reg_losses = reg_losses * config.gamma_reg

    emodel.backward(grad_logits=grad_logits, grad_embedding=grad_embedding)
    optimizer.step()
    return ce_losses + triplet_losses + reg_losses
