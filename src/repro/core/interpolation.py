"""Server-side interpolation-style extraction (paper §III-B step 2, Eqs. 3–5).

Client style vectors are FINCH-clustered (clients sharing a domain collapse
into one cluster), each cluster is averaged (Eq. 4), and the global
interpolation style is the elementwise **median** over cluster styles
(Eq. 5).  Treating clusters — not clients — as the unit of aggregation, and
using the median rather than the mean, keeps a dominant domain with many
clients from monopolizing the global style, which is the mechanism behind
PARDON's robustness to domain-based client heterogeneity.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.finch import finch
from repro.style.adain import StyleVector

__all__ = ["extract_interpolation_style", "cluster_client_styles"]


def cluster_client_styles(client_styles: list[StyleVector]) -> list[StyleVector]:
    """Group client styles with FINCH and average within each group (Eq. 3–4)."""
    if not client_styles:
        raise ValueError("need at least one client style")
    if len(client_styles) == 1:
        return list(client_styles)
    matrix = np.stack([style.to_array() for style in client_styles])
    labels = finch(matrix, metric="cosine").last
    styles = []
    for cluster_id in range(int(labels.max()) + 1):
        members = matrix[labels == cluster_id]
        styles.append(StyleVector.from_array(members.mean(axis=0)))
    return styles


def extract_interpolation_style(
    client_styles: list[StyleVector],
    use_global_clustering: bool = True,
) -> StyleVector:
    """The global interpolation style ``S_g`` (Eq. 5).

    With clustering on: elementwise median over cluster styles.  With
    clustering off (ablation v2/v4): plain mean over client styles.
    """
    if not client_styles:
        raise ValueError("need at least one client style")
    dims = {style.dim for style in client_styles}
    if len(dims) != 1:
        raise ValueError(f"client styles disagree on dimension: {sorted(dims)}")
    if not use_global_clustering:
        matrix = np.stack([style.to_array() for style in client_styles])
        return StyleVector.from_array(matrix.mean(axis=0))
    cluster_styles = cluster_client_styles(client_styles)
    matrix = np.stack([style.to_array() for style in cluster_styles])
    return StyleVector.from_array(np.median(matrix, axis=0))
