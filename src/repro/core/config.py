"""PARDON configuration, including the ablation switches of paper Table V."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["PardonConfig"]


@dataclass(frozen=True)
class PardonConfig:
    """Hyperparameters and component switches of PARDON.

    Loss weights follow paper Eq. 9: ``L = L_CE + gamma_triplet * L_T +
    gamma_reg * L_reg`` with triplet margin ``alpha``.

    The three booleans reproduce the Table V ablation grid:

    * ``local_clustering`` — FINCH over per-sample styles on each client
      (off: the client style is the plain pooled average, "simple averaging");
    * ``global_clustering`` — FINCH + median over client styles on the server
      (off: plain average of client styles);
    * ``contrastive`` — the triplet loss on style-transferred positives
      (off: the style-transferred data is still added to training, but only
      through cross-entropy — exactly the paper's v3).

    ``style_positives`` distinguishes v4: contrastive learning stays on but
    positives come from generic augmentation (noise + small shifts) rather
    than interpolation-style transfer.

    ``ce_on_transferred`` controls whether the style-transferred half of the
    batch also contributes to the cross-entropy term.  The paper's Eq. 9
    writes ``L_CE`` over the original logits only, but its ablation (v3
    retains most of the gain with transferred data in plain training) shows
    the transferred data is also consumed as supervised signal; we keep that
    on by default and expose the switch for the ablation benches.
    """

    gamma_triplet: float = 2.0
    gamma_reg: float = 0.005
    margin: float = 1.0
    triplet_hinge: bool = False
    encoder_levels: int = 1
    encoder_seed: int = 7
    local_clustering: bool = True
    global_clustering: bool = True
    contrastive: bool = True
    style_positives: bool = True
    ce_on_transferred: bool = True

    def __post_init__(self) -> None:
        if self.gamma_triplet < 0 or self.gamma_reg < 0:
            raise ValueError("loss weights must be non-negative")
        if self.margin < 0:
            raise ValueError(f"margin must be non-negative, got {self.margin}")

    # -- Table V variants ----------------------------------------------------

    @staticmethod
    def v1() -> "PardonConfig":
        """No local clustering (client styles by simple averaging)."""
        return PardonConfig(local_clustering=False)

    @staticmethod
    def v2() -> "PardonConfig":
        """No global clustering (interpolation style by simple averaging)."""
        return PardonConfig(global_clustering=False)

    @staticmethod
    def v3() -> "PardonConfig":
        """No contrastive learning (transferred data used only through CE)."""
        return PardonConfig(contrastive=False)

    @staticmethod
    def v4() -> "PardonConfig":
        """No clustering at either level and augmentation-based positives
        (standard contrastive learning)."""
        return PardonConfig(
            local_clustering=False, global_clustering=False, style_positives=False
        )

    @staticmethod
    def v5() -> "PardonConfig":
        """The full method (all components on)."""
        return PardonConfig()

    def with_overrides(self, **changes: object) -> "PardonConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)
