"""Command-line interface: run a federated DG experiment from the shell.

Examples
--------
Run PARDON on synthetic PACS, training on photo+art, testing on sketch::

    python -m repro run --suite pacs --method pardon \
        --train-domains photo art_painting --val-domain cartoon \
        --test-domain sketch --rounds 20 --clients 12

Run the LODO protocol for a method across all held-out domains::

    python -m repro lodo --suite pacs --method ccst --rounds 15

List available suites and methods::

    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
import tracemalloc
from typing import Callable, Sequence

from repro.baselines import (
    CCSTStrategy,
    FedAlignStrategy,
    FedAvgStrategy,
    FedCCRLStrategy,
    FedDGGAStrategy,
    FedGMAStrategy,
    FedSRStrategy,
    FPLStrategy,
)
from repro.baselines.mixstyle import MixStyleStrategy
from repro.core import PardonStrategy
from repro.data import (
    synthetic_domain_sweep,
    synthetic_iwildcam,
    synthetic_office_home,
    synthetic_pacs,
    synthetic_skew,
)
from repro.eval import (
    ExperimentSetting,
    run_lodo_protocol,
    run_split_experiment,
)
from repro.fl.aggregate import aggregator_specs, make_aggregator
from repro.fl.codec import codec_specs, make_codec
from repro.fl.compute import compute_specs
from repro.fl.executor import EXECUTOR_KINDS
from repro.fl.faults import make_deadline_policy, make_fault_plan
from repro.fl.server import parse_topology
from repro.fl.transport import make_transport, transport_usage
from repro.fl.strategy import Strategy
from repro.nn.objective import parse_objective_overrides
from repro.utils.tables import format_percent, format_table

__all__ = ["main", "METHODS", "SUITES"]

METHODS: dict[str, Callable[[], Strategy]] = {
    "fedavg": FedAvgStrategy,
    "fedsr": FedSRStrategy,
    "fedgma": FedGMAStrategy,
    "fpl": FPLStrategy,
    "feddg_ga": FedDGGAStrategy,
    "ccst": CCSTStrategy,
    "mixstyle": MixStyleStrategy,
    "pardon": PardonStrategy,
    "fedalign": FedAlignStrategy,
    "fedccrl": FedCCRLStrategy,
}

SUITES = {
    "pacs": lambda seed: synthetic_pacs(seed=seed, samples_per_class=40),
    "office_home": lambda seed: synthetic_office_home(seed=seed, samples_per_class=6),
    "iwildcam": lambda seed: synthetic_iwildcam(seed=seed),
    "domain_sweep": lambda seed: synthetic_domain_sweep(seed=seed),
    "skew": lambda seed: synthetic_skew(seed=seed),
}


def _setting_from_args(args: argparse.Namespace) -> ExperimentSetting:
    return ExperimentSetting(
        objective=args.objective,
        num_clients=args.clients,
        clients_per_round=args.participation,
        heterogeneity=args.heterogeneity,
        num_rounds=args.rounds,
        eval_every=max(args.rounds // 4, 1),
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        codec=args.codec,
        transport=args.transport,
        faults=args.faults,
        deadline=args.deadline,
        compute=args.compute,
        aggregator=args.aggregator,
        quorum=args.quorum,
        topology=args.topology,
        max_resident=args.max_resident,
    )


def _participation(value: str) -> int | float:
    """``"3"`` is a client count, ``"0.25"`` a participation fraction.

    Validated at parse time so a bad value is a usage error, not a
    traceback from inside the experiment.
    """
    try:
        count = int(value)
    except ValueError:
        pass
    else:
        if count < 1:
            raise argparse.ArgumentTypeError(
                f"a client count must be >= 1, got {value!r}"
            )
        return count
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not a number")
    if not 0.0 < number <= 1.0:
        raise argparse.ArgumentTypeError(
            f"a fractional participation must be in (0, 1]; write an "
            f"integer for a client count, got {value!r}"
        )
    return number


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value!r}")
    return number


def _positive_float(value: str) -> float:
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not a number")
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value!r}")
    return number


def _deadline_spec(value: str) -> float | str:
    """``"1.5"`` is a fixed budget in seconds (returned as a float, as
    before adaptive policies existed); ``"percentile:p95"`` is an adaptive
    spec, validated at parse time and passed through as a string."""
    try:
        seconds = float(value)
    except ValueError:
        try:
            make_deadline_policy(value)
        except (TypeError, ValueError) as exc:
            raise argparse.ArgumentTypeError(str(exc))
        return value
    if seconds <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value!r}")
    return seconds


def _aggregator_spec(value: str) -> str:
    """Validate an aggregation-rule spec (e.g. ``median``,
    ``clip(5)+krum``) at parse time so a typo is a usage error."""
    try:
        make_aggregator(value)
    except (TypeError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _topology_spec(value: str) -> str:
    """Validate an aggregation-topology spec (``flat`` or ``edge:G``) at
    parse time so a typo is a usage error."""
    try:
        parse_topology(value)
    except (TypeError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _fault_spec(value: str) -> str:
    """Validate a fault-plan spec (e.g. ``dropout=0.1,crash=2``) at parse
    time so a typo is a usage error, not a mid-run traceback."""
    try:
        make_fault_plan(value)
    except (TypeError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _codec_spec(value: str) -> str:
    """Validate a codec pipeline spec (e.g. ``delta``, ``fp16+deflate``) at
    parse time so a typo is a usage error, not a mid-run traceback."""
    try:
        make_codec(value)
    except (TypeError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _transport_spec(value: str) -> str:
    """Validate a transport spec (``auto``, ``pipe``, ``shm``, or a
    parameterized ``tcp[:host:port]``) at parse time so a typo is a
    usage error, not a mid-run traceback.  Builds the transport (which
    also validates any params suffix) and discards it — no transport
    binds a socket before its first publish."""
    try:
        make_transport(value)
    except (TypeError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _objective_spec(value: str) -> str:
    """Validate an objective-override spec (e.g. ``proto_nce=0.7`` or
    ``ce=1,align=0.3``) syntactically at parse time; whether each named
    term exists on the chosen method's objective is checked when the
    strategy is built."""
    try:
        parse_objective_overrides(value)
    except (TypeError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--suite", choices=sorted(SUITES), required=True)
    parser.add_argument(
        "--method", "--strategy", dest="method", choices=sorted(METHODS),
        required=True,
        help="FedDG method (strategy) to run; --strategy is an alias",
    )
    parser.add_argument(
        "--objective", type=_objective_spec, default=None,
        help="reweight the method's composite objective, e.g. "
        "'proto_nce=0.7' or 'consistency=1,align=0.5'; valid term names "
        "are the ones the method's objective declares "
        "(see repro.nn.objective)",
    )
    parser.add_argument("--clients", type=_positive_int, default=20)
    parser.add_argument(
        "--participation", type=_participation, default=0.25,
        help="fraction (0,1] or integer count of clients per round",
    )
    parser.add_argument("--heterogeneity", type=float, default=0.1)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--executor", choices=sorted(EXECUTOR_KINDS), default="auto",
        help="client-execution engine for each round's local updates; "
        "'auto' (default) picks serial or parallel from the per-round "
        "fan-out",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=None,
        help="worker-process count; implies the parallel engine under "
        "--executor auto",
    )
    parser.add_argument(
        "--codec", type=_codec_spec, default="identity",
        help="wire codec for weight payloads: one of "
        f"{', '.join(codec_specs())}, optionally '+deflate' (e.g. "
        "'fp16+deflate')",
    )
    parser.add_argument(
        "--transport", type=_transport_spec, default="auto",
        help="wire transport for broadcast blobs: one of "
        f"{', '.join(transport_usage())}; 'pipe' copies the blob per "
        "worker, 'shm' publishes one shared-memory copy per round, "
        "'tcp[:host:port]' serves it from a loopback (or bound) blob "
        "server; 'auto' (default) prefers shm where the platform "
        "supports it",
    )
    parser.add_argument(
        "--compute", choices=("auto",) + compute_specs(), default="auto",
        help="compute backend for co-resident client groups: 'loop' trains "
        "clients one at a time, 'ensemble' fuses each group into one "
        "batched (K, ...) parameter stack, 'strict' forces K=1 stacks "
        "through the ensemble path; 'auto' (default) picks ensemble when "
        "the model supports it — results are bitwise identical either way",
    )
    parser.add_argument(
        "--faults", type=_fault_spec, default=None,
        help="deterministic fault-injection plan, e.g. "
        "'dropout=0.1,straggler=0.25:0.05,corrupt=0.05,crash=2+5,seed=7' "
        "(see repro.fl.faults); faulty rounds aggregate over the survivors",
    )
    parser.add_argument(
        "--deadline", type=_deadline_spec, default=None,
        help="per-round wall-clock budget: seconds, or an adaptive spec "
        "like 'percentile:p95' (the p95 of recent round durations, with "
        "slack); when it expires the round closes with whatever updates "
        "arrived and stragglers are absorbed into the next round",
    )
    parser.add_argument(
        "--aggregator", type=_aggregator_spec, default="mean",
        help="server-side aggregation rule: one of "
        f"{', '.join(aggregator_specs())}, optionally prefixed "
        "'clip(tau)+' (e.g. 'clip(5)+krum'); 'mean' (default) is the "
        "historical weighted FedAvg, the others are Byzantine-robust "
        "(see repro.fl.aggregate)",
    )
    parser.add_argument(
        "--quorum", type=_positive_int, default=None,
        help="close each round as soon as this many uploads arrived; "
        "remaining participants are dropped as 'quorum' and the accepted "
        "set is recorded for exact replay",
    )
    parser.add_argument(
        "--topology", type=_topology_spec, default="flat",
        help="aggregation topology: 'flat' (default) reduces every upload "
        "at the root, 'edge:G' fans the round over G edge aggregators "
        "whose partial sums the root composes — bit-identical to flat, "
        "and requires a streaming-capable rule (mean, clip(tau)+mean)",
    )
    parser.add_argument(
        "--max-resident", type=_positive_int, default=None,
        help="bound the parallel engine's resident-client LRU (server-side "
        "copies + upload reference chains) to this many clients; evicted "
        "clients re-register with a full frame when re-sampled; implies "
        "the parallel engine under --executor auto",
    )
    parser.add_argument(
        "--timing", action="store_true",
        help="also print the phase-timing and measured-wire-traffic report "
        "(starts tracemalloc, so the peak-memory column is populated)",
    )


_TIMING_HEADER = [
    "run",
    "local train (s)",
    "local wall (s)",
    "speedup",
    "aggregation (s)",
    "one-time (s)",
    "wire up (KiB)",
    "wire down (KiB)",
    "unique down (KiB)",
    "bcast decode (s)",
    "overlap (s)",
    "dropped",
    "straggler (s)",
    "rebuilt",
    "rejected",
    "early close (s)",
    "peak mem (MiB)",
]


def _timing_row(name: str, timing) -> list[str]:
    """One report row; wire columns stay 0.0 for the in-process engine.

    "unique down" counts each broadcast blob once per round regardless of
    worker fan-out; "bcast decode" is worker decode time that overlapped
    the local phase; "overlap (s)" is pipelined cross-host time the
    remote engine hid behind the round's wall clock (0.0 for in-host
    engines); "dropped"/"straggler (s)"/"rebuilt" are the
    fault-tolerance counters — selected clients that produced no
    aggregated update, injected straggler slowdown absorbed, and worker
    slots rebuilt after crashes; "rejected"/"early close (s)" are the
    robustness counters — uploads the aggregation rule excluded and
    wall-clock saved by quorum early-closes; "peak mem (MiB)" is the
    tracemalloc peak the server sampled at round boundaries — 0.0 when
    tracing was off (see repro.fl.timing.TimingReport).
    """
    return [
        name,
        f"{timing.local_train_seconds_total:.2f}",
        f"{timing.local_train_wall_seconds_total:.2f}",
        f"{timing.local_train_speedup:.2f}",
        f"{timing.aggregation_seconds_total:.2f}",
        f"{timing.one_time_seconds:.2f}",
        f"{timing.bytes_up / 1024:.1f}",
        f"{timing.bytes_down / 1024:.1f}",
        f"{timing.unique_bytes_down / 1024:.1f}",
        f"{timing.broadcast_decode_seconds_total:.2f}",
        f"{timing.pipeline_overlap_seconds:.2f}",
        str(timing.dropped_clients),
        f"{timing.straggler_seconds:.2f}",
        str(timing.rebuilt_workers),
        str(timing.rejected_uploads),
        f"{timing.early_close_seconds:.2f}",
        f"{timing.peak_memory_bytes / (1024 * 1024):.1f}",
    ]


def _print_timing(rows: list[list[str]]) -> None:
    print(format_table(_TIMING_HEADER, rows, title="Timing & measured wire traffic"))


def _cmd_run(args: argparse.Namespace) -> int:
    suite = SUITES[args.suite](args.seed)
    train = [suite.domain_index(name) for name in args.train_domains]
    split = {
        "train": train,
        "val": [suite.domain_index(args.val_domain)],
        "test": [suite.domain_index(args.test_domain)],
    }
    outcome = run_split_experiment(
        suite, split, METHODS[args.method](), _setting_from_args(args)
    )
    print(
        format_table(
            ["method", "train domains", "val acc", "test acc"],
            [[
                args.method,
                "+".join(args.train_domains),
                format_percent(outcome.val_accuracy),
                format_percent(outcome.test_accuracy),
            ]],
        )
    )
    if args.timing:
        _print_timing([_timing_row(args.method, outcome.result.timing)])
    return 0


def _cmd_lodo(args: argparse.Namespace) -> int:
    suite = SUITES[args.suite](args.seed)
    outcomes = run_lodo_protocol(
        suite, METHODS[args.method], _setting_from_args(args)
    )
    cells = [outcomes[d].test_accuracy for d in suite.domain_names]
    print(
        format_table(
            ["method"] + suite.domain_names + ["AVG"],
            [[args.method]
             + [format_percent(c) for c in cells]
             + [format_percent(sum(cells) / len(cells))]],
            title=f"LODO on {args.suite}",
        )
    )
    if args.timing:
        _print_timing(
            [
                _timing_row(f"holdout={domain}", outcomes[domain].result.timing)
                for domain in suite.domain_names
            ]
        )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("suites: ", ", ".join(sorted(SUITES)))
    print("methods:", ", ".join(sorted(METHODS)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PARDON reproduction — federated domain generalization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="single train/val/test split")
    _add_common(run_parser)
    run_parser.add_argument("--train-domains", nargs="+", required=True)
    run_parser.add_argument("--val-domain", required=True)
    run_parser.add_argument("--test-domain", required=True)
    run_parser.set_defaults(func=_cmd_run)

    lodo_parser = sub.add_parser("lodo", help="leave-one-domain-out protocol")
    _add_common(lodo_parser)
    lodo_parser.set_defaults(func=_cmd_lodo)

    list_parser = sub.add_parser("list", help="list suites and methods")
    list_parser.set_defaults(func=_cmd_list)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "workers", None) is not None and args.executor == "serial":
        parser.error("--workers only applies with --executor parallel (or auto)")
    if (
        getattr(args, "max_resident", None) is not None
        and args.executor == "serial"
    ):
        parser.error(
            "--max-resident only applies with --executor parallel (or auto)"
        )
    started_tracing = False
    if getattr(args, "timing", False) and not tracemalloc.is_tracing():
        # The server samples tracemalloc peaks at round boundaries only
        # while tracing is active; --timing opts in so the peak-memory
        # column reports real numbers without taxing untimed runs.
        tracemalloc.start()
        started_tracing = True
    try:
        return args.func(args)
    finally:
        if started_tracing:
            tracemalloc.stop()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
