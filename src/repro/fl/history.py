"""Round-by-round run records (convergence curves, final accuracies)."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoundRecord", "RunHistory"]


@dataclass
class RoundRecord:
    """Metrics of one communication round.

    ``participants`` is who the sampler *selected*; ``dropped`` maps the
    selected clients that produced no aggregated update to the reason the
    fault layer recorded (``"dropout"``, ``"straggler"``, ``"deadline"``,
    ``"corrupt"``, ``"crash"``, ``"quorum"`` — see :mod:`repro.fl.faults`).
    Aggregation reweighted over the survivors: ``participants`` minus
    ``dropped``.

    ``accepted`` is recorded only when round membership depended on wall
    clock (quorum early-close, adaptive deadlines) or on a replay: the
    exact client ids whose updates reached aggregation, in aggregation
    order.  Feeding a history carrying it to
    :meth:`repro.fl.executor.Executor.set_replay` reproduces the run
    bit-identically even though the original arrival race does not.
    ``None`` (the default) keeps records from deterministic runs identical
    to prior releases.
    """

    round_index: int
    mean_local_loss: float
    participants: list[int]
    eval_accuracy: dict[str, float] = field(default_factory=dict)
    dropped: dict[int, str] = field(default_factory=dict)
    accepted: list[int] | None = None

    @property
    def survivors(self) -> list[int]:
        """The selected clients whose updates reached aggregation."""
        return [cid for cid in self.participants if cid not in self.dropped]


@dataclass
class RunHistory:
    """The full trace of a federated run plus its timing report."""

    strategy_name: str
    records: list[RoundRecord] = field(default_factory=list)

    def add(self, record: RoundRecord) -> None:
        self.records.append(record)

    def accuracy_series(self, eval_name: str) -> list[tuple[int, float]]:
        """(round, accuracy) points for one evaluation set (paper Fig. 3)."""
        return [
            (r.round_index, r.eval_accuracy[eval_name])
            for r in self.records
            if eval_name in r.eval_accuracy
        ]

    def final_accuracy(self, eval_name: str) -> float:
        """Accuracy of the last round that evaluated ``eval_name``."""
        series = self.accuracy_series(eval_name)
        if not series:
            raise KeyError(f"no evaluations recorded for {eval_name!r}")
        return series[-1][1]

    def loss_series(self) -> list[tuple[int, float]]:
        return [(r.round_index, r.mean_local_loss) for r in self.records]
