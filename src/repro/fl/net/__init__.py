"""Cross-machine federation: sockets under the same engine invariants.

This package takes the federated round loop across machine boundaries
while keeping every trace bit-identical to the in-host engines:

:mod:`repro.fl.net.frames`
    Length-prefixed wire frames — a sans-io :class:`FrameDecoder` (drives
    the partial-read tests byte by byte) plus blocking-socket and asyncio
    helpers built on it.
:mod:`repro.fl.net.protocol`
    Message vocabulary + the version/codec/compute handshake that mirrors
    pool build: an agent's HELLO is answered by WELCOME (negotiated specs
    + model blob) or REJECT, exactly as ``_worker_init`` initargs would
    have configured an in-host worker.
:mod:`repro.fl.net.transport`
    :class:`TcpTransport` — the ``tcp`` entry in the transport registry.
    One post-codec broadcast blob published to an in-process asyncio blob
    server; workers pull it (and push uploads back) over TCP.
:mod:`repro.fl.net.executor`
    :class:`RemoteExecutor` — drives remote agent connections through the
    standard ``run_round`` contract: registration, per-round broadcasts,
    task dispatch, arrival-order upload ingest with streaming aggregation,
    deadlines/quorum, and peer-disconnect fault mapping.  Pipelined by
    default (broadcast / train / upload overlap across hosts).
:mod:`repro.fl.net.serve` / :mod:`repro.fl.net.agent`
    The standalone daemon (``python -m repro.fl.net.serve``) and remote
    client agent (``python -m repro.fl.net.agent``) binaries.

Everything here reuses the existing wire contract (`ClientUpdate`,
`encode_payload` protocol-5 out-of-band blobs, codec reference chains,
`WireStats`, fault plans, deadlines, streaming folds) — the socket is a
new hop, not a new protocol.
"""

from repro.fl.net.frames import (
    FrameDecoder,
    FrameError,
    FrameStream,
    MAX_FRAME_BYTES,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.fl.net.protocol import (
    PROTOCOL_VERSION,
    HandshakeError,
    Message,
    decode_message,
    encode_message,
)
from repro.fl.net.transport import TcpHandle, TcpTransport
from repro.fl.net.executor import RemoteExecutor

__all__ = [
    "FrameDecoder",
    "FrameError",
    "FrameStream",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "recv_frame",
    "send_frame",
    "PROTOCOL_VERSION",
    "HandshakeError",
    "Message",
    "decode_message",
    "encode_message",
    "TcpHandle",
    "TcpTransport",
    "RemoteExecutor",
]
