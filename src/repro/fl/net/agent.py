"""Remote client agent: the worker process of a cross-machine federation.

``python -m repro.fl.net.agent --connect host:port`` dials a
:class:`repro.fl.net.executor.RemoteExecutor` (or the standalone daemon,
:mod:`repro.fl.net.serve`), performs the hello/welcome handshake, and
then serves the federation protocol until the server says goodbye:
registrations make clients resident, broadcasts install each round's
strategy and (lazily decoded) global state, tasks train co-resident
client groups, and each task's updates stream straight back as an
upload frame.

The entire training side is :class:`repro.fl.executor.WorkerRuntime` —
the same object a pool worker runs — built from the four negotiated
values the welcome carries (model blob, codec, transport, compute),
which are byte-for-byte the pool's initargs.  One runtime per
connection, held in locals rather than module globals, so
:func:`run_agent` is equally usable as a thread target (the in-process
tests run several agents in one interpreter) and as a process
entrypoint.
"""

from __future__ import annotations

import argparse
import pickle
import socket
import sys
import time

from repro.fl.executor import WorkerRuntime
from repro.fl.net.frames import FrameStream
from repro.fl.net.protocol import (
    BROADCAST,
    BYE,
    HELLO,
    REGISTER,
    REJECT,
    TASK,
    UPLOAD,
    WELCOME,
    HandshakeError,
    decode_message,
    encode_message,
    hello_meta,
)
from repro.fl.net.transport import parse_endpoint
from repro.utils.logging import get_logger

__all__ = ["run_agent", "main"]

_log = get_logger("fl.net.agent")

#: How long a starting agent keeps retrying the initial connect — agents
#: and the server race to start in CI, and the agent losing the race by a
#: second is routine, not an error.
_CONNECT_RETRY_SECONDS = 30.0
_CONNECT_RETRY_DELAY = 0.2


def _connect(host: str, port: int, retry_seconds: float) -> socket.socket:
    deadline = time.monotonic() + retry_seconds
    while True:
        try:
            return socket.create_connection((host, port), timeout=30.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(_CONNECT_RETRY_DELAY)


def run_agent(
    connect: "str | tuple[str, int]",
    name: str = "",
    codec: "str | None" = None,
    compute: "str | None" = None,
    retry_seconds: float = _CONNECT_RETRY_SECONDS,
) -> int:
    """Serve one federation connection to completion; returns the number
    of tasks trained.

    ``connect`` is ``"host:port"`` (or a ready tuple).  ``codec`` /
    ``compute`` are optional *pins*: the agent refuses — and the server
    rejects the handshake — if the federation negotiated anything else.
    Raises :class:`repro.fl.net.protocol.HandshakeError` on a reject.
    """
    host, port = (
        parse_endpoint(connect) if isinstance(connect, str) else connect
    )
    sock = _connect(host, port, retry_seconds)
    tasks_served = 0
    try:
        sock.settimeout(None)
        stream = FrameStream(sock)
        stream.send(
            encode_message(
                HELLO, hello_meta(name=name, codec=codec, compute=compute)
            )
        )
        frame = stream.next_frame()
        if frame is None:
            raise HandshakeError("server closed during handshake")
        message = decode_message(frame)
        if message.kind == REJECT:
            raise HandshakeError(
                message.meta.get("reason", "handshake rejected")
            )
        if message.kind != WELCOME:
            raise HandshakeError(
                f"expected welcome, got {message.kind!r}"
            )
        runtime = WorkerRuntime(
            message.blob,
            message.meta["codec"],
            message.meta.get("transport", "pipe"),
            message.meta["compute"],
        )
        _log.info(
            "agent %r joined %s:%d (codec=%s compute=%s)",
            name or "<anon>", host, port,
            message.meta["codec"], message.meta["compute"],
        )
        while True:
            frame = stream.next_frame()
            if frame is None:
                break  # server vanished; nothing left to serve
            message = decode_message(frame)
            if message.kind == REGISTER:
                runtime.register(message.blob)
            elif message.kind == BROADCAST:
                split = message.meta["strategy_bytes"]
                # The blob is strategy_blob + state_blob, split by length;
                # under the runtime's pipe transport the state blob *is*
                # the broadcast handle, so the lazy decode (and its
                # overlap accounting) works unchanged.
                runtime.broadcast(
                    message.blob[:split],
                    message.blob[split:],
                    message.meta["round"],
                )
            elif message.kind == TASK:
                wire = runtime.run_task(pickle.loads(message.blob))
                stream.send(
                    encode_message(
                        UPLOAD, {"task": message.meta["task"]}, wire
                    )
                )
                tasks_served += 1
            elif message.kind == BYE:
                break
            else:  # pragma: no cover - same-version servers never send this
                _log.warning("ignoring unexpected %r frame", message.kind)
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
    return tasks_served


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fl.net.agent",
        description="Join a federation as a remote client agent.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="server endpoint to join",
    )
    parser.add_argument(
        "--name", default="", help="agent name shown in server logs"
    )
    parser.add_argument(
        "--codec", default=None,
        help="pin the wire codec: refuse any other negotiated spec",
    )
    parser.add_argument(
        "--compute", default=None,
        help="pin the compute backend: refuse any other negotiated spec",
    )
    args = parser.parse_args(argv)
    try:
        served = run_agent(
            args.connect, name=args.name, codec=args.codec,
            compute=args.compute,
        )
    except HandshakeError as exc:
        print(f"handshake failed: {exc}", file=sys.stderr)
        return 2
    print(f"agent {args.name or '<anon>'} served {served} task(s)")
    return 0


if __name__ == "__main__":  # pragma: no cover - process entrypoint
    sys.exit(main())
