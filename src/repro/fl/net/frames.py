"""Length-prefixed wire frames: the one framing every socket in repro uses.

A frame is a 4-byte big-endian payload length followed by the payload
bytes.  That is the whole format — no per-frame type tag (message kinds
live inside the payload, see :mod:`repro.fl.net.protocol`), no checksum
(TCP already guarantees integrity), no padding.

The core is the sans-io :class:`FrameDecoder`: feed it whatever byte
chunks the kernel hands you — down to one byte at a time — and collect
completed frames.  The blocking-socket helpers (:func:`send_frame` /
:func:`recv_frame`) and the asyncio helpers (:func:`read_frame` /
:func:`write_frame`) are thin shims over the same encoder/decoder, so the
fragmentation tests exercise exactly the production parsing path.
"""

from __future__ import annotations

import asyncio
import socket
import struct

__all__ = [
    "FrameDecoder",
    "FrameError",
    "FrameStream",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "read_frame",
    "write_frame",
]

_HEADER = struct.Struct(">I")

#: Hard ceiling on a single frame's payload.  Broadcast blobs for
#: paper-scale models are a few MiB; a gigabyte-scale length prefix means
#: a corrupt or hostile peer, and refusing it early beats an OOM later.
MAX_FRAME_BYTES = 1 << 30


class FrameError(ValueError):
    """A malformed frame: oversized length prefix, or a peer that closed
    mid-frame (leaving an undecodable tail)."""


def encode_frame(payload: "bytes | memoryview") -> bytes:
    """The on-wire bytes for one frame: ``>I`` length prefix + payload."""
    length = len(payload)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {length} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(length) + bytes(payload)


class FrameDecoder:
    """Incremental sans-io frame parser.

    >>> dec = FrameDecoder()
    >>> for byte in encode_frame(b"hi"):   # worst-case fragmentation
    ...     frames = dec.feed(bytes([byte]))
    >>> frames
    [b'hi']

    ``feed`` returns every frame completed by the chunk (zero or more);
    partial header/payload bytes are buffered until the rest arrives.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: "bytes | memoryview") -> "list[bytes]":
        self._buffer.extend(chunk)
        frames: "list[bytes]" = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"frame header announces {length} bytes, over the "
                    f"{MAX_FRAME_BYTES} cap — corrupt or hostile peer"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return frames
            frames.append(bytes(self._buffer[_HEADER.size : end]))
            del self._buffer[:end]

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes of the not-yet-complete frame (0 when aligned)."""
        return len(self._buffer)


# -- blocking-socket shims -----------------------------------------------------


def send_frame(sock: socket.socket, payload: "bytes | memoryview") -> int:
    """Write one frame to a blocking socket; returns bytes on the wire."""
    data = encode_frame(payload)
    sock.sendall(data)
    return len(data)


def recv_frame(sock: socket.socket) -> "bytes | None":
    """Read exactly one frame from a blocking socket.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`FrameError` if the peer vanished mid-frame.
    """
    decoder = FrameDecoder()
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            if decoder.pending_bytes:
                raise FrameError(
                    f"peer closed mid-frame with {decoder.pending_bytes} bytes buffered"
                )
            return None
        frames = decoder.feed(chunk)
        if frames:
            if len(frames) > 1 or decoder.pending_bytes:
                # recv_frame is only used for strict request/response turns,
                # where the peer never pipelines a second frame.
                raise FrameError("unexpected pipelined bytes after frame")
            return frames[0]


class FrameStream:
    """A persistent framed view of one blocking socket.

    Unlike :func:`recv_frame` (strict request/response: one frame per
    turn, pipelined bytes are an error), a stream keeps its decoder
    across calls, so a peer may pipeline frames back-to-back — which the
    federation server does after the welcome (register, broadcast, and a
    burst of tasks can all be in flight at once).  The agent serve loop
    is the intended consumer.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._decoder = FrameDecoder()
        self._ready: "list[bytes]" = []

    def next_frame(self) -> "bytes | None":
        """The next frame, blocking until one arrives; ``None`` on a
        clean EOF at a frame boundary."""
        while not self._ready:
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._decoder.pending_bytes:
                    raise FrameError(
                        f"peer closed mid-frame with "
                        f"{self._decoder.pending_bytes} bytes buffered"
                    )
                return None
            self._ready.extend(self._decoder.feed(chunk))
        return self._ready.pop(0)

    @property
    def buffered(self) -> bool:
        """Whether a decoded frame is already waiting (i.e. ``next_frame``
        would return without touching the socket).  Selector loops must
        drain buffered frames before blocking on readability again — the
        kernel will not signal bytes that already left the socket."""
        return bool(self._ready)

    def send(self, payload: "bytes | memoryview") -> int:
        """Write one frame back to the peer; returns bytes on the wire."""
        return send_frame(self._sock, payload)


# -- asyncio shims -------------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> "bytes | None":
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            f"peer closed mid-frame with {len(exc.partial)} header bytes"
        ) from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame header announces {length} bytes, over the {MAX_FRAME_BYTES} cap"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"peer closed mid-frame: {len(exc.partial)}/{length} payload bytes"
        ) from exc


async def write_frame(
    writer: asyncio.StreamWriter, payload: "bytes | memoryview"
) -> int:
    """Write one frame to an asyncio stream and drain; returns wire bytes."""
    data = encode_frame(payload)
    writer.write(data)
    await writer.drain()
    return len(data)
