"""``tcp``: socket broadcast + upload streaming behind the Transport API.

The server side runs a tiny in-process **blob server** — an asyncio
length-prefixed-frame service on a daemon thread, started lazily on the
first :meth:`TcpTransport.publish`.  Publishing stores the post-codec
broadcast blob once under a blob id; the handle shipped to each worker is
a :class:`TcpHandle` naming the endpoint, blob id, and length.  Workers
:meth:`~TcpTransport.fetch` by opening a plain blocking connection and
exchanging one request/response frame pair — so the bytes that cross are
exactly the bytes ``publish`` was given, protocol-5 out-of-band framing
and all, and traces stay bit-identical to pipe/shm by construction.

Uploads stream back over the same socket: :meth:`~TcpTransport.send_upload`
pushes the encoded update blob to the blob server and returns a tiny
marker that rides the pool's result pipe; :meth:`~TcpTransport.recv_upload`
redeems the marker server-side.  If the push cannot reach the server (a
zombie straggler finishing after executor close, say) the blob falls back
to riding the result pipe inline — degraded accounting, never a wedge.

Spec forms: ``tcp`` binds loopback on an ephemeral port; ``tcp:host:port``
binds where told (``port`` may be 0 for ephemeral).  Worker-side endpoints
never bind at all — they dial whatever endpoint each handle names — so the
same spec string builds both roles, exactly like pipe/shm.
"""

from __future__ import annotations

import pickle
import secrets
import socket
import struct
import threading
from dataclasses import dataclass

from repro.fl.net.frames import recv_frame, send_frame
from repro.fl.transport import Transport
from repro.utils.logging import get_logger

__all__ = ["TcpTransport", "TcpHandle", "parse_endpoint"]

_log = get_logger("fl.net.transport")

#: Seconds a worker waits to reach the blob server before declaring the
#: broadcast unfetchable (a fetch failure, unlike an upload push failure,
#: has no inline fallback — the blob only exists server-side).
_CONNECT_TIMEOUT = 10.0

#: Marker prefix for redeemable uploads on the result pipe.  Distinct from
#: the serializer's ``RPB5`` magic, so the inline fallback (a raw
#: ``encode_payload`` blob) can never be mistaken for a marker.
_UPLOAD_MAGIC = b"RTU1"
_UPLOAD_HEAD = struct.Struct(">I")

_FOUND = b"\x01"
_MISSING = b"\x00"


def parse_endpoint(
    params: "str | None", default_host: str = "127.0.0.1"
) -> "tuple[str, int]":
    """``"host:port"`` -> ``(host, port)``; ``None``/empty means loopback
    ephemeral.  A bare ``"port"`` binds that port on the default host."""
    if not params:
        return (default_host, 0)
    host, sep, port_text = params.rpartition(":")
    if not sep:
        host, port_text = default_host, params
    if not host:
        host = default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad tcp endpoint {params!r}: expected host:port with an integer port"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"bad tcp endpoint {params!r}: port out of range")
    return (host, port)


@dataclass(frozen=True)
class TcpHandle:
    """What crosses the task pipe under tcp: where to dial and what to ask
    for.  Carrying the endpoint in the handle (rather than the spec) is
    what lets ephemeral-port servers and post-rebuild restarts work — the
    worker always dials whatever the *current* publish bound."""

    host: str
    port: int
    blob_id: int
    length: int


class _BlobServer:
    """The asyncio frame service backing one server-side TcpTransport.

    Requests are single pickled tuples — ``("get", blob_id)`` answered
    with a status byte + blob, ``("put", token, blob)`` answered with
    ``b"ok"`` — one request/response turn per connection per call, which
    keeps the worker side a dumb blocking socket with no demultiplexing.
    Runs its own event loop on a daemon thread so the executor's
    synchronous round loop never has to be async-aware.
    """

    def __init__(self, host: str, port: int) -> None:
        self._bind = (host, port)
        self._store: "dict[tuple[str, object], bytes]" = {}
        self._lock = threading.Lock()
        self._loop = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self._startup_error: "BaseException | None" = None
        self.address: "tuple[str, int] | None" = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-tcp-wire", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("tcp blob server failed to start within 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"tcp blob server could not bind {self._bind[0]}:{self._bind[1]}"
            ) from self._startup_error

    def _run(self) -> None:
        import asyncio

        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = None
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._serve_connection, *self._bind)
            )
            host, port = server.sockets[0].getsockname()[:2]
            self.address = (host, port)
            self._started.set()
            loop.run_forever()
        except Exception as exc:
            self._startup_error = exc
            self._started.set()
        finally:
            if server is not None:
                server.close()
                loop.run_until_complete(server.wait_closed())
            loop.close()

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10)
        with self._lock:
            self._store.clear()

    # -- request handling ----------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        from repro.fl.net.frames import FrameError, read_frame, write_frame

        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                op, *rest = pickle.loads(frame)
                if op == "get":
                    with self._lock:
                        blob = self._store.get(("blob", rest[0]))
                    if blob is None:
                        await write_frame(writer, _MISSING)
                    else:
                        await write_frame(writer, _FOUND + blob)
                elif op == "put":
                    token, blob = rest
                    with self._lock:
                        self._store[("upload", token)] = blob
                    await write_frame(writer, b"ok")
                else:  # pragma: no cover - same-version peers never send this
                    break
        except (FrameError, ConnectionError, OSError):
            pass  # a vanished peer is the caller's problem, not the server's
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # -- store ---------------------------------------------------------------

    def put_blob(self, blob_id: int, blob: bytes) -> None:
        with self._lock:
            self._store[("blob", blob_id)] = blob

    def pop_upload(self, token: str) -> "bytes | None":
        with self._lock:
            return self._store.pop(("upload", token), None)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()


class TcpTransport(Transport):
    """Socket broadcast via the blob server; see the module docstring.

    One instance per endpoint role: the server's (created by the executor)
    lazily starts a :class:`_BlobServer` on first publish; each worker's
    (rebuilt from the same spec in ``_worker_init``) never binds anything
    and only dials the endpoints its handles name.
    """

    name = "tcp"

    def __init__(self, params: "str | None" = None) -> None:
        self._params = params or None
        self._bind = parse_endpoint(self._params)
        self._server: "_BlobServer | None" = None
        self._next_blob_id = 0
        # Worker role: the blob-server endpoint seen on the latest fetch —
        # uploads push back to wherever the broadcast came from.
        self._upload_endpoint: "tuple[str, int] | None" = None

    @property
    def spec(self) -> str:
        return "tcp" if self._params is None else f"tcp:{self._params}"

    # -- server role ---------------------------------------------------------

    def _ensure_server(self) -> _BlobServer:
        if self._server is None:
            server = _BlobServer(*self._bind)
            server.start()
            self._server = server
            _log.info(
                "tcp blob server listening on %s:%d", *server.address
            )
        return self._server

    def _advertise_host(self) -> str:
        host = self._server.address[0]
        # A wildcard bind is reachable on loopback for in-host pool workers
        # (remote agents never dial TcpHandles — their broadcasts arrive
        # inline on the agent connection).
        return "127.0.0.1" if host in ("0.0.0.0", "::") else host

    def publish(self, blob: bytes) -> TcpHandle:
        server = self._ensure_server()
        blob_id = self._next_blob_id
        self._next_blob_id += 1
        server.put_blob(blob_id, bytes(blob))
        return TcpHandle(
            host=self._advertise_host(),
            port=server.address[1],
            blob_id=blob_id,
            length=len(blob),
        )

    def handle_wire_bytes(self, handle: object) -> int:
        # Each worker pulls a full copy over its own connection, plus the
        # pickled handle in its broadcast message — honest per-worker cost,
        # same shape as pipe.
        handle_len = len(pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL))
        return handle_len + getattr(handle, "length", 0)

    def end_round(self) -> None:
        # Same lifecycle as shm's segment unlink: once the round's uploads
        # are in, its blobs are dead weight, and any upload not redeemed by
        # round close belongs to a deadline-dropped zombie.  A zombie that
        # fetches after this point gets a ConnectionError in its own
        # worker, exactly like a zombie attaching an unlinked segment.
        if self._server is not None:
            self._server.clear()

    def close(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None

    # -- worker role ---------------------------------------------------------

    def fetch(self, handle: object) -> bytes:
        if not isinstance(handle, TcpHandle):
            raise TypeError(
                f"tcp transport received a {type(handle).__name__} handle; "
                f"the endpoints negotiated different transports"
            )
        self._upload_endpoint = (handle.host, handle.port)
        with socket.create_connection(
            (handle.host, handle.port), timeout=_CONNECT_TIMEOUT
        ) as sock:
            send_frame(sock, pickle.dumps(("get", handle.blob_id)))
            reply = recv_frame(sock)
        if not reply or reply[:1] != _FOUND:
            raise ConnectionError(
                f"broadcast blob {handle.blob_id} unavailable at "
                f"{handle.host}:{handle.port} (round already ended?)"
            )
        blob = reply[1:]
        if len(blob) != handle.length:
            raise ConnectionError(
                f"broadcast blob {handle.blob_id} truncated: "
                f"{len(blob)}/{handle.length} bytes"
            )
        return blob

    # -- upload channel ------------------------------------------------------

    def send_upload(self, blob: bytes) -> bytes:
        endpoint = self._upload_endpoint
        if endpoint is None:  # pragma: no cover - tasks always fetch first
            return blob
        token = secrets.token_hex(8)
        try:
            with socket.create_connection(endpoint, timeout=_CONNECT_TIMEOUT) as sock:
                send_frame(sock, pickle.dumps(("put", token, bytes(blob))))
                reply = recv_frame(sock)
            if reply != b"ok":  # pragma: no cover - defensive
                return blob
        except OSError:
            # The blob server is gone (executor closed under a zombie
            # straggler) — ride the result pipe inline rather than wedge.
            return blob
        return (
            _UPLOAD_MAGIC + _UPLOAD_HEAD.pack(len(blob)) + token.encode("ascii")
        )

    def recv_upload(self, wire: bytes) -> bytes:
        if wire[: len(_UPLOAD_MAGIC)] != _UPLOAD_MAGIC:
            return wire  # inline fallback blob
        token = bytes(wire[len(_UPLOAD_MAGIC) + _UPLOAD_HEAD.size :]).decode("ascii")
        blob = self._server.pop_upload(token) if self._server is not None else None
        if blob is None:
            raise ConnectionError(f"upload {token} missing from the blob server")
        (length,) = _UPLOAD_HEAD.unpack_from(wire, len(_UPLOAD_MAGIC))
        if len(blob) != length:  # pragma: no cover - defensive
            raise ConnectionError(f"upload {token} truncated: {len(blob)}/{length}")
        return blob
