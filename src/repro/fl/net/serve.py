"""Standalone federation server daemon.

``python -m repro.fl.net.serve --listen host:port --agents N ...`` binds
the agent listener, waits for ``N`` remote agents
(:mod:`repro.fl.net.agent`) to join, runs one federated DG experiment
across them with a :class:`repro.fl.net.executor.RemoteExecutor`, and
prints the outcome.  Every experiment knob mirrors ``python -m repro
run`` (same suites, methods, codecs, fault specs...), so a cross-machine
run is the in-host CLI command with ``run`` swapped for this module plus
a ``--listen``.

Operational extras:

``--port-file PATH``
    Write ``host port`` once the listener is bound — how scripted
    launches (the CI smoke, the tests) discover an ephemeral port.
``--trace-out PATH``
    Write the run's full trace (:func:`trace_dict`) as JSON: per-round
    losses/participants/evals/drops in exact hex floats plus a sha256
    over the final model state — enough to assert bit-identical runs
    across hosts without shipping weights.
``--check-serial``
    After the federated run, re-run the identical experiment in-process
    on :class:`repro.fl.executor.SerialExecutor` and fail (exit 1)
    unless the traces match bit-for-bit — the self-contained
    transport-invariance smoke the CI job runs.
"""

from __future__ import annotations

import argparse
import json
import hashlib
import sys

import numpy as np

from repro.fl.net.executor import RemoteExecutor

__all__ = ["main", "trace_dict"]


def trace_dict(result) -> dict:
    """A JSON-safe, bit-exact digest of one run's trace.

    Floats are serialized with ``float.hex()`` (lossless round-trip), the
    final state as a sha256 over the sorted parameter arrays — equal
    dicts mean bit-identical runs, across processes and hosts.
    """
    digest = hashlib.sha256()
    for key in sorted(result.final_state):
        digest.update(key.encode())
        digest.update(np.ascontiguousarray(result.final_state[key]).tobytes())
    return {
        "rounds": [
            {
                "round": record.round_index,
                "loss": float(record.mean_local_loss).hex(),
                "participants": list(record.participants),
                "eval": {
                    name: float(value).hex()
                    for name, value in sorted(record.eval_accuracy.items())
                },
                "dropped": {
                    str(client_id): reason
                    for client_id, reason in sorted(record.dropped.items())
                },
            }
            for record in result.history.records
        ],
        "final_accuracy": {
            name: float(value).hex()
            for name, value in sorted(result.final_accuracy.items())
        },
        "state_sha256": digest.hexdigest(),
    }


def _build_parser() -> argparse.ArgumentParser:
    from repro.cli import METHODS, SUITES, _add_common

    parser = argparse.ArgumentParser(
        prog="python -m repro.fl.net.serve",
        description="Serve one federated DG experiment to remote agents.",
    )
    _add_common(parser)
    parser.add_argument("--train-domains", nargs="+", required=True)
    parser.add_argument("--val-domain", required=True)
    parser.add_argument("--test-domain", required=True)
    parser.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="bind endpoint for agents (default: loopback, ephemeral port)",
    )
    parser.add_argument(
        "--agents", type=int, default=1,
        help="remote agents that must join before the run starts",
    )
    parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write 'host port' here once the listener is bound",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the run trace (trace_dict JSON) here",
    )
    parser.add_argument(
        "--no-pipeline", action="store_true",
        help="serialize the round agent-at-a-time instead of overlapping "
        "broadcast/train/upload across agents (same trace, no overlap)",
    )
    parser.add_argument(
        "--check-serial", action="store_true",
        help="after the run, replay it on the in-process serial engine and "
        "fail unless the traces are bit-identical",
    )
    # _add_common's executor/workers/transport/max-resident knobs describe
    # in-host engines; this daemon *is* the engine, so they are accepted
    # (for flag parity with `repro run`) and ignored.
    parser.set_defaults(suite_registry=SUITES, method_registry=METHODS)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    from repro.cli import _setting_from_args
    from repro.eval import run_split_experiment

    args = _build_parser().parse_args(argv)
    suite = args.suite_registry[args.suite](args.seed)
    split = {
        "train": [suite.domain_index(name) for name in args.train_domains],
        "val": [suite.domain_index(args.val_domain)],
        "test": [suite.domain_index(args.test_domain)],
    }
    setting = _setting_from_args(args)
    strategy_factory = args.method_registry[args.method]
    remote = RemoteExecutor(
        listen=args.listen,
        num_agents=args.agents,
        pipelined=not args.no_pipeline,
        codec=args.codec,
        faults=args.faults,
        deadline=args.deadline,
        compute=args.compute,
        quorum=args.quorum,
    )
    host, port = remote.address
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{host} {port}\n")
    print(f"serving on {host}:{port}; waiting for {args.agents} agent(s)")
    try:
        outcome = run_split_experiment(
            suite, split, strategy_factory(), setting, executor=remote
        )
    finally:
        remote.close()
    trace = trace_dict(outcome.result)
    overlap = outcome.result.timing.pipeline_overlap_seconds
    print(
        f"{args.method} on {args.suite}: "
        f"val={outcome.val_accuracy:.4f} test={outcome.test_accuracy:.4f} "
        f"overlap={overlap:.3f}s"
    )
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, indent=2, sort_keys=True)
    if args.check_serial:
        from dataclasses import replace as _replace

        serial_setting = _replace(setting, executor="serial", workers=None)
        reference = run_split_experiment(
            suite, split, strategy_factory(), serial_setting
        )
        if trace_dict(reference.result) != trace:
            print(
                "TRACE MISMATCH: remote run diverged from the serial engine",
                file=sys.stderr,
            )
            return 1
        print("trace matches the serial engine bit-for-bit")
    return 0


if __name__ == "__main__":  # pragma: no cover - process entrypoint
    sys.exit(main())
