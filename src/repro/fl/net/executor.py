"""Cross-machine execution: fan a round out to remote agent processes.

:class:`RemoteExecutor` is the server half of ``repro.fl.net`` — an
:class:`repro.fl.executor.Executor` whose training endpoints are
*other processes on other machines* (:mod:`repro.fl.net.agent`) reached
over length-prefixed TCP frames, instead of a local process pool.  It
speaks the wire protocol of :mod:`repro.fl.net.protocol`, but the blobs
inside every message are exactly the bytes the in-host engines put on
their pipes: ``encode_payload`` registration blobs, codec-encoded
broadcast states, pickled task tuples, ``encode_payload`` upload lists.
Both endpoints run :class:`repro.fl.executor.WorkerRuntime` /
:func:`repro.fl.executor._ingest_group_upload` — the same code the pool
runs — so traces are engine-invariant by construction, not by parallel
maintenance of two protocols.

Pipelined rounds
----------------
By default (``pipelined=True``) a round's registration, broadcast, and
task frames are written to **all** agents back-to-back before any upload
is awaited, and uploads are ingested in arrival order (a ``selectors``
loop).  Each agent therefore trains concurrently with the other agents'
transfers and training — the cross-host overlap the paper's scalability
axis is about.  The overlap actually achieved is measured per round
(endpoint busy-time minus the remote phase's wall clock, floored at
zero) and published as :attr:`last_overlap_seconds` /
:attr:`pipeline_overlap_rounds`; the server folds it into
``TimingReport.pipeline_overlap_seconds``.  ``pipelined=False`` degrades
to strict agent-at-a-time dispatch+collect — same trace, no overlap —
which is what the scaling bench compares against.

Fault semantics
---------------
Update-level faults (stragglers, hangs, corrupt and byzantine uploads)
ride inside task tuples exactly as on the pool.  A plan's *crash* victim
is never dispatched at all — a remote agent is not the server's process
to kill — and is dropped server-side (reason ``"crash"``, same trace as
every other engine).  Deadlines and quorum early-close run the same
arrival-order machinery as the pool's quorum collector; a dropped task's
eventual upload is discarded by task id (zombie absorption), and the
dropped client re-registers before its next participation.  The one
remote-only failure mode is a vanished agent: socket EOF or a write
error marks the agent dead, its outstanding clients are dropped with
reason ``"disconnect"`` (:data:`repro.fl.faults.DROP_REASONS`), the
round closes gracefully over the survivors, and the dead agent's
residents are re-homed (and re-registered) across the remaining agents
on the next round.
"""

from __future__ import annotations

import pickle
import selectors
import socket
import time
from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

from repro.fl.executor import (
    ClientUpdate,
    Executor,
    ParallelExecutor,
    WireStats,
    _ingest_group_upload,
)
from repro.fl.faults import RoundFaultReport, RoundTimeoutError
from repro.fl.net.frames import FrameError, FrameStream
from repro.fl.net.protocol import (
    BROADCAST,
    BYE,
    HELLO,
    REGISTER,
    REJECT,
    TASK,
    UPLOAD,
    WELCOME,
    decode_message,
    encode_message,
    evaluate_hello,
    PROTOCOL_VERSION,
)
from repro.fl.net.transport import parse_endpoint
from repro.fl.compute import make_compute, resolve_compute
from repro.nn.serialize import StateDict, encode_payload
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.aggregate import AggregationStream
    from repro.fl.client import Client
    from repro.fl.strategy import Strategy
    from repro.nn.models import FeatureClassifierModel

__all__ = ["RemoteExecutor"]

_log = get_logger("fl.net.executor")

#: Seconds the server waits for each expected agent to connect and
#: complete its handshake before declaring the federation unformable.
_ACCEPT_TIMEOUT = 60.0


class _Agent:
    """One connected remote endpoint, as the server sees it."""

    __slots__ = (
        "sock", "stream", "name", "alive",
        "resident", "pending_evict", "bcast_ref",
    )

    def __init__(self, sock: socket.socket, stream: FrameStream, name: str) -> None:
        self.sock = sock
        self.stream = stream
        self.name = name
        self.alive = True
        # client_id -> the exact server-side object resident on this agent
        # (identity decides re-registration, as on the pool).
        self.resident: "dict[int, Client]" = {}
        # Worker-side copies to free with the next registration blob.
        self.pending_evict: "list[int]" = []
        # Stateful-codec broadcast reference chain for this endpoint.
        self.bcast_ref: "StateDict | None" = None


class RemoteExecutor(Executor):
    """Run rounds across ``num_agents`` remote agent processes.

    Parameters
    ----------
    listen:
        Bind endpoint for the agent listener — ``"host:port"``, a bare
        port, or ``None``/empty for loopback on an ephemeral port.  The
        socket binds immediately, so :attr:`address` is valid before any
        agent exists (tests and the daemon read it to point agents at).
    num_agents:
        How many agents must connect (and pass the handshake) before the
        first round runs.  Clients are homed ``live_agents[cid % n]``;
        when an agent dies the survivors re-home everything.
    pipelined:
        ``True`` (default) overlaps broadcast/train/upload across agents;
        ``False`` serializes agent-at-a-time (same trace, no overlap).
    codec, faults, deadline, compute, quorum:
        As on every engine (:class:`repro.fl.executor.Executor`).

    The listener accepts agents lazily at the first round — the
    handshake's welcome needs the model template, which only exists once
    a run starts (mirrors lazy pool build).  One executor serves
    consecutive runs over the same agents as long as the model
    architecture is unchanged.
    """

    def __init__(
        self,
        listen: "str | None" = None,
        num_agents: int = 1,
        pipelined: bool = True,
        codec: str = "identity",
        faults: "str | None" = None,
        deadline: "float | str | None" = None,
        compute: str = "auto",
        quorum: "int | None" = None,
    ) -> None:
        super().__init__(
            codec=codec, faults=faults, deadline=deadline, compute=compute,
            quorum=quorum,
        )
        if num_agents < 1:
            raise ValueError(f"num_agents must be >= 1, got {num_agents}")
        self.num_agents = num_agents
        self.pipelined = pipelined
        self.wire = WireStats()
        self._upload_refs: "dict[int, StateDict]" = {}
        #: Per-completed-round cross-host overlap seconds (see the module
        #: docstring); the scaling bench reads this next to wall clock.
        self.pipeline_overlap_rounds: "list[float]" = []
        self.broadcast_encode_rounds: "list[float]" = []
        self._listen_sock = socket.create_server(
            parse_endpoint(listen), reuse_port=False
        )
        self._listen_sock.settimeout(_ACCEPT_TIMEOUT)
        self._agents: "list[_Agent] | None" = None
        self._architecture: "tuple | None" = None
        self._compute_batched = False
        self._next_task_id = 0

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` agents should connect to."""
        return self._listen_sock.getsockname()[:2]

    def wire_stats(self) -> WireStats:
        return replace(self.wire)

    # -- federation membership -----------------------------------------------

    def _ensure_agents(self, model: "FeatureClassifierModel") -> "list[_Agent]":
        architecture = ParallelExecutor._architecture_of(model)
        if self._agents is not None:
            if architecture != self._architecture:
                raise RuntimeError(
                    "model architecture changed mid-federation; remote agents "
                    "hold the old template — build a fresh RemoteExecutor"
                )
            live = [agent for agent in self._agents if agent.alive]
            if not live:
                raise RuntimeError("every remote agent has disconnected")
            return live
        model_blob = encode_payload(model)
        compute_spec = resolve_compute(self.compute, model)
        self._compute_batched = make_compute(compute_spec).batched
        welcome_meta = {
            "version": PROTOCOL_VERSION,
            "codec": self.codec.spec,
            "compute": compute_spec,
            # Agents fetch broadcasts from their own connection, so their
            # runtime's transport is the blob-is-the-handle pipe.
            "transport": "pipe",
        }
        agents: "list[_Agent]" = []
        while len(agents) < self.num_agents:
            try:
                sock, peer = self._listen_sock.accept()
            except socket.timeout:
                raise RuntimeError(
                    f"only {len(agents)}/{self.num_agents} agents connected "
                    f"within {_ACCEPT_TIMEOUT:.0f}s"
                ) from None
            stream = FrameStream(sock)
            try:
                frame = stream.next_frame()
                message = decode_message(frame) if frame is not None else None
            except (FrameError, ConnectionError, OSError):
                sock.close()
                continue
            if message is None or message.kind != HELLO:
                sock.close()
                continue
            reason = evaluate_hello(
                message.meta, codec_spec=self.codec.spec,
                compute_spec=compute_spec,
            )
            if reason is not None:
                _log.warning(
                    "rejecting agent %s:%d: %s", peer[0], peer[1], reason
                )
                try:
                    stream.send(encode_message(REJECT, {"reason": reason}))
                finally:
                    sock.close()
                continue
            stream.send(encode_message(WELCOME, welcome_meta, model_blob))
            self.wire.registration_bytes += len(model_blob)
            name = message.meta.get("name") or f"{peer[0]}:{peer[1]}"
            agents.append(_Agent(sock, stream, name))
            _log.info("agent %r joined (%d/%d)", name, len(agents), self.num_agents)
        self.wire.unique_registration_bytes += len(model_blob)
        self._agents = agents
        self._architecture = architecture
        return agents

    def _mark_dead(self, agent: _Agent) -> None:
        """An agent vanished: close its socket and force a full re-home —
        surviving agents flush their residents (evicted worker-side with
        the next registration blob) so every client re-registers under the
        new ``cid % len(live)`` layout, with both upload reference chains
        reset.  A stale copy left resident would pass the identity check
        after a *second* membership change and train from outdated
        scratch."""
        if not agent.alive:
            return
        agent.alive = False
        try:
            agent.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        _log.warning("agent %r disconnected", agent.name)
        for peer in self._agents or []:
            if peer.alive:
                peer.pending_evict.extend(peer.resident)
                peer.resident.clear()
        self._upload_refs.clear()

    def _send(self, agent: _Agent, payload: bytes) -> bool:
        """Write one frame to an agent; a write failure is a disconnect."""
        try:
            agent.stream.send(payload)
            return True
        except OSError:
            self._mark_dead(agent)
            return False

    # -- the round ------------------------------------------------------------

    def run_round(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        global_state: StateDict,
        participants: "Sequence[Client]",
        round_index: int,
        seeds: "Sequence[int]",
        stream: "AggregationStream | None" = None,
    ) -> "list[ClientUpdate]":
        live = self._ensure_agents(model)
        round_start = time.perf_counter()
        round_deadline = self._current_deadline()
        report = RoundFaultReport(round_index=round_index)
        replay = self._replay_membership(participants, seeds, round_index, report)
        if replay is not None:
            candidate_pairs, injected = replay
            round_deadline = None
        else:
            actions = (
                self.fault_plan.actions_for_round(
                    [client.client_id for client in participants],
                    round_index,
                    round_deadline,
                )
                if self.fault_plan is not None
                else None
            )
            if actions:
                report.straggler_seconds = actions.straggler_seconds
                report.dropped.update(actions.skipped)
            injected = actions.injected if actions else {}
            candidate_pairs = [
                (client, seed)
                for client, seed in zip(participants, seeds)
                if not (actions and client.client_id in actions.skipped)
            ]
        # A crash victim is dropped at dispatch (remote agents are not the
        # server's processes to kill); mirror the serial engine's sync
        # point so dirty-tracking stays engine-invariant.
        dispatch_pairs: "list[tuple[Client, int]]" = []
        for client, seed in candidate_pairs:
            fault = injected.get(client.client_id)
            if replay is None and fault is not None and fault.kind == "crash":
                client.scratch.collect_delta()
                report.dropped[client.client_id] = "crash"
                continue
            dispatch_pairs.append((client, seed))

        def home(client_id: int) -> _Agent:
            return live[client_id % len(live)]

        # Per-agent dispatch bundles: registration blob + broadcast frame +
        # task frames, built up front so the pipelined path can fire them
        # all back-to-back and the unpipelined path one agent at a time.
        encode_start = time.perf_counter()
        strategy_blob = encode_payload(strategy)
        agents_in_round = sorted(
            {id(home(c.client_id)): home(c.client_id) for c, _ in dispatch_pairs}.values(),
            key=lambda agent: live.index(agent),
        )
        self.wire.unique_broadcast_bytes += len(strategy_blob)
        state_blob_for_ref: "dict[int, bytes]" = {}
        bundles: "dict[int, list[bytes]]" = {id(a): [] for a in agents_in_round}
        for agent in agents_in_round:
            newcomers = [
                client
                for client, _ in dispatch_pairs
                if home(client.client_id) is agent
                and agent.resident.get(client.client_id) is not client
            ]
            if newcomers or agent.pending_evict:
                evict_ids = tuple(agent.pending_evict)
                agent.pending_evict = []
                blob = encode_payload((newcomers, evict_ids))
                self.wire.registration_bytes += len(blob)
                self.wire.unique_registration_bytes += len(blob)
                bundles[id(agent)].append(encode_message(REGISTER, blob=blob))
                for client in newcomers:
                    client.scratch.mark_clean()
                    agent.resident[client.client_id] = client
                    self._upload_refs.pop(client.client_id, None)
            state_blob = state_blob_for_ref.get(id(agent.bcast_ref))
            if state_blob is None:
                state_blob = encode_payload(
                    self.codec.encode(global_state, agent.bcast_ref)
                )
                state_blob_for_ref[id(agent.bcast_ref)] = state_blob
                self.wire.unique_broadcast_bytes += len(state_blob)
            if self.codec.stateful:
                agent.bcast_ref = global_state
            # Every agent pulls its own full copy over its own socket —
            # honest per-endpoint cost, same shape as pipe.
            self.wire.broadcast_bytes += len(strategy_blob) + len(state_blob)
            bundles[id(agent)].append(
                encode_message(
                    BROADCAST,
                    {"round": round_index, "strategy_bytes": len(strategy_blob)},
                    strategy_blob + state_blob,
                )
            )

        # Task grouping mirrors the pool: under a batched compute backend
        # one group per home agent, faulted clients always singleton.
        descriptors: "list[list]" = []  # [positions, clients, seeds, blobs, fault]
        group_at: "dict[int, int]" = {}  # id(agent) -> descriptor index
        for position, (client, seed) in enumerate(dispatch_pairs):
            server_delta = client.scratch.collect_delta()
            sync_blob = encode_payload(server_delta) if server_delta else None
            fault = injected.get(client.client_id)
            self.wire.task_bytes += len(
                pickle.dumps(
                    (client.client_id, round_index, seed, None, fault),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            ) + (len(sync_blob) if sync_blob is not None else 0)
            agent_key = id(home(client.client_id))
            if self._compute_batched and fault is None and agent_key in group_at:
                descriptor = descriptors[group_at[agent_key]]
                descriptor[0].append(position)
                descriptor[1].append(client)
                descriptor[2].append(seed)
                descriptor[3].append(sync_blob)
                continue
            if self._compute_batched and fault is None:
                group_at[agent_key] = len(descriptors)
            descriptors.append([[position], [client], [seed], [sync_blob], fault])
        # task_id -> [clients, seeds, positions, agent] (the row shape
        # _ingest_group_upload shares with the pool's collectors).
        outstanding: "dict[int, list]" = {}
        rows_of: "dict[int, list[int]]" = {id(a): [] for a in agents_in_round}
        for positions, clients, group_seeds, sync_blobs, fault in descriptors:
            agent = home(clients[0].client_id)
            task_id = self._next_task_id
            self._next_task_id += 1
            task = (
                tuple(client.client_id for client in clients),
                round_index,
                tuple(group_seeds),
                tuple(sync_blobs),
                fault,
            )
            bundles[id(agent)].append(
                encode_message(
                    TASK,
                    {"task": task_id, "round": round_index},
                    pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL),
                )
            )
            outstanding[task_id] = [clients, group_seeds, positions, agent]
            rows_of[id(agent)].append(task_id)
        encode_seconds = time.perf_counter() - encode_start

        results: "dict[int, ClientUpdate]" = {}
        remote_start = time.perf_counter()
        if self.pipelined:
            for agent in agents_in_round:
                if not all(self._send(agent, f) for f in bundles[id(agent)]):
                    self._drop_agent_rows(agent, outstanding, report)
            deadline_at = (
                None
                if round_deadline is None
                else time.perf_counter() + round_deadline
            )
            accepted = self._collect(
                agents_in_round, outstanding, results, report,
                global_state, deadline_at, stream,
            )
        else:
            # Unpipelined reference mode: one agent's whole round trip
            # completes before the next agent receives a byte.  The trace
            # is identical (results key on dispatch position); only the
            # overlap differs.
            deadline_at = (
                None
                if round_deadline is None
                else time.perf_counter() + round_deadline
            )
            accepted = 0
            for agent in agents_in_round:
                if not all(self._send(agent, f) for f in bundles[id(agent)]):
                    self._drop_agent_rows(agent, outstanding, report)
                    continue
                pending_here = {
                    task_id: outstanding.pop(task_id)
                    for task_id in rows_of[id(agent)]
                    if task_id in outstanding
                }
                accepted += self._collect(
                    [agent], pending_here, results, report,
                    global_state, deadline_at, stream,
                    quorum_base=accepted,
                )
                if self.quorum is not None and accepted >= self.quorum:
                    for task_id, row in list(outstanding.items()):
                        self._drop_row(row, "quorum", report)
                        outstanding.pop(task_id)
                    report.early_closed = True
                    break

        updates = [update for _, update in sorted(results.items())]
        busy = sum(
            update.train_seconds + update.decode_seconds + update.straggler_seconds
            for update in updates
        )
        remote_wall = time.perf_counter() - remote_start
        overlap = max(0.0, busy - remote_wall) if self.pipelined else 0.0
        self.last_overlap_seconds = overlap
        self.last_fault_report = report

        deadline_dropped = tuple(
            client_id
            for client_id, reason in report.dropped.items()
            if reason in ("deadline", "disconnect")
        )
        quorum_missed = (
            self.quorum is not None
            and replay is None
            and accepted < self.quorum
            and bool(deadline_dropped)
        )
        if replay is None and deadline_dropped and (not updates or quorum_missed):
            raise RoundTimeoutError(
                round_index,
                deadline_dropped,
                quorum=self.quorum,
                accepted=tuple(update.client_id for update in updates),
            )
        self.pipeline_overlap_rounds.append(overlap)
        self.broadcast_encode_rounds.append(encode_seconds)
        self._observe_round_duration(time.perf_counter() - round_start)
        return updates

    # -- collection -----------------------------------------------------------

    def _drop_row(self, row: "list", reason: str, report: RoundFaultReport) -> None:
        """Record one outstanding row's clients as dropped and force their
        re-registration (the agent-side copy diverges if the task later
        completes as a zombie)."""
        clients, _, _, agent = row
        for client in clients:
            report.dropped[client.client_id] = reason
            agent.resident.pop(client.client_id, None)

    def _drop_agent_rows(
        self, agent: _Agent, outstanding: "dict[int, list]",
        report: RoundFaultReport,
    ) -> None:
        for task_id, row in list(outstanding.items()):
            if row[3] is agent:
                self._drop_row(row, "disconnect", report)
                outstanding.pop(task_id)

    def _collect(
        self,
        agents: "list[_Agent]",
        outstanding: "dict[int, list]",
        results: "dict[int, ClientUpdate]",
        report: RoundFaultReport,
        global_state: StateDict,
        deadline_at: "float | None",
        stream: "AggregationStream | None",
        quorum_base: int = 0,
    ) -> int:
        """Ingest uploads in arrival order until ``outstanding`` drains,
        the quorum is met, or the deadline expires; returns how many
        updates were accepted here.  An upload whose task id is no longer
        outstanding (a previous round's zombie, or a deadline-dropped
        task finishing late) is discarded silently."""
        accepted = 0

        def quorum_met() -> bool:
            return (
                self.quorum is not None
                and quorum_base + accepted >= self.quorum
            )

        selector = selectors.DefaultSelector()
        watched: "list[_Agent]" = []
        for agent in agents:
            if agent.alive and any(
                row[3] is agent for row in outstanding.values()
            ):
                selector.register(agent.sock, selectors.EVENT_READ, agent)
                watched.append(agent)
        try:
            while outstanding and not quorum_met():
                # Frames already decoded off the socket never re-trigger
                # the selector: drain them first.
                progressed = False
                for agent in watched:
                    while (
                        agent.alive and agent.stream.buffered
                        and outstanding and not quorum_met()
                    ):
                        accepted += self._pump(
                            agent, outstanding, results, report,
                            global_state, stream, selector,
                        )
                        progressed = True
                if progressed:
                    continue
                if not any(agent.alive for agent in watched):
                    break
                timeout = (
                    None
                    if deadline_at is None
                    else max(0.0, deadline_at - time.perf_counter())
                )
                events = selector.select(timeout)
                if not events:
                    # Deadline expired: close over whatever arrived.  The
                    # still-running tasks finish as zombies; their uploads
                    # are discarded by task id.
                    for task_id, row in list(outstanding.items()):
                        self._drop_row(row, "deadline", report)
                        outstanding.pop(task_id)
                    break
                for key, _ in events:
                    if outstanding and not quorum_met():
                        accepted += self._pump(
                            key.data, outstanding, results, report,
                            global_state, stream, selector,
                        )
        finally:
            selector.close()
        if outstanding and quorum_met():
            report.early_closed = True
            if deadline_at is not None:
                report.early_close_seconds = max(
                    0.0, deadline_at - time.perf_counter()
                )
            for task_id, row in list(outstanding.items()):
                self._drop_row(row, "quorum", report)
                outstanding.pop(task_id)
        return accepted

    def _pump(
        self,
        agent: _Agent,
        outstanding: "dict[int, list]",
        results: "dict[int, ClientUpdate]",
        report: RoundFaultReport,
        global_state: StateDict,
        stream: "AggregationStream | None",
        selector: selectors.DefaultSelector,
    ) -> int:
        """Process one frame from ``agent``; returns accepted-update count.
        EOF and read errors are a disconnect: the agent's outstanding rows
        drop with the typed reason and the round moves on — a mid-upload
        disconnect can never wedge round close."""
        try:
            frame = agent.stream.next_frame()
        except (FrameError, ConnectionError, OSError):
            frame = None
        if frame is None:
            try:
                selector.unregister(agent.sock)
            except (KeyError, ValueError):  # pragma: no cover - already gone
                pass
            self._mark_dead(agent)
            self._drop_agent_rows(agent, outstanding, report)
            return 0
        message = decode_message(frame)
        if message.kind != UPLOAD:  # pragma: no cover - protocol violation
            _log.warning("unexpected %r frame from agent %r", message.kind, agent.name)
            return 0
        row = outstanding.pop(message.meta.get("task"), None)
        if row is None:
            return 0  # zombie: its client was already dropped
        return _ingest_group_upload(
            self, row, message.blob, global_state, results, report, stream
        )

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Send every live agent a clean shutdown and tear the sockets
        down.  Idempotent; the listener closes too, so a closed executor
        cannot be reused (build a fresh one — agents reconnect)."""
        for agent in self._agents or []:
            if agent.alive:
                try:
                    agent.stream.send(encode_message(BYE))
                except OSError:
                    pass
                agent.alive = False
                try:
                    agent.sock.close()
                except OSError:  # pragma: no cover
                    pass
        self._agents = None
        try:
            self._listen_sock.close()
        except OSError:  # pragma: no cover
            pass
        self._upload_refs.clear()
