"""Message vocabulary + handshake for the federation socket protocol.

Every frame payload (:mod:`repro.fl.net.frames`) is one pickled
``(kind, meta, blob)`` triple:

========== ========= =====================================================
kind       direction meaning
========== ========= =====================================================
hello      agent →   protocol version + optional pinned codec/compute
welcome    → agent   negotiated codec/compute specs + the pickled model
reject     → agent   handshake refused; ``meta["reason"]`` says why
register   → agent   pool-resident client registration blob (+ evictions)
broadcast  → agent   round strategy blob + codec-encoded global state
task       → agent   one ``(client_ids, round, seeds, syncs, fault)`` tuple
upload     agent →   ``encode_payload(list[ClientUpdate])`` for one task
bye        → agent   clean shutdown; the agent exits its serve loop
========== ========= =====================================================

``meta`` is a small plain dict (version numbers, spec strings, round
indices); ``blob`` is an opaque byte string.  Blobs are always the *same
bytes* the in-host engine would have put on its pipes —
``encode_payload`` output with protocol-5 out-of-band buffers framed
inline — so the serializer round-trips untouched across the socket and
traces stay transport-invariant by construction.

The handshake mirrors pool build: an in-host worker is configured by
``_worker_init(model_blob, codec_spec, transport_spec, compute_spec)``
initargs; a remote agent gets the identical four values via
hello/welcome.  An agent may *pin* a codec or compute spec in its hello
(operators do this to refuse surprise lossy codecs); a pin that differs
from the server's negotiated spec is a reject, not a silent override.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

__all__ = [
    "PROTOCOL_VERSION",
    "HELLO",
    "WELCOME",
    "REJECT",
    "REGISTER",
    "BROADCAST",
    "TASK",
    "UPLOAD",
    "BYE",
    "Message",
    "HandshakeError",
    "encode_message",
    "decode_message",
    "hello_meta",
    "evaluate_hello",
]

#: Bumped on any incompatible change to the message vocabulary or blob
#: encodings.  Both sides send it; a mismatch is a handshake reject.
PROTOCOL_VERSION = 1

HELLO = "hello"
WELCOME = "welcome"
REJECT = "reject"
REGISTER = "register"
BROADCAST = "broadcast"
TASK = "task"
UPLOAD = "upload"
BYE = "bye"


class HandshakeError(ConnectionError):
    """The peer rejected (or botched) the hello/welcome exchange."""


@dataclass
class Message:
    """One decoded protocol message."""

    kind: str
    meta: dict = field(default_factory=dict)
    blob: "bytes | None" = None


def encode_message(kind: str, meta: "dict | None" = None, blob: "bytes | None" = None) -> bytes:
    """Serialize one message into a frame payload."""
    return pickle.dumps(
        (kind, dict(meta or {}), None if blob is None else bytes(blob)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def decode_message(payload: "bytes | memoryview") -> Message:
    """Parse a frame payload back into a :class:`Message`."""
    kind, meta, blob = pickle.loads(payload)
    return Message(kind=kind, meta=meta, blob=blob)


def hello_meta(
    name: str = "",
    codec: "str | None" = None,
    compute: "str | None" = None,
) -> dict:
    """The meta dict an agent sends in its hello.  ``codec``/``compute``
    are optional *pins*: the agent refuses to run under any other spec."""
    meta = {"version": PROTOCOL_VERSION, "name": name}
    if codec is not None:
        meta["codec"] = codec
    if compute is not None:
        meta["compute"] = compute
    return meta


def evaluate_hello(meta: dict, *, codec_spec: str, compute_spec: str) -> "str | None":
    """Server-side hello check: the reject reason, or ``None`` to welcome.

    ``codec_spec``/``compute_spec`` are the server's negotiated specs (the
    same strings an in-host pool would ship in initargs).
    """
    version = meta.get("version")
    if version != PROTOCOL_VERSION:
        return (
            f"protocol version mismatch: agent speaks {version!r}, "
            f"server speaks {PROTOCOL_VERSION}"
        )
    pinned_codec = meta.get("codec")
    if pinned_codec is not None and pinned_codec != codec_spec:
        return (
            f"codec mismatch: agent pinned {pinned_codec!r}, "
            f"server negotiated {codec_spec!r}"
        )
    pinned_compute = meta.get("compute")
    if pinned_compute is not None and pinned_compute != compute_spec:
        return (
            f"compute mismatch: agent pinned {pinned_compute!r}, "
            f"server negotiated {compute_spec!r}"
        )
    return None
