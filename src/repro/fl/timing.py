"""Wall-clock instrumentation for the overhead comparison (paper Fig. 4).

The paper breaks computation into (i) local training per client, (ii) server
aggregation, and (iii) remaining one-time cost (for PARDON: the style
extraction before round 1).  :class:`PhaseTimer` accumulates exactly those
three buckets so every strategy is measured identically.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["PhaseTimer", "TimingReport"]


@dataclass
class TimingReport:
    """Aggregated wall-clock costs of one federated run.

    ``local_train_seconds_total`` sums the *per-worker* compute time of every
    local update (what Fig. 4 compares — it is execution-engine-invariant),
    while ``local_train_wall_seconds_total`` is the elapsed server-side time
    of the local phase.  Serially the two coincide; under a parallel
    executor the wall clock shrinks while the compute total stays put, and
    their ratio is the achieved speedup.
    """

    one_time_seconds: float
    local_train_seconds_total: float
    local_train_invocations: int
    aggregation_seconds_total: float
    rounds: int
    local_train_wall_seconds_total: float = 0.0
    #: Measured traffic across the execution engine's process boundary
    #: (zero for in-process engines); see repro.fl.executor.WireStats.
    bytes_up: int = 0
    bytes_down: int = 0
    #: Downlink traffic with fan-out duplicates counted once: the broadcast
    #: blob counts once per round, not once per participating worker.  The
    #: gap to ``bytes_down`` is what a single-copy transport (shm) saves.
    unique_bytes_down: int = 0
    #: Worker-measured wall clock of the lazy broadcast decodes — work that
    #: ran *inside* the local phase (overlapped with training and dispatch)
    #: instead of behind a synchronous pre-round barrier.
    broadcast_decode_seconds_total: float = 0.0
    #: Cross-host broadcast/train/upload overlap (pipelined multi-host
    #: rounds only — see :class:`repro.fl.net.executor.RemoteExecutor`):
    #: remote-endpoint busy time that ran concurrently with other hosts'
    #: work instead of serializing behind it.  Zero for in-host engines.
    pipeline_overlap_seconds: float = 0.0
    #: Fault-tolerance counters (see repro.fl.faults): selected clients
    #: that produced no aggregated update (dropouts, crash victims,
    #: deadline misses, corrupt uploads), ...
    dropped_clients: int = 0
    #: ... total injected straggler slowdown the run absorbed, ...
    straggler_seconds: float = 0.0
    #: ... and worker-pool slots rebuilt after a crash.
    rebuilt_workers: int = 0
    #: Robustness counters (see repro.fl.aggregate): uploads the
    #: aggregation rule excluded outright (krum's non-selected peers), ...
    rejected_uploads: int = 0
    #: ... rounds a quorum closed before every upload arrived, ...
    early_closed_rounds: int = 0
    #: ... and the wall-clock headroom those early closes saved against
    #: the rounds' deadlines.
    early_close_seconds: float = 0.0
    #: Peak traced server-process memory (``tracemalloc``) observed at any
    #: round boundary, in bytes; 0 when tracing was off.  With streaming
    #: aggregation and a lazy population this is O(participants), not
    #: O(population) — the scaling invariant the memory smoke test pins.
    peak_memory_bytes: int = 0

    @property
    def local_train_seconds_mean(self) -> float:
        """Average local-training time per client invocation."""
        if self.local_train_invocations == 0:
            return 0.0
        return self.local_train_seconds_total / self.local_train_invocations

    @property
    def aggregation_seconds_mean(self) -> float:
        """Average aggregation time per round."""
        if self.rounds == 0:
            return 0.0
        return self.aggregation_seconds_total / self.rounds

    @property
    def local_train_speedup(self) -> float:
        """Per-worker compute over elapsed wall clock (1.0 when serial)."""
        if self.local_train_wall_seconds_total <= 0.0:
            return 1.0
        return self.local_train_seconds_total / self.local_train_wall_seconds_total

    @property
    def bytes_total(self) -> int:
        """All measured wire traffic, both directions."""
        return self.bytes_up + self.bytes_down


class PhaseTimer:
    """Accumulate durations into the three Fig.-4 buckets."""

    def __init__(self) -> None:
        self._one_time = 0.0
        self._local_total = 0.0
        self._local_count = 0
        self._local_wall = 0.0
        self._aggregate_total = 0.0
        self._rounds = 0
        self._bytes_up = 0
        self._bytes_down = 0
        self._unique_bytes_down = 0
        self._decode_total = 0.0
        self._pipeline_overlap = 0.0
        self._dropped_clients = 0
        self._straggler_seconds = 0.0
        self._rebuilt_workers = 0
        self._rejected_uploads = 0
        self._early_closed_rounds = 0
        self._early_close_seconds = 0.0
        self._peak_memory = 0

    @contextmanager
    def one_time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._one_time += time.perf_counter() - start

    @contextmanager
    def local_train(self) -> Iterator[None]:
        """Time one in-process local update (compute == wall by definition).

        The round loop itself uses :meth:`record_local_train` /
        :meth:`record_local_wall` because worker-measured compute and
        server-side wall clock diverge under parallel execution; this
        context manager is the convenience API for external callers timing
        serial code.  Keep the two paths' accounting in sync.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._local_total += elapsed
            self._local_count += 1
            self._local_wall += elapsed

    def record_local_train(self, seconds: float) -> None:
        """Account one local update measured elsewhere (e.g. in a worker)."""
        self._local_total += seconds
        self._local_count += 1

    def record_local_wall(self, seconds: float) -> None:
        """Account the elapsed server-side time of one round's local phase."""
        self._local_wall += seconds

    def record_bytes(
        self,
        bytes_up: int,
        bytes_down: int,
        unique_bytes_down: int | None = None,
    ) -> None:
        """Account measured wire traffic (e.g. one round's executor delta).

        ``unique_bytes_down`` is the fan-out-deduplicated downlink; callers
        without dedup information may omit it, which counts every downlink
        byte as unique (true when nothing fanned out).
        """
        self._bytes_up += int(bytes_up)
        self._bytes_down += int(bytes_down)
        self._unique_bytes_down += int(
            bytes_down if unique_bytes_down is None else unique_bytes_down
        )

    def record_faults(
        self,
        dropped_clients: int = 0,
        straggler_seconds: float = 0.0,
        rebuilt_workers: int = 0,
    ) -> None:
        """Account one round's fault-tolerance outcome (see
        :class:`repro.fl.faults.RoundFaultReport`)."""
        self._dropped_clients += int(dropped_clients)
        self._straggler_seconds += float(straggler_seconds)
        self._rebuilt_workers += int(rebuilt_workers)

    def record_robustness(
        self,
        rejected_uploads: int = 0,
        early_closed_rounds: int = 0,
        early_close_seconds: float = 0.0,
    ) -> None:
        """Account one round's robustness outcome: uploads the aggregation
        rule rejected (:attr:`repro.fl.aggregate.Aggregator.last_rejected`)
        and quorum early-close savings
        (:class:`repro.fl.faults.RoundFaultReport`)."""
        self._rejected_uploads += int(rejected_uploads)
        self._early_closed_rounds += int(early_closed_rounds)
        self._early_close_seconds += float(early_close_seconds)

    def record_peak_memory(self, nbytes: int) -> None:
        """Account a ``tracemalloc`` peak sample (the server takes one per
        round when tracing is active); the report keeps the maximum."""
        self._peak_memory = max(self._peak_memory, int(nbytes))

    def record_broadcast_decode(self, seconds: float) -> None:
        """Account one worker-measured lazy broadcast decode (the overlap
        window: this work ran inside the local phase, not behind a
        pre-round barrier)."""
        self._decode_total += seconds

    def record_pipeline_overlap(self, seconds: float) -> None:
        """Account one round's cross-host pipelining win: remote busy time
        that ran concurrently with other hosts' broadcast/train/upload
        instead of serializing behind it."""
        self._pipeline_overlap += float(seconds)

    @contextmanager
    def aggregation(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._aggregate_total += time.perf_counter() - start
            self._rounds += 1

    def report(self) -> TimingReport:
        return TimingReport(
            one_time_seconds=self._one_time,
            local_train_seconds_total=self._local_total,
            local_train_invocations=self._local_count,
            aggregation_seconds_total=self._aggregate_total,
            rounds=self._rounds,
            local_train_wall_seconds_total=self._local_wall,
            bytes_up=self._bytes_up,
            bytes_down=self._bytes_down,
            unique_bytes_down=self._unique_bytes_down,
            broadcast_decode_seconds_total=self._decode_total,
            pipeline_overlap_seconds=self._pipeline_overlap,
            dropped_clients=self._dropped_clients,
            straggler_seconds=self._straggler_seconds,
            rebuilt_workers=self._rebuilt_workers,
            rejected_uploads=self._rejected_uploads,
            early_closed_rounds=self._early_closed_rounds,
            early_close_seconds=self._early_close_seconds,
            peak_memory_bytes=self._peak_memory,
        )
