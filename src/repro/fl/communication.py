"""Communication-cost accounting per federated method.

The paper's scalability argument (§IV-B-3) is about computation, but the
same comparison matters for bytes on the wire: PARDON adds a single
``R^{2d}`` vector per client *once*, while cross-sharing methods ship style
banks or prototypes every round.  This module computes the exact payload
sizes from the model and method parameters so the overhead bench can print
a bytes-per-round column alongside wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fl.codec import analytic_scalar_bytes
from repro.fl.timing import TimingReport
from repro.nn.models import FeatureClassifierModel

__all__ = [
    "CommunicationModel",
    "MeasuredCommunication",
    "method_communication",
]

_BYTES_PER_SCALAR = 8  # float64 throughout the library


@dataclass(frozen=True)
class CommunicationModel:
    """Per-round and one-time traffic of one method, in bytes.

    ``per_round_up`` / ``per_round_down`` are per *participating client*;
    ``one_time_up`` / ``one_time_down`` are per client, before round 1.
    """

    method: str
    per_round_up: int
    per_round_down: int
    one_time_up: int = 0
    one_time_down: int = 0

    def total(self, rounds: int, participants_per_round: int, num_clients: int) -> int:
        """Total session traffic in bytes."""
        per_round = (self.per_round_up + self.per_round_down) * participants_per_round
        one_time = (self.one_time_up + self.one_time_down) * num_clients
        return per_round * rounds + one_time


@dataclass(frozen=True)
class MeasuredCommunication:
    """Traffic an execution engine *actually* moved, normalized like
    :class:`CommunicationModel` (per participating client per round) so the
    overhead bench can print measured next to analytic.

    Measured bytes include what the analytic model abstracts away — pickle
    framing, the strategy blob in the broadcast, scratch deltas — and the
    parallel engine broadcasts once per *worker*, not per client, so the
    per-client download can come out *below* the analytic weight cost.
    """

    bytes_up: int
    bytes_down: int
    rounds: int
    client_updates: int

    @classmethod
    def from_report(cls, report: TimingReport) -> "MeasuredCommunication":
        """Normalize one run's :class:`TimingReport` wire counters."""
        return cls(
            bytes_up=report.bytes_up,
            bytes_down=report.bytes_down,
            rounds=report.rounds,
            client_updates=report.local_train_invocations,
        )

    @property
    def per_update_up(self) -> float:
        """Upload bytes per (client, round) local update."""
        if self.client_updates == 0:
            return 0.0
        return self.bytes_up / self.client_updates

    @property
    def per_update_down(self) -> float:
        """Download bytes per (client, round) local update — registration
        and broadcast amortized over every update of the run."""
        if self.client_updates == 0:
            return 0.0
        return self.bytes_down / self.client_updates


def method_communication(
    method: str,
    model: FeatureClassifierModel,
    style_dim: int = 24,
    num_classes: int = 7,
    num_clients: int = 20,
    styles_per_client: int = 1,
    codec: str = "identity",
) -> CommunicationModel:
    """Payload model for each method in the paper's line-up.

    ``style_dim`` is ``2d`` (mean+std per encoder channel); prototypes are
    ``embed_dim`` floats per class.

    ``codec`` adjusts the *weight* component for the wire codec actually in
    use (see :mod:`repro.fl.codec`): fp16 ships 2 bytes per scalar, qint8
    one, and ``delta``/``deflate`` stay at the dense bound because their
    compression is data-dependent — that keeps this model an honest upper
    bound next to the measured columns, never an optimistic estimate.
    Method-specific side payloads (styles, prototypes) are not
    codec-encoded and keep their float64 size.
    """
    weights = int(
        model.num_parameters() * analytic_scalar_bytes(codec, _BYTES_PER_SCALAR)
    )
    style = style_dim * _BYTES_PER_SCALAR
    prototypes = model.embed_dim * num_classes * _BYTES_PER_SCALAR

    base = {"per_round_up": weights, "per_round_down": weights}
    if method in ("fedavg", "fedsr", "fedgma", "feddg_ga"):
        # Pure weight exchange; FedGMA/FedDG-GA differ only server-side.
        return CommunicationModel(method=method, **base)
    if method == "fpl":
        # Class prototypes ride along with every upload and download.
        return CommunicationModel(
            method=method,
            per_round_up=weights + prototypes,
            per_round_down=weights + prototypes,
        )
    if method == "ccst":
        # One-time style-bank build, then the whole bank is broadcast: each
        # client downloads every other client's style(s) before training.
        bank = style * styles_per_client * num_clients
        return CommunicationModel(
            method=method,
            one_time_up=style * styles_per_client,
            one_time_down=bank,
            **base,
        )
    if method == "pardon":
        # One style vector up, one interpolation style down — once, ever.
        return CommunicationModel(
            method=method,
            one_time_up=style,
            one_time_down=style,
            **base,
        )
    raise ValueError(f"unknown method {method!r}")
