"""Client populations: where a round's participants come from.

The historical server held every :class:`repro.fl.client.Client` in a
list — O(total population) memory before the first round runs, which is
exactly what the "millions of users" north star breaks.  This module
splits *who exists* from *who is resident*:

:class:`ListPopulation`
    Wraps an explicit client list.  Sampling is bit-identical to the
    historical ``UniformClientSampler.sample`` path, so every existing
    experiment and trace is unchanged.
:class:`LazyPopulation`
    A population defined by a size and a seeded factory.  Only the
    sampled participants are constructed each round (Floyd's O(k)
    id sampling — see ``UniformClientSampler.sample_ids``) and released
    afterwards, so server memory scales with *participants per round*,
    never with the population.  The factory must be deterministic per id
    (same ``client_id`` → same client) and must produce non-empty
    clients — the lazy path cannot pre-filter eligibility without
    materializing everyone.

Statefulness caveat: cross-round per-client state (``client.scratch``)
survives only while the execution engine keeps the client in its bounded
resident set.  When an LRU-evicted (or never-retained) lazy client is
re-sampled, the factory rebuilds it pristine — the documented trade for
constant server memory.  Methods that depend on scratch persistence
(PARDON's style cache) should size ``max_resident`` to cover their
working set, or use a :class:`ListPopulation`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.fl.client import Client
from repro.fl.sampling import UniformClientSampler

__all__ = [
    "ClientFactory",
    "ClientPopulation",
    "ListPopulation",
    "LazyPopulation",
    "as_population",
]

#: Builds the client with the given id, deterministically.
ClientFactory = Callable[[int], Client]


class ClientPopulation:
    """A universe of federated clients a sampler can draw from."""

    def __len__(self) -> int:
        raise NotImplementedError

    def sample(
        self, sampler: UniformClientSampler, rng: np.random.Generator
    ) -> list[Client]:
        """Construct (or look up) this round's participants."""
        raise NotImplementedError

    def release(self, participants: list[Client]) -> None:
        """Drop this population's own references to a finished round's
        participants (lazy populations only — list populations own their
        clients for the run's lifetime)."""


class ListPopulation(ClientPopulation):
    """The historical in-memory client list, O(population) resident."""

    def __init__(self, clients: Sequence[Client]) -> None:
        self.clients = list(clients)

    def __len__(self) -> int:
        return len(self.clients)

    def sample(
        self, sampler: UniformClientSampler, rng: np.random.Generator
    ) -> list[Client]:
        # Delegate to the sampler's historical list path (eligibility
        # filter + rng.choice) so existing traces stay bit-identical.
        return sampler.sample(self.clients, rng)


class LazyPopulation(ClientPopulation):
    """``size`` clients that exist only while sampled.

    ``factory(client_id)`` is called once per sampled id per round; the
    constructed participants are handed to the round and released after
    it, so the server never holds more than O(participants) clients (plus
    whatever bounded resident set the engine keeps for delta encoding and
    crash recovery).
    """

    def __init__(self, size: int, factory: ClientFactory) -> None:
        if size < 1:
            raise ValueError(f"population size must be >= 1, got {size}")
        self.size = int(size)
        self.factory = factory

    def __len__(self) -> int:
        return self.size

    def sample(
        self, sampler: UniformClientSampler, rng: np.random.Generator
    ) -> list[Client]:
        participants = []
        for client_id in sampler.sample_ids(self.size, rng):
            client = self.factory(client_id)
            if client.client_id != client_id:
                raise ValueError(
                    f"client factory returned id {client.client_id} for "
                    f"requested id {client_id}"
                )
            if client.num_samples <= 0:
                raise ValueError(
                    f"client factory produced an empty client {client_id}; "
                    f"lazy populations require every client to have data"
                )
            participants.append(client)
        return participants


def as_population(clients: "Sequence[Client] | ClientPopulation") -> ClientPopulation:
    """Coerce the server's ``clients`` argument: explicit lists wrap into
    a :class:`ListPopulation`, populations pass through."""
    if isinstance(clients, ClientPopulation):
        return clients
    return ListPopulation(clients)
