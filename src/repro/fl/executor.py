"""Client-execution engines: how one round's local updates actually run.

The round loop in :mod:`repro.fl.server` is *what* federated learning does
(sample, broadcast, locally train, aggregate); this module is *how* the
local-training fan-out executes.  Two engines share one contract:

* :class:`SerialExecutor` — trains every participant in order on the
  server's workspace model.  Bit-identical to the historical behaviour and
  the default everywhere.
* :class:`ParallelExecutor` — fans participants out to a pool of worker
  processes with *pool-resident clients*: each client has a sticky home
  worker (``client_id % num_workers``), its dataset ships there once per
  pool lifetime, and afterwards only deltas travel (see the wire protocol
  below).  Wall-clock scales with workers instead of with the participant
  count (paper §IV-B-3's scalability axis).

Both return the same :class:`ClientUpdate` records in sampling order, so
aggregation — and therefore the whole run trace — is independent of the
engine.  Determinism holds because per-(client, round) RNG seeds are derived
from the :class:`repro.utils.rng.SeedTree` *before* dispatch and travel with
the task.

Wire protocol (parallel engine)
-------------------------------
Mirrors the per-round-traffic argument PARDON makes against cross-sharing
methods (§IV-B-3, Fig. 4b): clients keep their data, only deltas travel.

1. **Registration** (once per client per pool lifetime): the full
   :class:`Client` — dataset and scratch included — ships to its home
   worker, then both sides mark the scratch clean.
2. **Broadcast** (once per participating worker per round): the strategy
   blob and the global weights; workers cache the strategy decode keyed on
   the blob bytes.
3. **Task** (per participant per round): ``(client_id, round_index, seed)``
   plus a server→worker scratch delta, ``None`` unless server-side code
   touched the client's scratch between rounds.
4. **Delta upload** (per participant per round): the
   :class:`ClientUpdate`, whose ``scratch_delta`` carries only the scratch
   keys the local update wrote or removed — PARDON's style-transfer cache
   crosses the wire once, not every round.

Every hop is byte-counted in :class:`WireStats`; the server folds the
counters into :class:`repro.fl.timing.TimingReport` so benches can print
measured traffic next to the analytic :mod:`repro.fl.communication` model.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from concurrent.futures import Future, ProcessPoolExecutor as _ProcessPool
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

import multiprocessing
import numpy as np

from repro.fl.client import Client, ScratchDelta
from repro.nn.serialize import StateDict, decode_payload, encode_payload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.fl.strategy import Strategy
    from repro.nn.models import FeatureClassifierModel

__all__ = [
    "ClientUpdate",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "WireStats",
    "make_executor",
    "EXECUTOR_KINDS",
]

EXECUTOR_KINDS = ("serial", "parallel")


@dataclass
class ClientUpdate:
    """Everything one client sends back after a local update.

    This is the upload half of the federated wire protocol: it must stay
    serializable (checked by the parallel engine on every hop), and it is the
    *only* channel through which a local update may influence the server.
    Strategies therefore put method-specific uploads — FPL's class
    prototypes, for instance — into ``payload`` instead of mutating strategy
    state from inside :meth:`repro.fl.strategy.Strategy.local_update`.

    ``scratch_delta`` is the client's scratch changes made *by this update*
    (filled in by the executor, not by strategies): a snapshot taken at
    upload time, never an alias of the live scratch dict, under every
    engine.  Applying it to any scratch copy that was in sync before the
    update reproduces additions, overwrites, and deletions alike.
    ``train_seconds`` is the worker-measured wall clock of the update, so
    the timing report stays fair when updates overlap.
    """

    client_id: int
    num_samples: int
    state: StateDict
    loss: float
    payload: dict[str, object] = field(default_factory=dict)
    scratch_delta: ScratchDelta = field(default_factory=ScratchDelta)
    train_seconds: float = 0.0

    @classmethod
    def from_client(
        cls,
        client: Client,
        state: StateDict,
        loss: float,
        payload: dict[str, object] | None = None,
    ) -> "ClientUpdate":
        """The standard way a strategy wraps its local-update result."""
        return cls(
            client_id=client.client_id,
            num_samples=client.num_samples,
            state=state,
            loss=float(loss),
            payload=payload or {},
        )


@dataclass
class WireStats:
    """Cumulative bytes an engine moved across the process boundary.

    ``registration_bytes`` also counts the per-worker model template — the
    whole one-time cost of making a pool resident.  Serial execution has no
    wire, so its stats stay zero.
    """

    registration_bytes: int = 0
    broadcast_bytes: int = 0
    task_bytes: int = 0
    upload_bytes: int = 0

    @property
    def bytes_down(self) -> int:
        """Server → worker traffic (registration + broadcast + tasks)."""
        return self.registration_bytes + self.broadcast_bytes + self.task_bytes

    @property
    def bytes_up(self) -> int:
        """Worker → server traffic (delta uploads)."""
        return self.upload_bytes


def _timed_local_update(
    strategy: "Strategy",
    client: Client,
    model: "FeatureClassifierModel",
    round_index: int,
    seed: int,
) -> ClientUpdate:
    """Run one local update on ``model`` (already holding the broadcast
    weights) and stamp its wall clock + scratch delta.

    Collecting the delta here — on both engines — is what makes the
    ``scratch_delta`` contract engine-invariant: it is always a snapshot of
    the keys this update touched, detached from the live scratch dict.
    """
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    update = strategy.local_update(client, model, round_index, rng)
    update.train_seconds = time.perf_counter() - start
    update.scratch_delta = client.scratch.collect_delta()
    return update


class Executor:
    """Engine contract: run one round's sampled clients, in sampling order.

    ``participants`` and ``seeds`` are aligned; ``model`` is the server's
    architecture template (serial engines train on it directly, parallel
    engines clone it per worker).  Implementations must return one
    :class:`ClientUpdate` per participant, in the same order.
    """

    def run_round(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        global_state: StateDict,
        participants: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
    ) -> list[ClientUpdate]:
        raise NotImplementedError

    def wire_stats(self) -> WireStats:
        """Snapshot of the engine's cumulative wire traffic (zero when the
        engine moves nothing across a process boundary)."""
        return WireStats()

    def close(self) -> None:
        """Release any worker resources.  Idempotent; engines may be reused
        after closing (pools are rebuilt lazily)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Train participants one after another on the server's workspace model.

    The workspace pattern means zero copies: the global weights are loaded
    into ``model`` before each participant, so state never leaks between
    clients through the model object.
    """

    def run_round(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        global_state: StateDict,
        participants: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
    ) -> list[ClientUpdate]:
        updates = []
        for client, seed in zip(participants, seeds):
            model.load_state_dict(global_state)
            # Same sync point the parallel engine has before each task: any
            # server-side scratch edits are "shipped" to the training side —
            # a no-op in-process — so the upload delta carries only what the
            # update itself writes, identically on every engine.
            client.scratch.collect_delta()
            updates.append(
                _timed_local_update(strategy, client, model, round_index, seed)
            )
        return updates


# -- process-pool engine ------------------------------------------------------
#
# One single-process pool per worker slot gives deterministic task routing:
# submissions to a slot run FIFO in one long-lived process, so a client's
# home worker keeps its dataset, scratch, and the round's broadcast state as
# module globals without any cross-worker coordination.

_WORKER_MODEL: "FeatureClassifierModel | None" = None
_WORKER_STRATEGY_BLOB: bytes | None = None
_WORKER_STRATEGY: "Strategy | None" = None
_WORKER_CLIENTS: dict[int, Client] = {}
_WORKER_STATE: StateDict | None = None
_WORKER_ROUND: int | None = None


def _worker_init(model_blob: bytes) -> None:
    global _WORKER_MODEL, _WORKER_STATE, _WORKER_ROUND
    _WORKER_MODEL = decode_payload(model_blob)
    _WORKER_CLIENTS.clear()  # fork may inherit a sibling pool's module state
    _WORKER_STATE = None
    _WORKER_ROUND = None


def _worker_register(clients_blob: bytes) -> int:
    """Make the shipped clients resident; replaces same-id residents."""
    clients: list[Client] = decode_payload(clients_blob)
    for client in clients:
        client.scratch.mark_clean()  # registration is the sync point
        _WORKER_CLIENTS[client.client_id] = client
    return len(clients)


def _worker_strategy(strategy_blob: bytes) -> "Strategy":
    global _WORKER_STRATEGY_BLOB, _WORKER_STRATEGY
    if strategy_blob != _WORKER_STRATEGY_BLOB:
        _WORKER_STRATEGY = decode_payload(strategy_blob)
        _WORKER_STRATEGY_BLOB = strategy_blob
    return _WORKER_STRATEGY


def _worker_broadcast(
    strategy_blob: bytes, state_blob: bytes, round_index: int
) -> None:
    """Install one round's strategy + global weights for this worker."""
    global _WORKER_STATE, _WORKER_ROUND
    _worker_strategy(strategy_blob)
    _WORKER_STATE = decode_payload(state_blob)
    _WORKER_ROUND = round_index


def _run_resident_task(task: tuple[int, int, int, bytes | None]) -> bytes:
    client_id, round_index, seed, scratch_sync = task
    if _WORKER_MODEL is None or _WORKER_STRATEGY is None:  # pragma: no cover
        raise RuntimeError("worker received a task before init/broadcast")
    if _WORKER_STATE is None or _WORKER_ROUND != round_index:  # pragma: no cover
        raise RuntimeError(
            f"task for round {round_index} arrived without its broadcast "
            f"(worker is at round {_WORKER_ROUND})"
        )
    client = _WORKER_CLIENTS.get(client_id)
    if client is None:  # pragma: no cover - protocol violation
        raise RuntimeError(f"client {client_id} is not resident on this worker")
    if scratch_sync is not None:
        client.scratch.apply_delta(decode_payload(scratch_sync))
    _WORKER_MODEL.load_state_dict(_WORKER_STATE)
    update = _timed_local_update(
        _WORKER_STRATEGY, client, _WORKER_MODEL, round_index, seed
    )
    return encode_payload(update)


def _default_workers() -> int:
    return max(2, min(4, os.cpu_count() or 2))


def _default_start_method() -> str:
    # fork is cheapest and inherits the import state, but it is only
    # reliably safe on Linux (macOS system frameworks may abort or deadlock
    # in forked children — the reason CPython switched that platform's
    # default to spawn).  Everywhere else, trust the platform default.
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method()


class ParallelExecutor(Executor):
    """Fan sampled clients out to sticky worker processes.

    Parameters
    ----------
    num_workers:
        Pool size.  Defaults to ``min(4, cpu_count)`` (at least 2 — a single
        worker is strictly worse than :class:`SerialExecutor`).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it.

    Each worker slot is one long-lived process (a single-worker
    :class:`~concurrent.futures.ProcessPoolExecutor`), and every client is
    pinned to slot ``client_id % num_workers``.  A client's dataset and
    scratch ship to its home worker **once**, at first participation; each
    round then sends one ``(strategy, weights)`` broadcast per participating
    worker and a constant-size task per participant, and each upload carries
    only the scratch keys the update changed (see the module docstring for
    the full wire protocol).  Results come back in sampling order and the
    uploaded deltas are applied to the server-side clients, so caches built
    inside a worker (e.g. PARDON's style-transferred images) survive across
    rounds exactly as they do serially.

    The pool is created lazily on the first round and rebuilt only when a
    different model *architecture* shows up, so one executor (and its warm
    pool + resident clients) serves consecutive runs — e.g. every split of a
    LODO sweep.  Residency is keyed on client *identity*: a run that builds
    fresh :class:`Client` objects (even with the same ids) re-registers
    them, so stale datasets or scratch can never leak between runs.
    """

    def __init__(
        self, num_workers: int | None = None, start_method: str | None = None
    ) -> None:
        if num_workers is not None and num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers or _default_workers()
        self.start_method = start_method or _default_start_method()
        self.wire = WireStats()
        self._pools: list[_ProcessPool] | None = None
        self._pool_architecture: tuple | None = None
        # client_id -> the exact server-side object resident on its home
        # worker.  Strong references on purpose: identity (``is``) decides
        # re-registration, and a dead object's id must not be recycled into
        # a false "already resident".
        self._resident: dict[int, Client] = {}

    @staticmethod
    def _architecture_of(model: "FeatureClassifierModel") -> tuple:
        """Structural signature deciding whether the worker template still
        fits.

        Covers everything ``load_state_dict`` validates — parameter *and*
        buffer names/shapes — plus each module's class and public scalar
        hyperparameters (stride, padding, ...), which change forward
        semantics without changing any tensor shape.  ``training`` and
        underscore-prefixed attributes are excluded: they vary at runtime
        and would only force needless pool rebuilds.
        """
        structure = tuple(
            (
                type(module).__name__,
                tuple(
                    sorted(
                        (key, value)
                        for key, value in vars(module).items()
                        if key != "training"
                        and not key.startswith("_")
                        and isinstance(value, (bool, int, float, str, tuple))
                    )
                ),
            )
            for module in model.modules()
        )
        return (
            structure,
            tuple((name, param.shape) for name, param in model.named_parameters()),
            tuple((name, buf.shape) for name, buf in model.named_buffers()),
        )

    def wire_stats(self) -> WireStats:
        return replace(self.wire)

    def _home(self, client_id: int) -> int:
        """Deterministic sticky affinity: a client always lands on the same
        worker slot, independent of sampling order or round."""
        return client_id % self.num_workers

    def _ensure_pools(self, model: "FeatureClassifierModel") -> list[_ProcessPool]:
        architecture = self._architecture_of(model)
        if self._pools is not None and self._pool_architecture != architecture:
            self.close()
        if self._pools is None:
            model_blob = encode_payload(model)
            context = multiprocessing.get_context(self.start_method)
            self._pools = [
                _ProcessPool(
                    max_workers=1,
                    mp_context=context,
                    initializer=_worker_init,
                    initargs=(model_blob,),
                )
                for _ in range(self.num_workers)
            ]
            self._pool_architecture = architecture
            self.wire.registration_bytes += len(model_blob) * self.num_workers
        return self._pools

    def _register_new_participants(
        self, pools: list[_ProcessPool], participants: Sequence[Client]
    ) -> None:
        """Ship not-yet-resident participants to their home workers, grouped
        so each worker receives at most one registration blob per round."""
        newcomers: dict[int, list[Client]] = {}
        for client in participants:
            if self._resident.get(client.client_id) is not client:
                newcomers.setdefault(self._home(client.client_id), []).append(client)
        if not newcomers:
            return
        futures: list[Future] = []
        for home, clients in sorted(newcomers.items()):
            blob = encode_payload(clients)
            self.wire.registration_bytes += len(blob)
            futures.append(pools[home].submit(_worker_register, blob))
            for client in clients:
                # Mirror the worker-side sync point: from here on, only
                # deltas travel in either direction.
                client.scratch.mark_clean()
                self._resident[client.client_id] = client
        for future in futures:
            future.result()  # surface registration errors before any task

    def run_round(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        global_state: StateDict,
        participants: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
    ) -> list[ClientUpdate]:
        pools = self._ensure_pools(model)
        self._register_new_participants(pools, participants)

        # One broadcast per participating worker, not per task.
        strategy_blob = encode_payload(strategy)
        state_blob = encode_payload(global_state)
        homes = {self._home(client.client_id) for client in participants}
        broadcast_futures = []
        for home in sorted(homes):
            self.wire.broadcast_bytes += len(strategy_blob) + len(state_blob)
            broadcast_futures.append(
                pools[home].submit(
                    _worker_broadcast, strategy_blob, state_blob, round_index
                )
            )
        for future in broadcast_futures:
            future.result()

        # Constant-size tasks; the scratch sync blob is None unless
        # server-side code touched the client's scratch since the last sync.
        task_futures: list[Future] = []
        for client, seed in zip(participants, seeds):
            server_delta = client.scratch.collect_delta()
            sync_blob = encode_payload(server_delta) if server_delta else None
            task = (client.client_id, round_index, seed, sync_blob)
            # Count the fixed fields exactly but never re-pickle the sync
            # blob (it can be dataset-scale); its pickle framing is noise.
            self.wire.task_bytes += len(
                pickle.dumps(
                    (client.client_id, round_index, seed, None),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            ) + (len(sync_blob) if sync_blob is not None else 0)
            task_futures.append(
                pools[self._home(client.client_id)].submit(_run_resident_task, task)
            )

        updates: list[ClientUpdate] = []
        for client, future in zip(participants, task_futures):
            blob = future.result()
            self.wire.upload_bytes += len(blob)
            update: ClientUpdate = decode_payload(blob)
            # Sync the server-side copy; applying (rather than recording)
            # keeps its dirty set empty, so nothing bounces back next round.
            client.scratch.apply_delta(update.scratch_delta)
            updates.append(update)
        return updates

    def close(self) -> None:
        if self._pools is not None:
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._pools = None
            self._pool_architecture = None
        self._resident.clear()


def make_executor(kind: str = "serial", workers: int | None = None) -> Executor:
    """Build an engine from the CLI/bench knobs (``--executor``/``--workers``).

    A ``workers`` count with ``kind="serial"`` is rejected rather than
    silently ignored — it almost always means the caller wanted parallel
    execution and forgot to say so.
    """
    if kind == "serial":
        if workers is not None:
            raise ValueError(
                "workers only applies to the parallel executor; "
                "pass kind='parallel' or drop the workers count"
            )
        return SerialExecutor()
    if kind == "parallel":
        return ParallelExecutor(num_workers=workers)
    raise ValueError(
        f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
    )
