"""Client-execution engines: how one round's local updates actually run.

The round loop in :mod:`repro.fl.server` is *what* federated learning does
(sample, broadcast, locally train, aggregate); this module is *how* the
local-training fan-out executes.  Two engines share one contract:

* :class:`SerialExecutor` — trains every participant in order on the
  server's workspace model.  Bit-identical to the historical behaviour and
  the default everywhere.
* :class:`ParallelExecutor` — fans participants out to a process pool.
  Each worker holds a model clone (shipped once at pool start-up through
  :func:`repro.nn.serialize.encode_payload`) and rebuilds the broadcast
  weights per task, so wall-clock scales with workers instead of with the
  participant count (paper §IV-B-3's scalability axis).

Both return the same :class:`ClientUpdate` records in sampling order, so
aggregation — and therefore the whole run trace — is independent of the
engine.  Determinism holds because per-(client, round) RNG seeds are derived
from the :class:`repro.utils.rng.SeedTree` *before* dispatch and travel with
the task.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import multiprocessing
import numpy as np

from repro.fl.client import Client
from repro.nn.serialize import StateDict, decode_payload, encode_payload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.fl.strategy import Strategy
    from repro.nn.models import FeatureClassifierModel

__all__ = [
    "ClientUpdate",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "EXECUTOR_KINDS",
]

EXECUTOR_KINDS = ("serial", "parallel")


@dataclass
class ClientUpdate:
    """Everything one client sends back after a local update.

    This is the upload half of the federated wire protocol: it must stay
    serializable (checked by the parallel engine on every hop), and it is the
    *only* channel through which a local update may influence the server.
    Strategies therefore put method-specific uploads — FPL's class
    prototypes, for instance — into ``payload`` instead of mutating strategy
    state from inside :meth:`repro.fl.strategy.Strategy.local_update`.

    ``scratch`` is a snapshot of the client's whole scratch dict after the
    update (filled in by the executor, not by strategies) and *replaces* the
    server-side copy, so additions and deletions both persist; and
    ``train_seconds`` is the worker-measured wall clock of the update, so the
    timing report stays fair when updates overlap.
    """

    client_id: int
    num_samples: int
    state: StateDict
    loss: float
    payload: dict[str, object] = field(default_factory=dict)
    scratch: dict = field(default_factory=dict)
    train_seconds: float = 0.0

    @classmethod
    def from_client(
        cls,
        client: Client,
        state: StateDict,
        loss: float,
        payload: dict[str, object] | None = None,
    ) -> "ClientUpdate":
        """The standard way a strategy wraps its local-update result."""
        return cls(
            client_id=client.client_id,
            num_samples=client.num_samples,
            state=state,
            loss=float(loss),
            payload=payload or {},
        )


def _timed_local_update(
    strategy: "Strategy",
    client: Client,
    model: "FeatureClassifierModel",
    round_index: int,
    seed: int,
) -> ClientUpdate:
    """Run one local update on ``model`` (already holding the broadcast
    weights) and stamp its wall clock + scratch snapshot."""
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    update = strategy.local_update(client, model, round_index, rng)
    update.train_seconds = time.perf_counter() - start
    update.scratch = client.scratch
    return update


class Executor:
    """Engine contract: run one round's sampled clients, in sampling order.

    ``participants`` and ``seeds`` are aligned; ``model`` is the server's
    architecture template (serial engines train on it directly, parallel
    engines clone it per worker).  Implementations must return one
    :class:`ClientUpdate` per participant, in the same order.
    """

    def run_round(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        global_state: StateDict,
        participants: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
    ) -> list[ClientUpdate]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources.  Idempotent; engines may be reused
        after closing (pools are rebuilt lazily)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Train participants one after another on the server's workspace model.

    The workspace pattern means zero copies: the global weights are loaded
    into ``model`` before each participant, so state never leaks between
    clients through the model object.
    """

    def run_round(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        global_state: StateDict,
        participants: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
    ) -> list[ClientUpdate]:
        updates = []
        for client, seed in zip(participants, seeds):
            model.load_state_dict(global_state)
            updates.append(
                _timed_local_update(strategy, client, model, round_index, seed)
            )
        return updates


# -- process-pool engine ------------------------------------------------------
#
# Workers keep a module-global model clone so the architecture ships once per
# worker instead of once per task; the broadcast weights and the strategy
# travel with each task, mirroring a real deployment's download link.  The
# strategy blob is identical for every task of a round, so each worker
# caches its decode keyed on the bytes (the contract already forbids
# strategies mutating themselves inside local_update, so reuse is safe).

_WORKER_MODEL: "FeatureClassifierModel | None" = None
_WORKER_STRATEGY_BLOB: bytes | None = None
_WORKER_STRATEGY: "Strategy | None" = None


def _worker_init(model_blob: bytes) -> None:
    global _WORKER_MODEL
    _WORKER_MODEL = decode_payload(model_blob)


def _worker_strategy(strategy_blob: bytes) -> "Strategy":
    global _WORKER_STRATEGY_BLOB, _WORKER_STRATEGY
    if strategy_blob != _WORKER_STRATEGY_BLOB:
        _WORKER_STRATEGY = decode_payload(strategy_blob)
        _WORKER_STRATEGY_BLOB = strategy_blob
    return _WORKER_STRATEGY


def _run_client_task(
    task: tuple[bytes, StateDict, Client, int, int],
) -> ClientUpdate:
    strategy_blob, global_state, client, round_index, seed = task
    if _WORKER_MODEL is None:  # pragma: no cover - defensive
        raise RuntimeError("worker initialized without a model template")
    strategy = _worker_strategy(strategy_blob)
    _WORKER_MODEL.load_state_dict(global_state)
    return _timed_local_update(
        strategy, client, _WORKER_MODEL, round_index, seed
    )


def _default_workers() -> int:
    return max(2, min(4, os.cpu_count() or 2))


def _default_start_method() -> str:
    # fork is cheapest and inherits the import state, but it is only
    # reliably safe on Linux (macOS system frameworks may abort or deadlock
    # in forked children — the reason CPython switched that platform's
    # default to spawn).  Everywhere else, trust the platform default.
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method()


class ParallelExecutor(Executor):
    """Fan sampled clients out to a :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    num_workers:
        Pool size.  Defaults to ``min(4, cpu_count)`` (at least 2 — a single
        worker is strictly worse than :class:`SerialExecutor`).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it.

    The pool is created lazily on the first round and rebuilt only when a
    different model *architecture* shows up, so one executor (and its warm
    pool) serves consecutive runs — e.g. every split of a LODO sweep —
    without re-forking; weights are irrelevant to the template because every
    task loads the broadcast state.
    Results come back in sampling order and each participant's ``scratch``
    replaces the server-side copy, so caches built inside a worker (e.g.
    PARDON's style-transferred images) survive across rounds exactly as they
    do serially.

    Known trade-off: each task ships its client (dataset included) to the
    worker and the full scratch snapshot back, mirroring a real broadcast
    but paying serialization proportional to data size every round.  For
    dataset-scale scratch caches that overhead can eat into the speedup;
    making clients pool-resident (ship once per worker, send scratch deltas)
    is the next optimization if profiles warrant it.
    """

    def __init__(
        self, num_workers: int | None = None, start_method: str | None = None
    ) -> None:
        if num_workers is not None and num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers or _default_workers()
        self.start_method = start_method or _default_start_method()
        self._pool: _ProcessPool | None = None
        self._pool_architecture: tuple | None = None

    @staticmethod
    def _architecture_of(model: "FeatureClassifierModel") -> tuple:
        """Structural signature deciding whether the worker template still
        fits.

        Covers everything ``load_state_dict`` validates — parameter *and*
        buffer names/shapes — plus each module's class and public scalar
        hyperparameters (stride, padding, ...), which change forward
        semantics without changing any tensor shape.  ``training`` and
        underscore-prefixed attributes are excluded: they vary at runtime
        and would only force needless pool rebuilds.
        """
        structure = tuple(
            (
                type(module).__name__,
                tuple(
                    sorted(
                        (key, value)
                        for key, value in vars(module).items()
                        if key != "training"
                        and not key.startswith("_")
                        and isinstance(value, (bool, int, float, str, tuple))
                    )
                ),
            )
            for module in model.modules()
        )
        return (
            structure,
            tuple((name, param.shape) for name, param in model.named_parameters()),
            tuple((name, buf.shape) for name, buf in model.named_buffers()),
        )

    def _ensure_pool(self, model: "FeatureClassifierModel") -> _ProcessPool:
        architecture = self._architecture_of(model)
        if self._pool is not None and self._pool_architecture != architecture:
            self.close()
        if self._pool is None:
            self._pool = _ProcessPool(
                max_workers=self.num_workers,
                mp_context=multiprocessing.get_context(self.start_method),
                initializer=_worker_init,
                initargs=(encode_payload(model),),
            )
            self._pool_architecture = architecture
        return self._pool

    def run_round(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        global_state: StateDict,
        participants: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
    ) -> list[ClientUpdate]:
        pool = self._ensure_pool(model)
        strategy_blob = encode_payload(strategy)
        tasks = [
            (strategy_blob, global_state, client, round_index, seed)
            for client, seed in zip(participants, seeds)
        ]
        updates = list(pool.map(_run_client_task, tasks))
        # Persist worker-side caches on the server's client objects so the
        # next round (possibly on a different worker) sees them.  The upload
        # carries the client's *whole* scratch dict, so replacing (not
        # merging) keeps worker-side deletions engine-invariant too.
        for client, update in zip(participants, updates):
            if client.scratch is not update.scratch:
                client.scratch.clear()
                client.scratch.update(update.scratch)
        return updates

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_architecture = None


def make_executor(kind: str = "serial", workers: int | None = None) -> Executor:
    """Build an engine from the CLI/bench knobs (``--executor``/``--workers``).

    A ``workers`` count with ``kind="serial"`` is rejected rather than
    silently ignored — it almost always means the caller wanted parallel
    execution and forgot to say so.
    """
    if kind == "serial":
        if workers is not None:
            raise ValueError(
                "workers only applies to the parallel executor; "
                "pass kind='parallel' or drop the workers count"
            )
        return SerialExecutor()
    if kind == "parallel":
        return ParallelExecutor(num_workers=workers)
    raise ValueError(
        f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
    )
