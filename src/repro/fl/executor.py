"""Client-execution engines: how one round's local updates actually run.

The round loop in :mod:`repro.fl.server` is *what* federated learning does
(sample, broadcast, locally train, aggregate); this module is *how* the
local-training fan-out executes.  Two engines share one contract:

* :class:`SerialExecutor` — trains every participant in order on the
  server's workspace model.  Bit-identical to the historical behaviour and
  the default everywhere.
* :class:`ParallelExecutor` — fans participants out to a pool of worker
  processes with *pool-resident clients*: each client has a sticky home
  worker (``client_id % num_workers``), its dataset ships there once per
  pool lifetime, and afterwards only deltas travel (see the wire protocol
  below).  Wall-clock scales with workers instead of with the participant
  count (paper §IV-B-3's scalability axis).

Both return the same :class:`ClientUpdate` records in sampling order, so
aggregation — and therefore the whole run trace — is independent of the
engine.  Determinism holds because per-(client, round) RNG seeds are derived
from the :class:`repro.utils.rng.SeedTree` *before* dispatch and travel with
the task.

Wire protocol (parallel engine)
-------------------------------
Mirrors the per-round-traffic argument PARDON makes against cross-sharing
methods (§IV-B-3, Fig. 4b): clients keep their data, only deltas travel.

1. **Registration** (once per client per pool lifetime): the full
   :class:`Client` — dataset and scratch included — ships to its home
   worker, then both sides mark the scratch clean.  The codec (below) is
   negotiated here: its spec travels with the worker init, so both
   endpoints build the same pipeline before any state crosses.
2. **Broadcast** (once per participating worker per round): the strategy
   blob and the codec-encoded global weights; workers cache the strategy
   decode keyed on the blob bytes.
3. **Task** (per co-resident group per round):
   ``(client_ids, round_index, seeds, scratch_syncs, fault)`` — each
   scratch sync is ``None`` unless server-side code touched that client's
   scratch between rounds.  Under the ``loop`` compute backend every task
   is a singleton group; a batched backend (``ensemble``) packs a home
   worker's fault-free participants into one task, while faulted clients
   always ride alone.
4. **Delta upload** (per group per round): the list of
   :class:`ClientUpdate` records in group order, each ``state``
   codec-encoded and each ``scratch_delta`` carrying only the scratch keys
   the local update wrote or removed — PARDON's style-transfer cache
   crosses the wire once, not every round.

Weight payloads in both directions additionally pass through a pluggable
**codec** (:mod:`repro.fl.codec`): ``identity`` ships raw state dicts
(the historical wire), ``delta`` ships lossless compressed diffs against
reference states both endpoints hold (workers keep the previous broadcast;
the server keeps each client's last acknowledged upload), and ``fp16`` /
``qint8`` quantize.  Stateful codec references reset whenever their
endpoint resets — pool rebuilds clear every reference, and re-registering
a client clears that client's upload chain on both sides.

*How* the encoded broadcast blob reaches the workers is a pluggable
**transport** (:mod:`repro.fl.transport`), negotiated at pool build like
the codec: ``pipe`` pickles one full copy into each participating worker's
pipe, ``shm`` writes the blob once into a shared-memory segment and ships
workers only a tiny handle.  Broadcast decode is *overlapped* on every
transport: the worker's broadcast handler just records the handle, and the
decode runs lazily at the round's first tensor touch — inside the local
phase, concurrent with other workers' training and the server's dispatch —
with its wall clock stamped on the first task's
:attr:`ClientUpdate.decode_seconds` so :class:`repro.fl.timing.PhaseTimer`
can report the overlap window.

*How the clients that landed in one place actually train* is a pluggable
**compute backend** (:mod:`repro.fl.compute`), negotiated at pool build
like the codec and the transport: ``loop`` runs the historical per-client
loop, ``ensemble`` stacks each co-resident group along a leading axis and
trains it as fused batched matmuls (:mod:`repro.nn.ensemble`), and
``auto`` (the default) resolves to ``ensemble`` whenever every module of
the model converts.  Per-client results are bitwise independent of the
grouping, so the trace stays engine- and backend-invariant.

Both engines also host the **fault-tolerance layer**
(:mod:`repro.fl.faults`): a deterministic, seeded fault plan injects
client dropouts, worker crashes, stragglers, and corrupted uploads; a
round ``deadline`` lets the parallel engine close a round with whatever
updates arrived (survivors aggregate, stragglers are absorbed into the
next round, crashed pool slots are rebuilt in place), and the engines
publish each round's casualties in a
:class:`repro.fl.faults.RoundFaultReport` so the server can record them.

Every hop is byte-counted *post-codec* in :class:`WireStats` — both as the
bytes each endpoint actually saw (``bytes_down``) and deduplicated across
the fan-out (``unique_bytes_down``: the broadcast blob counts once per
round, not once per worker); the server folds the counters into
:class:`repro.fl.timing.TimingReport` so benches can print measured
traffic next to the analytic :mod:`repro.fl.communication` model.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor as _ProcessPool,
    TimeoutError as _FuturesTimeout,
    wait as _futures_wait,
)
from concurrent.futures.process import BrokenProcessPool as _BrokenPool
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

import multiprocessing
import numpy as np

from repro.fl.client import Client, ScratchDelta
from repro.fl.codec import Codec, Payload, make_codec
from repro.fl.compute import ComputeBackend, make_compute, resolve_compute
from repro.fl.faults import (
    AdaptiveDeadline,
    FaultEvent,
    FaultPlan,
    FixedDeadline,
    RoundFaultReport,
    RoundTimeoutError,
    byzantine_state,
    make_deadline_policy,
    make_fault_plan,
    poison_state,
    state_is_corrupt,
)
from repro.fl.transport import Transport, make_transport, resolve_transport
from repro.nn.serialize import StateDict, decode_payload, encode_payload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.fl.aggregate import AggregationStream
    from repro.fl.strategy import Strategy
    from repro.nn.models import FeatureClassifierModel

__all__ = [
    "ClientUpdate",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "WorkerRuntime",
    "WireStats",
    "make_executor",
    "resolve_executor",
    "EXECUTOR_KINDS",
    "AUTO_CROSSOVER_TASKS",
]

EXECUTOR_KINDS = ("auto", "serial", "parallel")

#: ``executor="auto"`` crossover: per-round local-update tasks
#: (participants x local epochs) at or above which the process pool's
#: dispatch overhead amortizes and the parallel engine wins wall-clock.
#: Below it (the ROADMAP's "tiny local epochs at bench scale"), serial is
#: faster because pool spin-up and per-round broadcasts dominate.
#:
#: Re-derived after the serial engine's ``auto`` compute started resolving
#: to the ensemble backend.  Methodology: the break-even point solves
#: ``N * t_serial = N * t_serial / W + overhead(N)``, so it scales
#: linearly with serial per-task throughput while the pool's per-round
#: overhead (broadcast fan-out, per-task pickling) is backend-independent.
#: Warm serial rounds on the bench workload (16x16 synthetic-PACS CNN,
#: batch 32 — ``benchmarks/bench_executor_scaling.py``) measure ensemble
#: at x1.2 over loop across 16-64 participants (the batched path saves
#: per-client dispatch, but this regime is BLAS-bound; the x3+ wins of
#: ``BENCH_compute.json`` live at tiny per-client shards the pool does
#: not serve anyway).  The old loop-derived crossover of 16 therefore
#: moves to 16 x 1.2 ~= 20.  Single-core hosts short-circuit to serial
#: before this constant is consulted.
AUTO_CROSSOVER_TASKS = 20


@dataclass
class ClientUpdate:
    """Everything one client sends back after a local update.

    This is the upload half of the federated wire protocol: it must stay
    serializable (checked by the parallel engine on every hop), and it is the
    *only* channel through which a local update may influence the server.
    Strategies therefore put method-specific uploads — FPL's class
    prototypes, for instance — into ``payload`` instead of mutating strategy
    state from inside :meth:`repro.fl.strategy.Strategy.local_update`.

    ``scratch_delta`` is the client's scratch changes made *by this update*
    (filled in by the executor, not by strategies): a snapshot taken at
    upload time, never an alias of the live scratch dict, under every
    engine.  Applying it to any scratch copy that was in sync before the
    update reproduces additions, overwrites, and deletions alike.
    ``train_seconds`` is the worker-measured wall clock of the update, so
    the timing report stays fair when updates overlap.  ``decode_seconds``
    is the worker-measured wall clock of the lazy broadcast decode, nonzero
    only on the task that performed it (the worker's first task of the
    round) — under the parallel engine this work overlaps other workers'
    training, and :class:`repro.fl.timing.PhaseTimer` accumulates it as the
    round's overlap window.  ``straggler_seconds`` is the injected
    fault-plan slowdown this update really slept through (zero outside
    chaos runs — see :mod:`repro.fl.faults`), kept out of
    ``train_seconds`` so per-update compute stays honest.  It is a
    per-update *diagnostic* only: the run-level
    ``TimingReport.straggler_seconds`` is derived from the plan instead,
    so cooperatively skipped stragglers (which never produce an update)
    count too.

    On the parallel engine's upload hop, ``state`` transiently holds the
    codec :class:`repro.fl.codec.Payload` instead of a state dict; the
    server decodes it before anything else sees the update.
    ``__wire_oob__`` opts the record into the serializer's protocol-5
    out-of-band framing, so every array it carries — wire tensors, FPL's
    prototype payload, scratch-delta values — decodes as a zero-copy view.
    """

    __wire_oob__ = True

    client_id: int
    num_samples: int
    state: StateDict
    loss: float
    payload: dict[str, object] = field(default_factory=dict)
    scratch_delta: ScratchDelta = field(default_factory=ScratchDelta)
    train_seconds: float = 0.0
    decode_seconds: float = 0.0
    straggler_seconds: float = 0.0

    @classmethod
    def from_client(
        cls,
        client: Client,
        state: StateDict,
        loss: float,
        payload: dict[str, object] | None = None,
    ) -> "ClientUpdate":
        """The standard way a strategy wraps its local-update result."""
        return cls(
            client_id=client.client_id,
            num_samples=client.num_samples,
            state=state,
            loss=float(loss),
            payload=payload or {},
        )


@dataclass
class WireStats:
    """Cumulative bytes an engine moved across the process boundary.

    ``registration_bytes`` also counts the per-worker model template — the
    whole one-time cost of making a pool resident.  Serial execution has no
    wire, so its stats stay zero.

    The ``unique_*`` counters deduplicate the fan-out: each distinct
    payload counts once regardless of how many workers received it — the
    model template once (not once per worker), each round's strategy blob
    and each distinct encoded broadcast blob once (not once per
    participating worker).  ``bytes_down`` is what the endpoints actually
    saw and therefore transport-dependent (the pipe transport really does
    copy the broadcast per worker); ``unique_bytes_down`` is the
    information-content floor both transports share, and the gap between
    the two is exactly what the shm transport's single-copy broadcast
    eliminates.
    """

    registration_bytes: int = 0
    broadcast_bytes: int = 0
    task_bytes: int = 0
    upload_bytes: int = 0
    unique_registration_bytes: int = 0
    unique_broadcast_bytes: int = 0

    @property
    def bytes_down(self) -> int:
        """Server → worker traffic (registration + broadcast + tasks)."""
        return self.registration_bytes + self.broadcast_bytes + self.task_bytes

    @property
    def unique_bytes_down(self) -> int:
        """Downlink traffic with fan-out duplicates counted once (each
        distinct broadcast blob once per round, the model template once)."""
        return (
            self.unique_registration_bytes
            + self.unique_broadcast_bytes
            + self.task_bytes
        )

    @property
    def bytes_up(self) -> int:
        """Worker → server traffic (delta uploads)."""
        return self.upload_bytes


class Executor:
    """Engine contract: run one round's sampled clients, in sampling order.

    ``participants`` and ``seeds`` are aligned; ``model`` is the server's
    architecture template (serial engines train on it directly, parallel
    engines clone it per worker).  Implementations must return one
    :class:`ClientUpdate` per participant, in the same order, with decoded
    (post-codec) states.

    ``codec`` is the wire codec for weight payloads (a spec string or a
    built :class:`repro.fl.codec.Codec`).  Engines must keep the round
    trace *codec-invariant for lossless codecs* and *engine-invariant for
    every codec*: an in-process engine reproduces a lossy wire by
    round-tripping states through the codec, exactly as a worker would see
    them.

    ``faults`` injects a deterministic chaos schedule
    (:class:`repro.fl.faults.FaultPlan`, or its spec string) and
    ``deadline`` bounds each round's wall clock; both default to off.  An
    engine with faults or a deadline may return *fewer* updates than
    participants — the survivors, still in sampling order — and must
    publish what it dropped (and why) in :attr:`last_fault_report` so the
    server can reweight aggregation over the survivors and record the
    round's casualties.  The fault layer's observable effect (who survives
    each round) must stay engine-invariant: the chaos tests compare
    serial and parallel traces bit-for-bit under one plan.

    ``compute`` selects the compute backend (:mod:`repro.fl.compute`) that
    trains each co-resident client group — ``"auto"`` (default) resolves
    against the model at pool build, ``"loop"``/``"ensemble"``/``"strict"``
    force a backend.  Per-client numerics are bitwise independent of the
    backend and the grouping, so the choice is pure throughput.
    """

    #: The wire transport, for engines that have a wire (the serial engine
    #: keeps the ``None`` default — there is no process boundary to cross).
    transport: "Transport | None" = None

    #: Broadcast/train/upload overlap the most recent round achieved, in
    #: seconds: endpoint busy-time that ran concurrently with other remote
    #: work instead of serializing behind it.  Only pipelined multi-host
    #: engines (:class:`repro.fl.net.executor.RemoteExecutor`) report a
    #: nonzero value; the server folds it into the timing report.
    last_overlap_seconds: float = 0.0

    def __init__(
        self,
        codec: "str | Codec" = "identity",
        faults: "str | FaultPlan | None" = None,
        deadline: "float | str | FixedDeadline | AdaptiveDeadline | None" = None,
        compute: str = "auto",
        quorum: int | None = None,
    ) -> None:
        self.codec = make_codec(codec)
        #: The configured compute spec; ``auto`` until a model resolves it.
        self.compute = resolve_compute(compute)
        self.fault_plan = make_fault_plan(faults)
        #: The round-deadline policy (:mod:`repro.fl.faults`): ``None`` for
        #: no deadline, :class:`FixedDeadline` for the historical constant
        #: budget, :class:`AdaptiveDeadline` for percentile-of-recent-rounds.
        self.deadline_policy = make_deadline_policy(deadline)
        if quorum is not None and int(quorum) < 1:
            raise ValueError(f"quorum must be >= 1, got {quorum}")
        #: Early-close floor: the round closes at the first ``quorum``
        #: accepted uploads (``None`` = wait for everyone).
        self.quorum = None if quorum is None else int(quorum)
        #: The most recent round's fault outcome (who dropped and why,
        #: injected straggler seconds, rebuilt worker slots).  Always
        #: refreshed by run_round, even for fault-free rounds.
        self.last_fault_report: RoundFaultReport | None = None
        self._backend: ComputeBackend | None = None
        # Measured durations of recent completed rounds, feeding adaptive
        # deadline policies.  Bounded: no policy window reaches past this.
        self._round_durations: "deque[float]" = deque(maxlen=32)
        # round_index -> (accepted client ids, recorded drop map): when set,
        # run_round replays exactly that membership instead of running its
        # own round control.  See set_replay.
        self._replay: (
            "dict[int, tuple[tuple[int, ...], dict[int, str]]] | None"
        ) = None

    @property
    def deadline(self) -> float | None:
        """Back-compat view of :attr:`deadline_policy`: the fixed per-round
        seconds, or ``None`` (adaptive policies resolve per round)."""
        if isinstance(self.deadline_policy, FixedDeadline):
            return self.deadline_policy.seconds
        return None

    @property
    def records_accepted(self) -> bool:
        """Whether round membership depends on wall clock (quorum races,
        adaptive deadlines) or on a pinned replay — exactly the cases where
        the server must record ``RoundRecord.accepted`` for exact replay."""
        return (
            self.quorum is not None
            or self._replay is not None
            or (self.deadline_policy is not None and self.deadline_policy.adaptive)
        )

    def set_replay(self, history: object) -> None:
        """Pin future rounds to a recorded accepted-set per round.

        ``history`` is a :class:`repro.fl.history.RunHistory` (or any
        iterable of :class:`repro.fl.history.RoundRecord`) whose records
        carry :attr:`~repro.fl.history.RoundRecord.accepted` — i.e. they
        came from a quorum / adaptive-deadline run.  A replayed round
        dispatches exactly the recorded accepted clients (in sampling
        order), copies the recorded drop map verbatim, and applies no
        deadline or quorum logic of its own, so the trace is bit-identical
        to the recorded run on *any* engine — even though the original
        membership was decided by a wall-clock race.
        """
        records = getattr(history, "records", history)
        replay: "dict[int, tuple[tuple[int, ...], dict[int, str]]]" = {}
        for record in records:
            if record.accepted is None:
                raise ValueError(
                    f"round {record.round_index} has no recorded accepted "
                    f"set; only quorum/adaptive-deadline runs record one"
                )
            replay[record.round_index] = (
                tuple(record.accepted),
                dict(record.dropped),
            )
        self._replay = replay

    def clear_replay(self) -> None:
        """Return to live round control after :meth:`set_replay`."""
        self._replay = None

    def _current_deadline(self) -> float | None:
        """This round's wall-clock budget under the configured policy."""
        if self.deadline_policy is None:
            return None
        return self.deadline_policy.resolve(tuple(self._round_durations))

    def _observe_round_duration(self, seconds: float) -> None:
        """Feed a completed round's duration to adaptive deadline policies
        (fixed policies ignore history, so don't bother recording)."""
        if self.deadline_policy is not None and self.deadline_policy.adaptive:
            self._round_durations.append(float(seconds))

    def _replay_membership(
        self,
        participants: Sequence[Client],
        seeds: Sequence[int],
        round_index: int,
        report: RoundFaultReport,
    ) -> "tuple[list[tuple[Client, int]], dict[int, FaultEvent]] | None":
        """Resolve a pinned replay for this round, if any.

        Returns the dispatch pairs (the recorded accepted clients, in
        sampling order) and the fault events to re-inject into them —
        update-level faults only (straggler sleeps, byzantine payloads):
        membership faults (dropout, crash, deadline, quorum) are already
        baked into the recorded drop map, which is copied onto ``report``
        verbatim.  In particular the plan's crash victim is *not*
        re-picked — it would deterministically select a fresh victim from
        the narrowed accepted set.
        """
        if self._replay is None:
            return None
        entry = self._replay.get(round_index)
        if entry is None:
            raise ValueError(
                f"replay is set but has no entry for round {round_index}"
            )
        accepted_ids, recorded_dropped = entry
        report.dropped.update(recorded_dropped)
        accepted = set(accepted_ids)
        pairs = [
            (client, seed)
            for client, seed in zip(participants, seeds)
            if client.client_id in accepted
        ]
        injected: dict[int, FaultEvent] = {}
        if self.fault_plan is not None:
            for client, _ in pairs:
                event = self.fault_plan.fault_for(client.client_id, round_index)
                if event is not None and event.kind in (
                    "straggler", "hang", "corrupt", "byzantine"
                ):
                    injected[client.client_id] = event
                    if event.kind in ("straggler", "hang"):
                        report.straggler_seconds += event.delay_seconds
        return pairs, injected

    def run_round(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        global_state: StateDict,
        participants: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
        stream: "AggregationStream | None" = None,
    ) -> list[ClientUpdate]:
        """Run one round's local updates; with ``stream`` the engine folds
        each *accepted* upload into the online aggregation accumulator as
        membership resolves and frees its ``state`` — the returned updates
        then carry ``state=None`` and the caller finalizes the stream
        instead of re-reducing the batch.  ``stream.count`` always equals
        the number of returned updates, which is how
        :meth:`repro.fl.strategy.Strategy.aggregate` cross-checks that the
        engine and the stream saw the same round."""
        raise NotImplementedError

    def _compute_backend(self, model: "FeatureClassifierModel") -> ComputeBackend:
        """The round's compute backend, with ``auto`` resolved late against
        the actual model (mirrors how codec/transport negotiate at build).

        The built backend is kept across rounds so its internal caches (the
        ensemble backend memoizes stacked module clones per group size)
        survive the round loop — backends are stateless with respect to
        results, so reuse can never change a trace."""
        spec = resolve_compute(self.compute, model)
        if self._backend is None or self._backend.spec != spec:
            self._backend = make_compute(spec)
        return self._backend

    def wire_stats(self) -> WireStats:
        """Snapshot of the engine's cumulative wire traffic (zero when the
        engine moves nothing across a process boundary)."""
        return WireStats()

    def close(self) -> None:
        """Release any worker resources.  Idempotent; engines may be reused
        after closing (pools are rebuilt lazily)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Train participants one after another on the server's workspace model.

    The workspace pattern means zero copies: the global weights are loaded
    into ``model`` before each participant, so state never leaks between
    clients through the model object.

    There is no wire, so lossless codecs (identity, delta) are a strict
    no-op — states decode bit-exactly, and skipping the round-trip is what
    keeps this engine zero-copy.  Lossy codecs *are* round-tripped (one
    broadcast round-trip per round, one upload round-trip per update) so a
    quantized run traces identically here and on the parallel engine.

    Faults inject in-process: dropped-before-dispatch clients are simply
    skipped, survivor stragglers really sleep their injected delay, crash
    victims are skipped at the point the parallel engine's worker would
    die, and corrupted uploads are poisoned then rejected by the same
    validation the parallel server runs — so a faulty run's trace matches
    the parallel engines bit-for-bit.  A round ``deadline`` on this engine
    is *cooperative* (no preemption in-process): it only decides which
    injected stragglers/hangs are dropped up front.
    """

    def run_round(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        global_state: StateDict,
        participants: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
        stream: "AggregationStream | None" = None,
    ) -> list[ClientUpdate]:
        round_start = time.perf_counter()
        round_deadline = self._current_deadline()
        report = RoundFaultReport(round_index=round_index)
        replay = self._replay_membership(participants, seeds, round_index, report)
        # What a worker would train from: identical to global_state for
        # lossless codecs, the dequantized broadcast for lossy ones.
        wire_state = self.codec.roundtrip(global_state)
        # Fault triage first, then one backend call over the survivors: the
        # whole round is a single co-resident group in-process, which the
        # ensemble backend trains as one (or a few) fused stacks.  Slice
        # independence keeps each client's numerics identical to the
        # per-client loop, so this grouping is invisible in the trace.
        survivors: "list[tuple[Client, int, FaultEvent | None]]" = []
        if replay is not None:
            # Pinned membership: dispatch exactly the recorded accepted
            # clients, re-injecting only the update-level faults (sleeps,
            # byzantine payloads) that shape what they upload.
            for client, seed in replay[0]:
                fault = replay[1].get(client.client_id)
                client.scratch.collect_delta()
                if fault is not None and fault.kind in ("straggler", "hang"):
                    time.sleep(fault.delay_seconds)
                survivors.append((client, seed, fault))
        else:
            actions = (
                self.fault_plan.actions_for_round(
                    [client.client_id for client in participants],
                    round_index,
                    round_deadline,
                )
                if self.fault_plan is not None
                else None
            )
            if actions:
                report.straggler_seconds = actions.straggler_seconds
                report.dropped.update(actions.skipped)
            for client, seed in zip(participants, seeds):
                fault = None
                if actions is not None:
                    if client.client_id in actions.skipped:
                        continue
                    fault = actions.injected.get(client.client_id)
                if fault is not None and fault.kind == "crash":
                    # The parallel victim dies on task receipt, after the
                    # server's dispatch-time scratch sync; mirror that sync
                    # point so dirty-tracking stays engine-invariant.
                    client.scratch.collect_delta()
                    report.dropped[client.client_id] = "crash"
                    continue
                if fault is not None and fault.kind == "hang":
                    # No preemption in-process: approximate the parallel
                    # engine's wall-clock timeout with the cooperative rule.
                    if round_deadline is not None and (
                        fault.delay_seconds >= round_deadline
                    ):
                        report.dropped[client.client_id] = "deadline"
                        continue
                # Same sync point the parallel engine has before each task:
                # any server-side scratch edits are "shipped" to the
                # training side — a no-op in-process — so the upload delta
                # carries only what the update itself writes, identically
                # on every engine.
                client.scratch.collect_delta()
                if fault is not None and fault.kind in ("straggler", "hang"):
                    time.sleep(fault.delay_seconds)
                survivors.append((client, seed, fault))
        backend = self._compute_backend(model)
        group_updates = backend.run_group(
            strategy,
            model,
            wire_state,
            [client for client, _, _ in survivors],
            round_index,
            [seed for _, seed, _ in survivors],
        )
        norm_screen = (
            self.fault_plan.norm_screen if self.fault_plan is not None else None
        )
        updates = []
        for (client, _, fault), update in zip(survivors, group_updates):
            if fault is not None:
                if fault.kind in ("straggler", "hang"):
                    update.straggler_seconds = fault.delay_seconds
                elif fault.kind == "corrupt":
                    update.state = poison_state(update.state)
                elif fault.kind == "byzantine":
                    # Same hook point as the worker: the attack replaces
                    # the honest upload before it hits the wire codec, and
                    # is computed against the decoded broadcast the client
                    # trained from.
                    update.state = byzantine_state(
                        update.state, wire_state, fault
                    )
            if not self.codec.lossless:
                # Mirror the upload hop: the server-side aggregation must
                # consume exactly what a decoded wire upload would hold.
                update.state = self.codec.roundtrip(update.state)
            if self.fault_plan is not None and state_is_corrupt(
                update.state, ref=global_state, norm_screen=norm_screen
            ):
                # Same acceptance check the parallel server runs on every
                # decoded upload: the weights are distrusted, the scratch
                # is not (in-process it was already applied in place).
                report.dropped[client.client_id] = "corrupt"
                continue
            updates.append(update)
        if replay is None and self.quorum is not None and len(updates) > self.quorum:
            # Serial "arrival order" is sampling order, so the early close
            # deterministically keeps the first `quorum` accepted uploads —
            # the canonical accepted set a wall-clock engine replays.
            report.early_closed = True
            for update in updates[self.quorum :]:
                report.dropped[update.client_id] = "quorum"
            updates = updates[: self.quorum]
        if stream is not None:
            # Membership is final past the quorum cut: fold the accepted
            # uploads into the online accumulator in sampling order and
            # free each state — the server's aggregation memory is the
            # accumulator, not the round's update set.
            for position, update in enumerate(updates):
                stream.fold(update.state, float(update.num_samples), position)
                update.state = None
        self.last_fault_report = report
        self._observe_round_duration(time.perf_counter() - round_start)
        return updates


class _DroppedTask:
    """Sentinel standing in for a task future that will never produce an
    update (the crash victim, or a client given up on after re-execution
    also lost its worker); collection records the drop and moves on."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason


def _ingest_group_upload(
    engine: "Executor",
    row: "list",
    wire: object,
    global_state: StateDict,
    results: "dict[int, ClientUpdate]",
    report: RoundFaultReport,
    stream: "AggregationStream | None" = None,
) -> int:
    """Decode one group row's upload into ``results`` (keyed by dispatch
    position), syncing scratch and running the acceptance checks; returns
    how many updates were accepted.

    Shared verbatim by every wire-crossing engine — the process pool
    (:class:`ParallelExecutor`) and the socket engine
    (:class:`repro.fl.net.executor.RemoteExecutor`) — so upload semantics
    (codec chains, scratch materialization, corruption screening,
    streaming folds) are literally one code path.  ``engine`` supplies
    ``wire``/``codec``/``fault_plan``/``_upload_refs`` and, optionally, a
    ``transport`` whose ``recv_upload`` unwraps the wire bytes.

    The decode order is fixed per row, so every collection strategy
    (index order, arrival order under a quorum, pipelined arrival order)
    advances the codec reference chains identically for any given set of
    ingested rows.
    """
    clients, _, positions, _ = row
    blob = wire if engine.transport is None else engine.transport.recv_upload(wire)
    engine.wire.upload_bytes += len(blob)
    row_updates: list[ClientUpdate] = decode_payload(blob)
    norm_screen = (
        engine.fault_plan.norm_screen if engine.fault_plan is not None else None
    )
    accepted = 0
    for client, position, update in zip(clients, positions, row_updates):
        # Restore the codec-encoded state before anything
        # downstream (aggregation, benches) touches the update.
        decoded = engine.codec.decode(
            update.state, engine._upload_refs.get(update.client_id)
        )
        update.state = decoded
        if engine.codec.stateful:
            engine._upload_refs[update.client_id] = decoded
        # The out-of-band decode hands back read-only views into
        # the upload blob.  That is fine for ``state`` (dropped
        # after aggregation), but scratch outlives the round:
        # materialize the delta so server-side scratch holds owned,
        # writable values instead of pinning every client's blob
        # for the session.
        if update.scratch_delta:
            update.scratch_delta = pickle.loads(
                pickle.dumps(
                    update.scratch_delta, pickle.HIGHEST_PROTOCOL
                )
            )
        # Sync the server-side copy; applying (rather than
        # recording) keeps its dirty set empty, so nothing bounces
        # back next round.
        client.scratch.apply_delta(update.scratch_delta)
        if engine.fault_plan is not None and state_is_corrupt(
            update.state, ref=global_state, norm_screen=norm_screen
        ):
            # Acceptance check on every decoded upload: distrust
            # the weights, keep the scratch (applied above — the
            # serial engine's in-process run mutates it the same
            # way), and leave both reference chains advanced so the
            # next delta still decodes bit-exactly.
            report.dropped[client.client_id] = "corrupt"
            continue
        results[position] = update
        accepted += 1
        if stream is not None:
            # Streaming aggregation overlaps collection: fold the
            # accepted upload into the online accumulator the moment
            # it passes the checks and free the decoded state — the
            # server holds the accumulator plus at most the stateful
            # codec's bounded reference chain, never the round's full
            # update set.
            stream.fold(update.state, float(update.num_samples), position)
            update.state = None
    return accepted


# -- the training endpoint ----------------------------------------------------
#
# One single-process pool per worker slot gives deterministic task routing:
# submissions to a slot run FIFO in one long-lived process, so a client's
# home worker keeps its dataset, scratch, and the round's broadcast state
# without any cross-worker coordination.  All of that per-endpoint state
# lives in a WorkerRuntime: pool workers install one as a module-global
# singleton (process-wide, exactly like the historical module globals);
# remote agents (repro.fl.net.agent) build one per server connection, so
# in-process agent threads never share state.  Either way the training
# side of the wire protocol is the same object running the same code.


class WorkerRuntime:
    """The training endpoint's half of the wire protocol.

    Holds everything a worker keeps between messages: the decoded model
    template, the negotiated codec/transport/compute, resident clients,
    the current round's (lazily decoded) broadcast, and the stateful-codec
    reference states — the previous decoded broadcast and each resident
    client's last uploaded state, which advance in lockstep with the
    server-side chains because lossless decoding is bit-exact (that
    invariant is why stateful codecs must be lossless).

    Construction *is* negotiation: the four arguments are the pool
    initargs — and, verbatim, the meta a remote agent receives in its
    handshake welcome — so every endpoint builds the same pipeline from
    the same strings before any state crosses the wire.
    """

    def __init__(
        self,
        model_blob: bytes,
        codec_spec: str,
        transport_spec: str,
        compute_spec: str,
    ) -> None:
        self.model: "FeatureClassifierModel" = decode_payload(model_blob)
        self.codec: Codec = make_codec(codec_spec)  # the negotiated wire codec
        self.transport: Transport = make_transport(transport_spec)  # ...and transport
        self.compute: ComputeBackend = make_compute(compute_spec)  # ...and compute
        self.clients: dict[int, Client] = {}
        self.strategy_blob: "bytes | None" = None
        self.strategy: "Strategy | None" = None
        self.state: StateDict | None = None
        self.round_index: "int | None" = None
        # The not-yet-decoded broadcast: (transport handle, round index).
        # The broadcast handler only records it; the decode runs lazily at
        # the round's first tensor touch (see ensure_round_state) so it
        # overlaps the server's dispatch and the other workers' training
        # instead of serializing behind a per-round barrier.
        self.pending: "tuple[object, int] | None" = None
        self.bcast_ref: StateDict | None = None
        self.upload_refs: dict[int, StateDict] = {}

    def register(self, clients_blob: bytes) -> int:
        """Make the shipped clients resident; replaces same-id residents.

        The blob also carries the ids the server's LRU evicted from this
        endpoint since the last registration — piggybacked here so
        worker-side copies (and their upload reference chains) are freed
        without a dedicated message.  Either half may be empty: a
        pure-eviction flush ships no clients, a pure registration no
        evictions.
        """
        clients: "list[Client]"
        evict_ids: "tuple[int, ...]"
        clients, evict_ids = decode_payload(clients_blob)
        for client_id in evict_ids:
            self.clients.pop(client_id, None)
            self.upload_refs.pop(client_id, None)
        for client in clients:
            client.scratch.mark_clean()  # registration is the sync point
            self.clients[client.client_id] = client
            # A fresh resident starts a fresh upload-reference chain; the
            # server drops its copy at the same point.
            self.upload_refs.pop(client.client_id, None)
        return len(clients)

    def set_strategy(self, strategy_blob: bytes) -> "Strategy":
        if strategy_blob != self.strategy_blob:
            self.strategy = decode_payload(strategy_blob)
            self.strategy_blob = strategy_blob
        return self.strategy

    def broadcast(
        self, strategy_blob: bytes, handle: object, round_index: int
    ) -> float:
        """Record one round's strategy + broadcast handle.

        Deliberately does *not* decode the weights — that happens lazily at
        the round's first tensor touch (:meth:`ensure_round_state`),
        overlapping the decode with the server's task dispatch and the
        other workers' training.  Returns the handler-entry
        ``perf_counter`` timestamp; on the platforms this library runs,
        ``perf_counter`` reads a system-wide monotonic clock, so a
        same-host server can subtract its submit timestamp to measure the
        transport's dispatch latency (pickling + pipe transfer for
        ``pipe``, a tiny handle for ``shm``).
        """
        entry = time.perf_counter()
        self.set_strategy(strategy_blob)
        self.pending = (handle, round_index)
        return entry

    def ensure_round_state(self, round_index: int) -> float:
        """Decode the pending broadcast if this task is the round's first
        tensor touch on this endpoint; returns the decode wall clock (0.0
        when the round state is already installed)."""
        decode_seconds = 0.0
        if self.pending is not None and self.pending[1] == round_index:
            handle, pending_round = self.pending
            start = time.perf_counter()
            # fetch() is a pipe no-op / a zero-copy shm view / a tcp pull;
            # decode_payload reads it out-of-band, so the codec decodes
            # straight from the transport's buffer without an intermediate
            # copy.
            payload: Payload = decode_payload(self.transport.fetch(handle))
            self.state = self.codec.decode(payload, self.bcast_ref)
            if self.codec.stateful:
                self.bcast_ref = self.state
            self.round_index = pending_round
            self.pending = None
            decode_seconds = time.perf_counter() - start
        if self.state is None or self.round_index != round_index:  # pragma: no cover
            raise RuntimeError(
                f"task for round {round_index} arrived without its broadcast "
                f"(endpoint is at round {self.round_index})"
            )
        return decode_seconds

    def run_task(
        self,
        task: "tuple[tuple[int, ...], int, tuple[int, ...], tuple[bytes | None, ...], FaultEvent | None]",
    ) -> bytes:
        """Train one co-resident client group and upload its updates.

        ``task`` carries the group's client ids, their per-client seeds and
        scratch-sync blobs, and at most one fault event.  Faulted clients
        always dispatch as singleton groups (the server enforces this), so
        a fault applies to ``client_ids[0]`` unambiguously; fault-free
        clients of one endpoint may share a group, which the compute
        backend trains as one fused stack.  The upload is always a *list*
        of updates, in group order.

        Crash faults are the *dispatcher's* problem, not this method's:
        the pool wrapper (:func:`_run_resident_task`) hard-exits the
        process before getting here, and the remote executor never
        dispatches a crash victim at all (a remote agent is not the
        server's process to kill).
        """
        client_ids, round_index, seeds, scratch_syncs, fault = task
        if self.strategy is None:  # pragma: no cover - protocol violation
            raise RuntimeError("endpoint received a task before init/broadcast")
        decode_seconds = self.ensure_round_state(round_index)
        clients: list[Client] = []
        for client_id, scratch_sync in zip(client_ids, scratch_syncs):
            client = self.clients.get(client_id)
            if client is None:  # pragma: no cover - protocol violation
                raise RuntimeError(
                    f"client {client_id} is not resident on this endpoint"
                )
            if scratch_sync is not None:
                client.scratch.apply_delta(decode_payload(scratch_sync))
            clients.append(client)
        straggler_seconds = 0.0
        if fault is not None and fault.kind in ("straggler", "hang"):
            # Injected slowness, slept before the update so train_seconds
            # keeps measuring genuine compute.  A "hang" sleeps past the
            # server's round deadline; the server drops it and absorbs the
            # eventual result as a zombie.
            time.sleep(fault.delay_seconds)
            straggler_seconds = fault.delay_seconds
        updates = self.compute.run_group(
            self.strategy, self.model, self.state, clients,
            round_index, list(seeds),
        )
        # The lazy broadcast decode ran inside this task; stamp it once, on
        # the group's first update, so PhaseTimer's overlap accounting
        # counts it exactly once per endpoint per round.
        if updates:
            updates[0].decode_seconds = decode_seconds
            updates[0].straggler_seconds = straggler_seconds
        if fault is not None and fault.kind == "corrupt":
            # Poison *before* the codec, like a corrupted upload on a real
            # wire; the server's acceptance check catches it after decode.
            updates[0].state = poison_state(updates[0].state)
        elif fault is not None and fault.kind == "byzantine":
            # The adversary trains honestly, then uploads an attack state
            # built against the broadcast it received — pre-codec, like any
            # real client-side tampering.  Byzantine clients dispatch as
            # singleton groups, so the attack targets updates[0].
            updates[0].state = byzantine_state(
                updates[0].state, self.state, fault
            )
        # Codec-encode each upload; ``update.state`` carries the Payload
        # across the wire and the server restores a decoded state before
        # anyone else sees the update.
        for update in updates:
            state = update.state
            update.state = self.codec.encode(
                state, self.upload_refs.get(update.client_id)
            )
            if self.codec.stateful:
                self.upload_refs[update.client_id] = state
        return self.transport.send_upload(encode_payload(updates))


# The pool worker's process-wide runtime, installed by _worker_init.
_WORKER_RUNTIME: "WorkerRuntime | None" = None


def _worker_init(
    model_blob: bytes, codec_spec: str, transport_spec: str, compute_spec: str
) -> None:
    # A fresh runtime replaces whatever fork inherited from a sibling pool's
    # module state, wholesale.
    global _WORKER_RUNTIME
    _WORKER_RUNTIME = WorkerRuntime(
        model_blob, codec_spec, transport_spec, compute_spec
    )


def _worker_register(clients_blob: bytes) -> int:
    return _WORKER_RUNTIME.register(clients_blob)


def _worker_broadcast(
    strategy_blob: bytes, handle: object, round_index: int
) -> float:
    return _WORKER_RUNTIME.broadcast(strategy_blob, handle, round_index)


def _run_resident_task(
    task: "tuple[tuple[int, ...], int, tuple[int, ...], tuple[bytes | None, ...], FaultEvent | None]",
) -> bytes:
    fault = task[4]
    if fault is not None and fault.kind == "crash":
        # Simulate a hard worker crash: no cleanup, no exception back up
        # the pipe — the pool just loses this process, exactly like a
        # kill -9.  os._exit skips atexit/finalizers on purpose.
        os._exit(1)
    if _WORKER_RUNTIME is None:  # pragma: no cover - protocol violation
        raise RuntimeError("worker received a task before init")
    return _WORKER_RUNTIME.run_task(task)


def _default_workers() -> int:
    return max(2, min(4, os.cpu_count() or 2))


def _default_start_method() -> str:
    # fork is cheapest and inherits the import state, but it is only
    # reliably safe on Linux (macOS system frameworks may abort or deadlock
    # in forked children — the reason CPython switched that platform's
    # default to spawn).  Everywhere else, trust the platform default.
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method()


class ParallelExecutor(Executor):
    """Fan sampled clients out to sticky worker processes.

    Parameters
    ----------
    num_workers:
        Pool size.  Defaults to ``min(4, cpu_count)`` (at least 2 — a single
        worker is strictly worse than :class:`SerialExecutor`).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it.
    codec:
        Wire codec for weight payloads (spec string or built
        :class:`repro.fl.codec.Codec`).  The spec is shipped to workers at
        pool build, so both endpoints run the same pipeline.  A stateful
        codec (``delta``) keeps one reference state per worker (the last
        broadcast) and per client (the last acknowledged upload) on each
        side — O(model) memory per endpoint, the price of shipping diffs.
    transport:
        How encoded broadcast blobs reach the workers
        (:mod:`repro.fl.transport`): ``"pipe"`` copies the blob into each
        participating worker's pipe, ``"shm"`` publishes one shared-memory
        copy per round, and ``"auto"`` (default) prefers ``shm`` when the
        platform supports it.  Negotiated at pool build like the codec;
        purely mechanical — traces are transport-invariant.
    compute:
        The compute backend (:mod:`repro.fl.compute`) each worker trains
        its co-resident groups with; ``"auto"`` (default) resolves against
        the model at pool build.  Under a batched backend every home
        worker's fault-free participants arrive as one group task and
        train as a fused ``(K, ...)`` stack; per-client numerics are
        bitwise independent of the grouping, so traces stay
        backend-invariant.
    faults:
        Deterministic chaos schedule (:class:`repro.fl.faults.FaultPlan`
        or its spec string); injected faults travel inside the task
        tuples, so workers need no plan of their own.
    deadline:
        Wall-clock budget per round, in seconds, measured from the moment
        the round's tasks have all been dispatched (so time spent
        absorbing a previous round's straggler into registration does not
        eat the new round's budget).  When it expires the round *closes
        with whatever updates arrived*: outstanding clients are dropped
        (reason ``"deadline"``), their still-running tasks are absorbed —
        the slot keeps FIFO order, so the zombie result is drained and
        discarded next round and the client is re-registered before its
        next participation — and if *nothing* arrived the round raises
        :class:`repro.fl.faults.RoundTimeoutError` with the offending
        client ids instead of blocking forever on a hung worker.  Accepts
        a fixed number of seconds or an adaptive policy spec
        (``"percentile:p95"`` — see
        :func:`repro.fl.faults.make_deadline_policy`), which budgets each
        round from a sliding window of measured round durations.
    quorum:
        Early-close floor: with ``quorum=K`` the round closes at the
        first K *accepted* uploads (arrival order), dropping the
        outstanding rest (reason ``"quorum"``) with the same absorption
        contract as a deadline drop.  Wall clock decides who makes the
        cut, so the server records the accepted set per round
        (``RoundRecord.accepted``) and :meth:`Executor.set_replay` can
        reproduce the run exactly on any engine.  Under a deadline, a
        round that times out below the quorum raises
        :class:`repro.fl.faults.RoundTimeoutError` naming the quorum and
        the partial accepted set.

    Crashed pool slots are rebuilt in place: the slot's process is
    replaced, the round's broadcast is re-published to it (full-frame for
    stateful codecs — the dead worker's reference chain died with it),
    the clients whose tasks were lost re-register over the existing
    registration path from the server-side copies (which hold every
    previously synced scratch delta), and the lost tasks re-run with
    their original seeds.  Only a plan-designated crash victim — or a
    client whose task kills its worker twice — is dropped, so the
    surviving set matches the serial engine exactly.

    Each worker slot is one long-lived process (a single-worker
    :class:`~concurrent.futures.ProcessPoolExecutor`), and every client is
    pinned to slot ``client_id % num_workers``.  A client's dataset and
    scratch ship to its home worker **once**, at first participation; each
    round then sends one ``(strategy, weights)`` broadcast per participating
    worker and a constant-size task per participant, and each upload carries
    only the scratch keys the update changed (see the module docstring for
    the full wire protocol).  Results come back in sampling order and the
    uploaded deltas are applied to the server-side clients, so caches built
    inside a worker (e.g. PARDON's style-transferred images) survive across
    rounds exactly as they do serially.

    The pool is created lazily on the first round and rebuilt only when a
    different model *architecture* shows up, so one executor (and its warm
    pool + resident clients) serves consecutive runs — e.g. every split of a
    LODO sweep.  Residency is keyed on client *identity*: a run that builds
    fresh :class:`Client` objects (even with the same ids) re-registers
    them, so stale datasets or scratch can never leak between runs.
    """

    def __init__(
        self,
        num_workers: int | None = None,
        start_method: str | None = None,
        codec: "str | Codec" = "identity",
        transport: "str | Transport" = "auto",
        faults: "str | FaultPlan | None" = None,
        deadline: "float | str | FixedDeadline | AdaptiveDeadline | None" = None,
        compute: str = "auto",
        quorum: int | None = None,
        max_resident: int | None = None,
    ) -> None:
        super().__init__(
            codec=codec, faults=faults, deadline=deadline, compute=compute,
            quorum=quorum,
        )
        if num_workers is not None and num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if max_resident is not None and max_resident < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        self.max_resident = max_resident
        self.num_workers = num_workers or _default_workers()
        self.start_method = start_method or _default_start_method()
        self.transport = make_transport(transport)
        self.wire = WireStats()
        # Per-round broadcast timing, for the scaling bench: server-side
        # encode+publish seconds, and the dispatch latency from submit to
        # the slowest worker's handler entry (cross-process monotonic
        # clock — see _worker_broadcast).  Cumulative like the pool itself;
        # index 0 of a cold pool includes worker spin-up.
        self.broadcast_encode_rounds: list[float] = []
        self.broadcast_dispatch_rounds: list[float] = []
        self.broadcast_decode_rounds: list[float] = []
        self._pools: list[_ProcessPool] | None = None
        self._pool_architecture: tuple | None = None
        self._pool_initargs: tuple | None = None
        # The negotiated compute backend (``auto`` resolved against the
        # model at pool build; its spec ships in the worker initargs so
        # both endpoints agree before any task is dispatched).  The server
        # side only consults ``batched`` — to decide whether fault-free
        # co-resident clients share one group task per home worker.
        self._pool_compute: ComputeBackend | None = None
        self._mp_context = None
        # (home, future) pairs a round deadline left behind: the slot's
        # FIFO order means they finish before anything later touches
        # their worker; their results are drained and discarded (the
        # client was dropped, its scratch re-ships at re-registration).
        # The home is remembered so close() can kill — rather than join —
        # a slot whose zombie turns out to be genuinely wedged.
        self._zombie_futures: "list[tuple[int, Future]]" = []
        # client_id -> the exact server-side object resident on its home
        # worker.  Strong references on purpose: identity (``is``) decides
        # re-registration, and a dead object's id must not be recycled into
        # a false "already resident".  Insertion order doubles as LRU
        # recency (dispatched residents are re-inserted each round), so a
        # ``max_resident`` bound evicts the longest-unsampled clients.
        self._resident: dict[int, Client] = {}
        # Eviction ids queued for each home worker, piggybacked on the next
        # registration blob so the worker's own copies (and upload refs)
        # are freed without a dedicated message.
        self._pending_evictions: dict[int, list[int]] = {}
        # Server halves of the stateful-codec reference chains (see the
        # worker globals): worker slot -> last broadcast state, and
        # client_id -> last decoded upload.  Populated only when
        # ``codec.stateful``.
        self._bcast_refs: dict[int, StateDict] = {}
        self._upload_refs: dict[int, StateDict] = {}

    @staticmethod
    def _architecture_of(model: "FeatureClassifierModel") -> tuple:
        """Structural signature deciding whether the worker template still
        fits.

        Covers everything ``load_state_dict`` validates — parameter *and*
        buffer names/shapes — plus each module's class and public scalar
        hyperparameters (stride, padding, ...), which change forward
        semantics without changing any tensor shape.  ``training`` and
        underscore-prefixed attributes are excluded: they vary at runtime
        and would only force needless pool rebuilds.
        """
        structure = tuple(
            (
                type(module).__name__,
                tuple(
                    sorted(
                        (key, value)
                        for key, value in vars(module).items()
                        if key != "training"
                        and not key.startswith("_")
                        and isinstance(value, (bool, int, float, str, tuple))
                    )
                ),
            )
            for module in model.modules()
        )
        return (
            structure,
            tuple((name, param.shape) for name, param in model.named_parameters()),
            tuple((name, buf.shape) for name, buf in model.named_buffers()),
        )

    def wire_stats(self) -> WireStats:
        return replace(self.wire)

    def _home(self, client_id: int) -> int:
        """Deterministic sticky affinity: a client always lands on the same
        worker slot, independent of sampling order or round."""
        return client_id % self.num_workers

    def _ensure_pools(self, model: "FeatureClassifierModel") -> list[_ProcessPool]:
        architecture = self._architecture_of(model)
        if self._pools is not None and self._pool_architecture != architecture:
            self.close()
        if self._pools is None:
            model_blob = encode_payload(model)
            self._mp_context = multiprocessing.get_context(self.start_method)
            compute_spec = resolve_compute(self.compute, model)
            self._pool_compute = make_compute(compute_spec)
            self._pool_initargs = (
                model_blob, self.codec.spec, self.transport.spec, compute_spec,
            )
            self._pools = [
                self._new_slot_pool() for _ in range(self.num_workers)
            ]
            self._pool_architecture = architecture
            self.wire.registration_bytes += len(model_blob) * self.num_workers
            self.wire.unique_registration_bytes += len(model_blob)
        return self._pools

    def _new_slot_pool(self) -> _ProcessPool:
        """One worker slot: a single-process pool built from the saved
        init recipe (also how a crashed slot is rebuilt mid-round)."""
        return _ProcessPool(
            max_workers=1,
            mp_context=self._mp_context,
            initializer=_worker_init,
            initargs=self._pool_initargs,
        )

    @staticmethod
    def _slot_is_dead(pool: _ProcessPool) -> bool:
        """Whether a slot's process is known-broken or silently gone (a
        fresh pool with no process spawned yet counts as healthy)."""
        if getattr(pool, "_broken", False):
            return True
        processes = getattr(pool, "_processes", None) or {}
        return any(not process.is_alive() for process in processes.values())

    def _replace_slot(
        self, pools: list[_ProcessPool], home: int, report: RoundFaultReport
    ) -> _ProcessPool:
        """Tear down one slot's dead pool and stand up a fresh process.

        Worker-resident state died with the process, so the slot's
        residents are evicted (they re-register from the server-side
        copies before their next task) and its broadcast reference chain
        is cleared (the next broadcast to this slot is a full frame).
        Server-side *upload* reference chains are left alone: uploads
        that outran the crash still decode against them, and
        re-registration resets both endpoints.
        """
        report.rebuilt_workers += 1
        pools[home].shutdown(wait=False)
        pools[home] = pool = self._new_slot_pool()
        if self._pool_initargs is not None:
            # The model template re-ships with the fresh process.
            self.wire.registration_bytes += len(self._pool_initargs[0])
        for client_id in [
            cid for cid in self._resident if self._home(cid) == home
        ]:
            self._resident.pop(client_id)
        self._bcast_refs.pop(home, None)
        # Queued evictions are moot: the worker-side copies they targeted
        # died with the process.
        self._pending_evictions.pop(home, None)
        return pool

    @staticmethod
    def _submit_task(
        pools: list[_ProcessPool], home: int, task: tuple
    ) -> Future:
        """Submit one task, converting a dead pool into a failed future so
        collection's broken-slot recovery handles both cases uniformly (a
        crash can land between the health check and this submit)."""
        try:
            return pools[home].submit(_run_resident_task, task)
        except _BrokenPool as exc:
            failed: Future = Future()
            failed.set_exception(exc)
            return failed

    def _register_clients(
        self, pool: _ProcessPool, home: int, clients: "list[Client]"
    ) -> Future:
        """Ship ``clients`` to their home slot in one registration blob and
        mirror the sync points server-side (scratch marked clean, upload
        reference chains reset on both endpoints).  Eviction ids queued
        for this slot ride along in the same blob (see
        :func:`_worker_register`)."""
        evict_ids = tuple(self._pending_evictions.pop(home, ()))
        blob = encode_payload((clients, evict_ids))
        self.wire.registration_bytes += len(blob)
        # Each client ships to exactly one home, so the blob is already
        # fan-out-free and counts unchanged toward the unique floor.
        self.wire.unique_registration_bytes += len(blob)
        future = pool.submit(_worker_register, blob)
        for client in clients:
            # Mirror the worker-side sync point: from here on, only
            # deltas travel in either direction.
            client.scratch.mark_clean()
            self._resident[client.client_id] = client
            # ...and the worker-side chain reset: a fresh resident's
            # first upload is a full frame again.
            self._upload_refs.pop(client.client_id, None)
        return future

    def _register_new_participants(
        self, pools: list[_ProcessPool], participants: Sequence[Client]
    ) -> None:
        """Ship not-yet-resident participants to their home workers, grouped
        so each worker receives at most one registration blob per round.

        Homes with queued evictions but no newcomers get an empty
        registration — the flush that actually frees the worker-side
        copies — so LRU hygiene never waits on a resample."""
        newcomers: dict[int, list[Client]] = {}
        for client in participants:
            if self._resident.get(client.client_id) is not client:
                newcomers.setdefault(self._home(client.client_id), []).append(client)
        for home in self._pending_evictions:
            newcomers.setdefault(home, [])
        futures = [
            self._register_clients(pools[home], home, clients)
            for home, clients in sorted(newcomers.items())
        ]
        for future in futures:
            future.result()  # surface registration errors before any task

    def run_round(
        self,
        strategy: "Strategy",
        model: "FeatureClassifierModel",
        global_state: StateDict,
        participants: Sequence[Client],
        round_index: int,
        seeds: Sequence[int],
        stream: "AggregationStream | None" = None,
    ) -> list[ClientUpdate]:
        pools = self._ensure_pools(model)
        self._drain_zombies()

        round_start = time.perf_counter()
        round_deadline = self._current_deadline()
        report = RoundFaultReport(round_index=round_index)
        replay = self._replay_membership(participants, seeds, round_index, report)
        if replay is not None:
            # Pinned membership: dispatch exactly the recorded accepted
            # set with its update-level faults, and run no deadline or
            # quorum logic — the recorded drop map already says who fell.
            dispatch_pairs, injected = replay
            round_deadline = None
        else:
            actions = (
                self.fault_plan.actions_for_round(
                    [client.client_id for client in participants],
                    round_index,
                    round_deadline,
                )
                if self.fault_plan is not None
                else None
            )
            if actions:
                report.straggler_seconds = actions.straggler_seconds
            injected = actions.injected if actions else {}
            if actions:
                # Plan-skipped clients (dropouts, over-deadline stragglers)
                # never dispatch: they neither register nor receive a task,
                # exactly as an unreachable client would behave.
                report.dropped.update(actions.skipped)
                dispatch_pairs = [
                    (client, seed)
                    for client, seed in zip(participants, seeds)
                    if client.client_id not in actions.skipped
                ]
            else:
                dispatch_pairs = list(zip(participants, seeds))
        dispatched = [client for client, _ in dispatch_pairs]
        for home in range(self.num_workers):
            # A worker that died outside any round (infrastructure
            # failure, an external kill) is indistinguishable from a warm
            # slot until something is submitted to it; replace it now so
            # this round re-registers its clients instead of feeding a
            # broken pool.
            if self._slot_is_dead(pools[home]):
                self._replace_slot(pools, home, report)
        self._register_new_participants(pools, dispatched)
        # LRU recency: re-insert this round's participants so insertion
        # order stays oldest-unsampled-first for the end-of-round eviction.
        for client in dispatched:
            resident = self._resident.pop(client.client_id, None)
            if resident is not None:
                self._resident[client.client_id] = resident

        # One broadcast per participating worker, not per task.  The state
        # is codec-encoded against each worker's reference chain; workers
        # whose chains point at the same state (the common case — every
        # participating worker saw the last broadcast) share one encode —
        # and one transport publish, so under shm the blob is written once
        # per round no matter how many workers fan out.
        encode_start = time.perf_counter()
        strategy_blob = encode_payload(strategy)
        homes = sorted({self._home(client.client_id) for client in dispatched})
        handle_for_ref: dict[int, object] = {}
        handle_of: dict[int, object] = {}
        self.wire.unique_broadcast_bytes += len(strategy_blob)
        for home in homes:
            ref = self._bcast_refs.get(home)
            handle = handle_for_ref.get(id(ref))
            if handle is None:
                state_blob = encode_payload(self.codec.encode(global_state, ref))
                handle = self.transport.publish(state_blob)
                handle_for_ref[id(ref)] = handle
                self.wire.unique_broadcast_bytes += len(state_blob)
                self.wire.broadcast_bytes += self.transport.publish_wire_bytes(
                    state_blob
                )
            if self.codec.stateful:
                self._bcast_refs[home] = global_state
            self.wire.broadcast_bytes += len(
                strategy_blob
            ) + self.transport.handle_wire_bytes(handle)
            handle_of[home] = handle
        encode_seconds = time.perf_counter() - encode_start

        updates: list[ClientUpdate] = []
        try:
            # Dispatch the broadcasts but do NOT wait on them: each worker
            # slot is a FIFO single-process pool, so its broadcast is
            # guaranteed to run before its tasks, and the decode itself is
            # lazy inside the first task (_ensure_round_state) — worker A
            # trains while worker B's blob is still in its pipe.
            dispatch_start = time.perf_counter()
            broadcast_futures = []
            for home in homes:
                try:
                    broadcast_futures.append(
                        (
                            home,
                            pools[home].submit(
                                _worker_broadcast, strategy_blob,
                                handle_of[home], round_index,
                            ),
                        )
                    )
                except _BrokenPool:
                    pass  # collection rebuilds the slot and re-broadcasts

            # Constant-size tasks; the scratch sync blob is None unless
            # server-side code touched the client's scratch since the last
            # sync.  A fault-plan event for this (client, round) rides in
            # the task tuple, so workers need no plan state of their own.
            #
            # Under a batched compute backend, a home worker's fault-free
            # participants share ONE group task (trained as a fused stack);
            # faulted clients always dispatch as singleton groups so the
            # per-task fault protocol stays unambiguous.  Per-client
            # numerics are bitwise independent of this grouping, so the
            # trace cannot tell the difference.
            batched = self._pool_compute is not None and self._pool_compute.batched
            descriptors: "list[list]" = []  # [positions, clients, seeds, blobs, fault]
            group_at: dict[int, int] = {}  # home -> descriptor index
            for position, (client, seed) in enumerate(dispatch_pairs):
                server_delta = client.scratch.collect_delta()
                sync_blob = encode_payload(server_delta) if server_delta else None
                fault = injected.get(client.client_id)
                # Count each client's fixed task fields exactly; the sync
                # blob is never re-pickled (it can be dataset-scale) and
                # the group tuple's framing is charged to noise like the
                # blob framing — so the accounting stays invariant to the
                # backend's grouping and the worker count.
                self.wire.task_bytes += len(
                    pickle.dumps(
                        (client.client_id, round_index, seed, None, fault),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                ) + (len(sync_blob) if sync_blob is not None else 0)
                home = self._home(client.client_id)
                if batched and fault is None and home in group_at:
                    descriptor = descriptors[group_at[home]]
                    descriptor[0].append(position)
                    descriptor[1].append(client)
                    descriptor[2].append(seed)
                    descriptor[3].append(sync_blob)
                    continue
                if batched and fault is None:
                    group_at[home] = len(descriptors)
                descriptors.append(
                    [[position], [client], [seed], [sync_blob], fault]
                )
            pending: "list[list]" = []
            for positions, clients, group_seeds, sync_blobs, fault in descriptors:
                task = (
                    tuple(client.client_id for client in clients),
                    round_index,
                    tuple(group_seeds),
                    tuple(sync_blobs),
                    fault,
                )
                pending.append(
                    [
                        clients,
                        group_seeds,
                        positions,
                        self._submit_task(
                            pools, self._home(clients[0].client_id), task
                        ),
                    ]
                )

            # The deadline clock starts once the whole round is in
            # flight: from here, collection is bounded no matter what the
            # workers do.  Under an adaptive policy the budget is this
            # round's resolved percentile value (None while warming up).
            deadline_at = (
                None
                if round_deadline is None
                else time.perf_counter() + round_deadline
            )

            # With the tasks already queued behind them, resolving the
            # broadcast futures costs no overlap; it surfaces transport
            # errors with their original traceback and yields each
            # handler's entry timestamp for the dispatch-latency
            # measurement (max across workers = the barrier a blocking
            # broadcast would have imposed).  Under a deadline the wait is
            # bounded: a slot still stuck on an absorbed straggler gets
            # its handler entry skipped, and a slot that died is left for
            # task collection to rebuild.
            dispatch = 0.0
            for home, future in broadcast_futures:
                try:
                    timeout = (
                        None
                        if deadline_at is None
                        else max(0.0, deadline_at - time.perf_counter())
                    )
                    dispatch = max(
                        dispatch, future.result(timeout=timeout) - dispatch_start
                    )
                except _FuturesTimeout:
                    self._zombie_futures.append((home, future))
                except _BrokenPool:
                    pass  # collection rebuilds the slot when it gets there

            if self.quorum is not None and replay is None:
                self._collect_uploads_quorum(
                    pools, pending, updates, round_index, strategy_blob,
                    global_state, deadline_at, injected, report, stream,
                )
            else:
                self._collect_uploads(
                    pools, pending, updates, round_index, strategy_blob,
                    global_state, deadline_at, injected, report, stream,
                )
        finally:
            # Unlink this round's segments even when dispatch, a worker, or
            # an upload failed — callers that catch the error must not
            # retain blob-sized shared memory until the next successful
            # round or close().
            self.transport.end_round()
            self.last_fault_report = report
        deadline_dropped = tuple(
            client_id
            for client_id, reason in report.dropped.items()
            if reason == "deadline"
        )
        quorum_missed = (
            self.quorum is not None
            and replay is None
            and len(updates) < self.quorum
            and bool(deadline_dropped)
        )
        if replay is None and deadline_dropped and (not updates or quorum_missed):
            # The deadline expired with nothing at all to aggregate — or,
            # under a quorum, with fewer accepted uploads than the
            # configured floor: that is a failed round, not a gracefully
            # partial one.
            raise RoundTimeoutError(
                round_index,
                deadline_dropped,
                quorum=self.quorum,
                accepted=tuple(update.client_id for update in updates),
            )
        # The per-round timing lists advance in lockstep, and only for
        # rounds that completed (the bench indexes them together).
        self.broadcast_encode_rounds.append(encode_seconds)
        self.broadcast_dispatch_rounds.append(max(0.0, dispatch))
        self.broadcast_decode_rounds.append(
            sum(update.decode_seconds for update in updates)
        )
        self._evict_lru(participants)
        self._observe_round_duration(time.perf_counter() - round_start)
        return updates

    def _evict_lru(self, participants: Sequence[Client]) -> None:
        """Bound the resident set: evict the longest-unsampled clients
        (never a current participant — mid-round recovery reads them)
        down to ``max_resident``, dropping the server-side copy and
        upload reference now and queueing the worker-side eviction for
        the slot's next registration blob."""
        if self.max_resident is None:
            return
        in_round = {client.client_id for client in participants}
        excess = len(self._resident) - self.max_resident
        if excess <= 0:
            return
        for client_id in [
            cid for cid in self._resident if cid not in in_round
        ][:excess]:
            self._resident.pop(client_id)
            self._upload_refs.pop(client_id, None)
            self._pending_evictions.setdefault(
                self._home(client_id), []
            ).append(client_id)

    def _collect_uploads(
        self,
        pools: list[_ProcessPool],
        pending: "list[list]",
        updates: list[ClientUpdate],
        round_index: int,
        strategy_blob: bytes,
        global_state: StateDict,
        deadline_at: float | None,
        injected: "dict[int, FaultEvent]",
        report: RoundFaultReport,
        stream: "AggregationStream | None" = None,
    ) -> None:
        """Drain the round's upload futures into ``updates`` in sampling
        order, decoding states and syncing scratch along the way.

        ``pending`` rows are ``[clients, seeds, positions, future]`` — one
        co-resident group per row, with ``positions`` the clients' indices
        in the round's dispatch order — and may be rewritten
        mid-collection: a crashed slot replaces its lost rows with
        re-submissions (or :class:`_DroppedTask` sentinels), and a row
        whose future misses the deadline is dropped in place.  Survivors
        are keyed by dispatch position and appended to ``updates`` sorted,
        so they always land in sampling order, which keeps the
        aggregation's floating-point reduction order (and hence the whole
        trace) engine- and grouping-invariant.
        """
        suspects: set[int] = set()
        results: dict[int, ClientUpdate] = {}
        index = 0
        while index < len(pending):
            clients, _, positions, future = pending[index]
            if isinstance(future, _DroppedTask):
                for client in clients:
                    report.dropped[client.client_id] = future.reason
                index += 1
                continue
            try:
                timeout = (
                    None
                    if deadline_at is None
                    else max(0.0, deadline_at - time.perf_counter())
                )
                wire = future.result(timeout=timeout)
            except _FuturesTimeout:
                # Round deadline: close without this row's clients.  The
                # task is absorbed — the slot's FIFO order lets it finish
                # harmlessly and the result is drained as a zombie next
                # round — and the clients re-register before their next
                # participation, because the worker-side copies diverge the
                # moment the absorbed update completes.
                for client in clients:
                    report.dropped[client.client_id] = "deadline"
                    self._resident.pop(client.client_id, None)
                self._zombie_futures.append(
                    (self._home(clients[0].client_id), future)
                )
                index += 1
                continue
            except _BrokenPool:
                self._recover_broken_slot(
                    pools, self._home(clients[0].client_id), pending, index,
                    round_index, strategy_blob, global_state, injected,
                    suspects, report,
                )
                continue  # re-examine this row: re-submitted or sentinel
            self._ingest_row(
                pending[index], wire, global_state, results, report, stream
            )
            index += 1
        updates.extend(update for _, update in sorted(results.items()))

    def _ingest_row(
        self,
        row: "list",
        wire: object,
        global_state: StateDict,
        results: "dict[int, ClientUpdate]",
        report: RoundFaultReport,
        stream: "AggregationStream | None" = None,
    ) -> int:
        return _ingest_group_upload(
            self, row, wire, global_state, results, report, stream
        )

    def _collect_uploads_quorum(
        self,
        pools: list[_ProcessPool],
        pending: "list[list]",
        updates: list[ClientUpdate],
        round_index: int,
        strategy_blob: bytes,
        global_state: StateDict,
        deadline_at: float | None,
        injected: "dict[int, FaultEvent]",
        report: RoundFaultReport,
        stream: "AggregationStream | None" = None,
    ) -> None:
        """Arrival-order collection under a quorum: close the round at the
        first :attr:`quorum` *accepted* uploads instead of waiting for
        every row.

        Rows are waited on with ``FIRST_COMPLETED`` and ingested as they
        arrive (in dispatch order within each arrival batch), so which
        clients make the cut depends on wall clock — by design.  The
        resulting accepted set is recorded by the server
        (``RoundRecord.accepted``) and replayed via :meth:`set_replay` for
        exact reproduction; group rows ingest whole, so a multi-client
        group crossing the quorum boundary may overshoot the floor.  Once
        the quorum is met, outstanding rows are dropped (reason
        ``"quorum"``), their futures absorbed as zombies and their clients
        evicted from residency — the same absorption contract as a
        deadline drop — and the wall-clock headroom against the round's
        deadline is reported as ``early_close_seconds``.
        """
        suspects: set[int] = set()
        results: "dict[int, ClientUpdate]" = {}
        accepted = 0
        remaining = list(pending)
        while True:
            live: "list[list]" = []
            for row in remaining:
                if isinstance(row[3], _DroppedTask):
                    for client in row[0]:
                        report.dropped[client.client_id] = row[3].reason
                else:
                    live.append(row)
            remaining = live
            if not remaining or accepted >= self.quorum:
                break
            timeout = (
                None
                if deadline_at is None
                else max(0.0, deadline_at - time.perf_counter())
            )
            done, _ = _futures_wait(
                {row[3] for row in remaining},
                timeout=timeout,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # Deadline with the quorum still unmet: drop everything
                # outstanding, exactly like the index-order collector.
                for row in remaining:
                    for client in row[0]:
                        report.dropped[client.client_id] = "deadline"
                        self._resident.pop(client.client_id, None)
                    self._zombie_futures.append(
                        (self._home(row[0][0].client_id), row[3])
                    )
                remaining = []
                break
            recovered = False
            for row in [r for r in remaining if r[3] in done]:
                if accepted >= self.quorum:
                    break
                try:
                    wire = row[3].result()
                except _BrokenPool:
                    # Scan the whole remaining list: the slot runs FIFO,
                    # so its first not-yet-harvested row is the task that
                    # was executing when the process died.
                    self._recover_broken_slot(
                        pools, self._home(row[0][0].client_id), remaining,
                        0, round_index, strategy_blob, global_state,
                        injected, suspects, report,
                    )
                    recovered = True
                    break  # futures were rewritten; re-enter the wait loop
                accepted += self._ingest_row(
                    row, wire, global_state, results, report, stream
                )
                remaining.remove(row)
            if recovered:
                continue
        if remaining and accepted >= self.quorum:
            # Early close: the quorum is met with rows still outstanding.
            report.early_closed = True
            if deadline_at is not None:
                report.early_close_seconds = max(
                    0.0, deadline_at - time.perf_counter()
                )
            for row in remaining:
                for client in row[0]:
                    report.dropped[client.client_id] = "quorum"
                    self._resident.pop(client.client_id, None)
                self._zombie_futures.append(
                    (self._home(row[0][0].client_id), row[3])
                )
        updates.extend(update for _, update in sorted(results.items()))

    def _recover_broken_slot(
        self,
        pools: list[_ProcessPool],
        home: int,
        pending: "list[list]",
        index: int,
        round_index: int,
        strategy_blob: bytes,
        global_state: StateDict,
        injected: "dict[int, FaultEvent]",
        suspects: set[int],
        report: RoundFaultReport,
    ) -> None:
        """A slot's process died mid-round: rebuild it in place and re-run
        what the crash took with it.

        The plan's crash victim (and any group whose task has killed a
        worker twice — a deterministic poison pill would loop forever) is
        dropped; every other lost task re-registers its clients from the
        server-side copies and re-runs with its original seeds, so the
        surviving set — and the trace — matches the serial engine.
        (Plan-designated crash victims always dispatch as singleton
        groups, so a multi-client group can only be dropped by the
        twice-killed rule — an infrastructure failure, not plan chaos.)
        The fresh worker holds no codec reference state, so the
        re-broadcast is a full frame.
        """
        pool = self._replace_slot(pools, home, report)
        rerun: "list[list]" = []
        head = True  # the slot runs FIFO, so the first lost row below is
        # the task that was executing when the process died — only it can
        # be the killer; rows queued behind it never got to run.
        for row in pending[index:]:
            clients, _, _, future = row
            if isinstance(future, _DroppedTask):
                continue
            if self._home(clients[0].client_id) != home:
                continue
            if future.done() and future.exception() is None:
                continue  # its result outran the crash; keep it
            event = (
                injected.get(clients[0].client_id) if len(clients) == 1 else None
            )
            if event is not None and event.kind == "crash":
                row[3] = _DroppedTask("crash")  # the plan's victim
            elif head and all(
                client.client_id in suspects for client in clients
            ):
                # Executing for the second time when its worker died: a
                # deterministic poison pill, re-running it would rebuild
                # the slot forever.
                row[3] = _DroppedTask("crash")
            else:
                if head:
                    suspects.update(client.client_id for client in clients)
                rerun.append(row)
            head = False
        if not rerun:
            return
        self._register_clients(
            pool, home, [client for row in rerun for client in row[0]]
        ).result()
        self._broadcast_slot(pool, home, strategy_blob, global_state, round_index)
        for row in rerun:
            clients, group_seeds, _, _ = row
            fault = (
                injected.get(clients[0].client_id) if len(clients) == 1 else None
            )
            # Registration just re-shipped the full scratch, so the task
            # needs no sync blobs.  Accounting is per client, grouping-
            # invariant, as in the dispatch loop.
            task = (
                tuple(client.client_id for client in clients),
                round_index,
                tuple(group_seeds),
                (None,) * len(clients),
                fault,
            )
            for client, seed in zip(clients, group_seeds):
                self.wire.task_bytes += len(
                    pickle.dumps(
                        (client.client_id, round_index, seed, None, fault),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                )
            row[3] = self._submit_task(pools, home, task)

    def _broadcast_slot(
        self,
        pool: _ProcessPool,
        home: int,
        strategy_blob: bytes,
        global_state: StateDict,
        round_index: int,
    ) -> Future:
        """Publish the round's broadcast to one (rebuilt) slot as a full
        frame — the fresh worker has no reference chain to diff against."""
        state_blob = encode_payload(self.codec.encode(global_state, None))
        handle = self.transport.publish(state_blob)
        self.wire.unique_broadcast_bytes += len(state_blob)
        self.wire.broadcast_bytes += (
            self.transport.publish_wire_bytes(state_blob)
            + len(strategy_blob)
            + self.transport.handle_wire_bytes(handle)
        )
        if self.codec.stateful:
            self._bcast_refs[home] = global_state
        return pool.submit(_worker_broadcast, strategy_blob, handle, round_index)

    def _drain_zombies(self) -> None:
        """Absorb tasks past deadlines left running: discard any finished
        results/errors, keep waiting on the rest.  The dropped clients
        were evicted from residency when the deadline fired, so nothing a
        zombie computed can ever reach aggregation or scratch state."""
        still_running = []
        for home, future in self._zombie_futures:
            if not future.done():
                still_running.append((home, future))
                continue
            try:
                future.result()
            except Exception:
                pass  # the round that owned it already closed
        self._zombie_futures = still_running

    def close(self) -> None:
        if self._pools is not None:
            # A slot still chewing on an absorbed task may be slow — or
            # genuinely wedged, which is exactly the failure the deadline
            # existed to survive.  Its result can never be used (the
            # client was dropped and evicted), so kill the process rather
            # than hand the hang to shutdown's join.  But grant a short
            # grace first: a kill that lands mid-result-write wedges the
            # pool's manager thread on a half-read message forever (fork
            # siblings keep the result pipe's write end open, so the
            # partial recv never sees EOF) — and absorbed quorum
            # survivors are *actively finishing*, not wedged; they clear
            # the grace in milliseconds.
            if any(not future.done() for _, future in self._zombie_futures):
                _futures_wait(
                    {future for _, future in self._zombie_futures},
                    timeout=0.75,
                )
            stuck = {
                home
                for home, future in self._zombie_futures
                if not future.done()
            }
            for home in stuck:
                processes = getattr(self._pools[home], "_processes", None)
                for process in (processes or {}).values():
                    process.kill()
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._pools = None
            self._pool_architecture = None
            self._pool_compute = None  # re-negotiated at the next build
        self.transport.close()
        self._resident.clear()
        self._pending_evictions.clear()  # worker copies died with the pools
        self._zombie_futures.clear()  # joined (or killed) above
        # Reference chains die with their endpoints: a rebuilt pool starts
        # from full frames on both sides.
        self._bcast_refs.clear()
        self._upload_refs.clear()


def resolve_executor(
    kind: str,
    participants: int | None = None,
    local_epochs: int = 1,
    cpu_count: int | None = None,
) -> str:
    """Resolve ``"auto"`` to a concrete engine kind.

    The crossover heuristic weighs the per-round fan-out (population
    sampled per round x local-epoch cost) against the process pool's fixed
    overhead: parallel pays only when there are at least
    :data:`AUTO_CROSSOVER_TASKS` local-update task units per round *and*
    the machine has a second core to run them on.  With no participant
    information the safe answer is serial — it is bit-identical anyway.
    """
    if kind != "auto":
        if kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
            )
        return kind
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    if cpus < 2 or participants is None:
        return "serial"
    task_units = participants * max(1, local_epochs)
    return "parallel" if task_units >= AUTO_CROSSOVER_TASKS else "serial"


def make_executor(
    kind: str = "serial",
    workers: int | None = None,
    codec: "str | Codec" = "identity",
    participants: int | None = None,
    local_epochs: int = 1,
    transport: "str | Transport" = "auto",
    faults: "str | FaultPlan | None" = None,
    deadline: "float | str | None" = None,
    compute: str = "auto",
    quorum: int | None = None,
    max_resident: int | None = None,
) -> Executor:
    """Build an engine from the CLI/bench knobs (``--executor`` /
    ``--workers`` / ``--codec`` / ``--transport`` / ``--faults`` /
    ``--deadline`` / ``--compute`` / ``--quorum`` / ``--max-resident``).

    ``kind="auto"`` picks the engine via :func:`resolve_executor` from the
    optional ``participants``/``local_epochs`` hints; an explicit
    ``workers`` count under ``auto`` is read as intent and forces the
    parallel engine.  A ``workers`` count with ``kind="serial"`` is
    rejected rather than silently ignored — it almost always means the
    caller wanted parallel execution and forgot to say so.  ``transport``
    only applies to the parallel engine; the serial engine has no wire, so
    the spec is validated and then ignored — that keeps
    ``executor="auto"`` + an explicit transport resolvable to either
    engine.  ``faults`` and ``deadline`` configure the fault-tolerance
    layer (:mod:`repro.fl.faults`) on whichever engine results — both
    engines honour them, so a chaos run is valid under ``auto``.
    ``max_resident`` bounds the parallel engine's resident-client LRU
    (server-side copies + upload reference chains); like ``workers``, an
    explicit value under ``auto`` is read as intent for the parallel
    engine, and it is rejected with ``kind="serial"`` (the serial engine
    keeps no residents).
    """
    if isinstance(transport, str):
        resolve_transport(transport)  # reject typos for every engine kind
    if kind == "auto":
        kind = (
            "parallel"
            if workers is not None or max_resident is not None
            else resolve_executor(kind, participants, local_epochs)
        )
    if kind == "serial":
        if workers is not None:
            raise ValueError(
                "workers only applies to the parallel executor; "
                "pass kind='parallel' or drop the workers count"
            )
        if max_resident is not None:
            raise ValueError(
                "max_resident only applies to the parallel executor; "
                "pass kind='parallel' or drop the residency bound"
            )
        return SerialExecutor(
            codec=codec, faults=faults, deadline=deadline, compute=compute,
            quorum=quorum,
        )
    if kind == "parallel":
        return ParallelExecutor(
            num_workers=workers, codec=codec, transport=transport,
            faults=faults, deadline=deadline, compute=compute, quorum=quorum,
            max_resident=max_resident,
        )
    raise ValueError(
        f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
    )
